"""Crash-consistent recovery driving.

:func:`run_with_crashes` runs a scheduler to completion through any
number of injected crashes: each segment runs under a
:class:`~repro.serve.state.CheckpointPlan`, the raised
:class:`~repro.errors.SimulatedCrash` carries the latest snapshot,
and the next segment resumes from it.  Because every stochastic
consumer (injector RNG, KV tier map, engine clock + trace) restores
its exact state, the stitched run's records, timeline, and metrics
are bit-identical to an uncrashed pass — the property
``tests/chaos/test_recovery.py`` machine-checks across placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import CheckpointError, SimulatedCrash
from repro.serve.state import CheckpointPlan


@dataclass(frozen=True)
class RecoveryReport:
    """One crash-recovery drive: the final run plus its history."""

    #: The completed :class:`~repro.serve.scheduler.SchedulerRun`.
    run: object
    #: Boundaries at which a crash was injected and recovered.
    crashes: Tuple[int, ...] = ()
    #: Boundary of the checkpoint each recovery resumed from.
    resumed_from: Tuple[int, ...] = ()


def run_with_crashes(
    scheduler,
    specs,
    crash_boundaries: Sequence[int],
    every: int = 1,
    sink=None,
) -> RecoveryReport:
    """Serve ``specs`` to completion through injected crashes.

    Crashes fire at each boundary in ``crash_boundaries`` (ascending);
    after each one the scheduler resumes from the crash's snapshot.
    ``every`` is the checkpoint cadence — a crash can only lose (and
    deterministically replay) up to ``every - 1`` boundaries of work.
    """
    crashes = sorted({int(b) for b in crash_boundaries})
    if any(b < 1 for b in crashes):
        raise CheckpointError("crash boundaries must be >= 1")
    restore: Optional[dict] = None
    hit: list = []
    resumed: list = []
    for crash_at in crashes:
        plan = CheckpointPlan(every=every, crash_at=crash_at, sink=sink)
        try:
            run = scheduler.run(specs, checkpoint=plan, restore=restore)
        except SimulatedCrash as crash:
            hit.append(crash.boundary)
            resumed.append(crash.checkpoint["boundary"])
            restore = crash.checkpoint
        else:
            # The run finished before this crash boundary was reached.
            return RecoveryReport(
                run=run,
                crashes=tuple(hit),
                resumed_from=tuple(resumed),
            )
    plan = CheckpointPlan(every=every, sink=sink)
    run = scheduler.run(specs, checkpoint=plan, restore=restore)
    return RecoveryReport(
        run=run, crashes=tuple(hit), resumed_from=tuple(resumed)
    )
