"""``repro.chaos`` — runtime tier loss, crash-consistent recovery,
and cross-layer invariant sanitizing.

The fault layer (:mod:`repro.faults`) changes how fast the memory
hierarchy *moves*; this package drives what happens when it changes
*shape* at runtime — a CXL device surprise-removed, a pmem namespace
failing, an SSD dying mid-serve — and makes the resulting recovery
machinery trustworthy:

* seeded **chaos schedules** mixing structural faults (tier loss,
  capacity shrink, correlated outage) with bandwidth noise
  (:func:`generate_chaos_schedule`);
* **crash-consistent recovery**: checkpoint every scheduler boundary,
  crash anywhere, resume bit-identically
  (:func:`run_with_crashes`, over
  :class:`~repro.serve.state.CheckpointPlan`);
* a cross-layer **invariant sanitizer** runnable at every boundary
  behind ``--sanitize`` (:class:`SanitizerHarness`).

See ``docs/chaos.md`` for the subsystem guide.
"""

from repro.chaos.recovery import RecoveryReport, run_with_crashes
from repro.chaos.sanitizer import (
    DEFAULT_PRICING_TOLERANCE,
    SanitizerHarness,
    SanitizerViolation,
)
from repro.chaos.schedule import (
    DEFAULT_CHAOS_TARGETS,
    generate_chaos_schedule,
)
from repro.serve.state import CheckpointPlan

__all__ = [
    "CheckpointPlan",
    "DEFAULT_CHAOS_TARGETS",
    "DEFAULT_PRICING_TOLERANCE",
    "RecoveryReport",
    "SanitizerHarness",
    "SanitizerViolation",
    "generate_chaos_schedule",
    "run_with_crashes",
]
