"""Seeded chaos-schedule generation.

:func:`generate_chaos_schedule` draws a reproducible mix of
structural and bandwidth faults for a serving span from one seed —
tier losses, capacity shrinks, correlated outages, GC-style
degradation windows, and transient-failure noise — so chaos
experiments can sweep scenarios (``seed x intensity``) without
hand-writing schedules.  The same ``(seed, span_s, targets,
intensity)`` always yields the same
:class:`~repro.faults.models.FaultSchedule`, and the schedule
round-trips through its JSON form, so a scenario found by sweeping
can be pinned in a test verbatim.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.models import (
    DISK_TARGET,
    HOST_TARGET,
    CapacityShrink,
    CorrelatedOutage,
    DegradationWindow,
    FaultModel,
    FaultSchedule,
    TierLoss,
    TransientFaults,
)

#: Default structural targets: the conventional tier names the KV
#: manager maps budgets onto.
DEFAULT_CHAOS_TARGETS: Tuple[str, ...] = (DISK_TARGET, HOST_TARGET)


def generate_chaos_schedule(
    seed: int,
    span_s: float,
    targets: Sequence[str] = DEFAULT_CHAOS_TARGETS,
    intensity: float = 1.0,
    structural_only: bool = False,
) -> FaultSchedule:
    """Draw one reproducible chaos scenario for a serving span.

    ``intensity`` scales both how *many* faults are drawn and how
    *long* loss windows last; ``0.0`` yields an empty (zero) schedule
    whose attached run is bit-identical to a fault-free one.
    ``structural_only`` drops the bandwidth/transient noise, leaving
    pure topology chaos (useful for isolating rescue behavior).
    """
    if span_s <= 0:
        raise ConfigurationError("span_s must be positive")
    if intensity < 0:
        raise ConfigurationError("intensity must be >= 0")
    if not targets:
        raise ConfigurationError(
            "chaos needs at least one fault target"
        )
    rng = random.Random(int(seed))
    faults: List[FaultModel] = []
    if intensity > 0:
        targets = tuple(targets)
        # One windowed loss per target, probability rising with
        # intensity; the first target always loses once so every
        # non-zero scenario exercises the structural path.
        for index, target in enumerate(targets):
            if index > 0 and rng.random() > min(1.0, 0.5 * intensity):
                continue
            start = rng.uniform(0.15, 0.45) * span_s
            duration = (
                rng.uniform(0.1, 0.25) * span_s * min(2.0, intensity)
            )
            faults.append(
                TierLoss(
                    target=target,
                    start_s=round(start, 3),
                    duration_s=round(duration, 3),
                )
            )
        # A capacity shrink on a surviving tier.
        shrink_target = targets[rng.randrange(len(targets))]
        faults.append(
            CapacityShrink(
                target=shrink_target,
                fraction=round(rng.uniform(0.35, 0.7), 3),
                start_s=round(rng.uniform(0.55, 0.75) * span_s, 3),
                duration_s=round(rng.uniform(0.1, 0.2) * span_s, 3),
            )
        )
        # High intensity adds a correlated multi-tier outage.
        if intensity >= 2.0 and len(targets) > 1:
            start = rng.uniform(0.5, 0.7) * span_s
            faults.append(
                CorrelatedOutage(
                    target=targets[0],
                    targets=targets[1:],
                    start_s=round(start, 3),
                    duration_s=round(
                        rng.uniform(0.03, 0.08) * span_s, 3
                    ),
                    lose_state=False,
                )
            )
        if not structural_only:
            faults.append(
                DegradationWindow(
                    target=HOST_TARGET,
                    slowdown=round(1.0 + rng.uniform(1.0, 3.0), 2),
                    start_s=round(rng.uniform(0.05, 0.15) * span_s, 3),
                    duration_s=round(rng.uniform(0.05, 0.1) * span_s, 3),
                )
            )
            faults.append(
                TransientFaults(
                    target=HOST_TARGET,
                    probability=round(
                        min(0.2, 0.02 * intensity), 4
                    ),
                )
            )
    return FaultSchedule(faults=tuple(faults), seed=int(seed))
