"""Cross-layer invariant sanitizer for serving runs.

``SanitizerHarness`` is a set of cheap, RNG-free checkers the
scheduler invokes at every iteration boundary (and once at the end of
the run) when attached via ``--sanitize`` / ``sanitize=True``:

* **clock** — virtual time never moves backwards across boundaries,
  and the iteration timeline is non-decreasing.
* **conservation** — every absorbed arrival is in exactly one place:
  ``finished + shed + waiting + running == absorbed``.
* **kv-accounting** — each tier's used-byte counter equals the sum of
  its resident extents, and no enforced tier is over its effective
  capacity.
* **lost-tiers** — a structurally lost tier holds zero bytes once the
  boundary's rescue/shed response has run (no stranded, leaked KV).
* **cache-stats** — the shared price cache's counters are internally
  consistent (``lookups == hits + misses``, rates in ``[0, 1]``).
* **price-agreement** — on sampled boundaries, the analytic and event
  pricing backends agree (within tolerance) on the cost of this
  configuration's decode iteration.  The harness owns private backend
  instances, so the run's shared ``PriceCache`` counters — and every
  priced result — are untouched by sanitizing.

The harness never mutates scheduler, KV, injector, or engine state
and never consumes randomness: a run with the sanitizer attached is
bit-identical to one without (pinned by ``tests/chaos``).  In strict
mode (the default) the first violation raises
:class:`~repro.errors.SanitizerError`; otherwise violations are
collected and surfaced via :meth:`SanitizerHarness.report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SanitizerError

#: Relative disagreement tolerated between pricing backends.  The
#: analytic backend serializes what the event backend overlaps, so
#: they agree exactly only for fault-free, overlap-consistent specs;
#: the check guards against order-of-magnitude drift, not ULPs.
DEFAULT_PRICING_TOLERANCE = 0.2


@dataclass(frozen=True)
class SanitizerViolation:
    """One failed invariant check."""

    check: str
    boundary: int
    detail: str


class SanitizerHarness:
    """Boundary-by-boundary invariant checking for one serving run."""

    #: Checker names, for the report's per-check counters.
    CHECKS = (
        "clock",
        "conservation",
        "kv_accounting",
        "lost_tiers",
        "cache_stats",
        "price_agreement",
    )

    def __init__(
        self,
        strict: bool = True,
        pricing_check_every: int = 64,
        pricing_tolerance: float = DEFAULT_PRICING_TOLERANCE,
    ) -> None:
        self.strict = bool(strict)
        #: Boundary sampling period for the (comparatively expensive)
        #: backend-agreement check; ``0`` disables it.
        self.pricing_check_every = max(0, int(pricing_check_every))
        self.pricing_tolerance = float(pricing_tolerance)
        self.violations: List[SanitizerViolation] = []
        self.boundaries = 0
        self.checks: Dict[str, int] = {name: 0 for name in self.CHECKS}
        self._last_now: Optional[float] = None
        self._last_timeline_s: Optional[float] = None
        #: Private (AnalyticBackend, EventBackend) pair — lazily
        #: built, never the run's own backend or cache.
        self._backends = None
        #: spec ids already price-checked (the spec is constant per
        #: run; re-pricing it would only re-hit the private memo).
        self._priced_specs: set = set()

    # -- plumbing ------------------------------------------------------

    def _fail(self, check: str, boundary: int, detail: str) -> None:
        violation = SanitizerViolation(
            check=check, boundary=boundary, detail=detail
        )
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(check, boundary, detail)

    def report(self) -> Dict[str, object]:
        """Machine-readable summary of what was checked and found."""
        return {
            "strict": self.strict,
            "boundaries": self.boundaries,
            "checks": dict(self.checks),
            "violations": [
                {
                    "check": violation.check,
                    "boundary": violation.boundary,
                    "detail": violation.detail,
                }
                for violation in self.violations
            ],
        }

    # -- scheduler hooks ----------------------------------------------

    def observe(self, boundary, now, state, scheduler, engine) -> None:
        """Run every checker at one iteration boundary."""
        self.boundaries += 1
        self._check_clock(boundary, now, state)
        self._check_conservation(boundary, state)
        kv = scheduler.kv
        if kv is not None:
            self._check_kv_accounting(boundary, kv)
            self._check_lost_tiers(boundary, kv)
        self._check_cache_stats(boundary, scheduler)
        if (
            kv is not None
            and self.pricing_check_every
            and self.boundaries % self.pricing_check_every == 1
        ):
            self._check_price_agreement(boundary, kv)

    def finish(self, state, scheduler, engine) -> None:
        """End-of-run checks: everything accounted for and released."""
        boundary = state.boundary
        outstanding = len(state.pending) - (
            len(state.records) + len(state.shed_records)
        )
        if outstanding > 0:
            self.checks["conservation"] += 1
            self._fail(
                "conservation",
                boundary,
                f"run ended with {outstanding} request(s) neither "
                "finished nor shed",
            )
        kv = scheduler.kv
        if kv is not None:
            self.checks["kv_accounting"] += 1
            leaked = {
                tier: used
                for tier, used in kv.occupancy().items()
                if used != 0
            }
            if leaked:
                self._fail(
                    "kv_accounting",
                    boundary,
                    "KV bytes leaked past the end of the run "
                    f"(every request is finished or shed): {leaked}",
                )

    # -- checkers ------------------------------------------------------

    def _check_clock(self, boundary, now, state) -> None:
        self.checks["clock"] += 1
        if self._last_now is not None and now < self._last_now:
            self._fail(
                "clock",
                boundary,
                f"virtual time moved backwards: {self._last_now} -> "
                f"{now}",
            )
        self._last_now = now
        if state.timeline:
            sample_s = state.timeline[-1].time_s
            if (
                self._last_timeline_s is not None
                and sample_s < self._last_timeline_s
            ):
                self._fail(
                    "clock",
                    boundary,
                    "iteration timeline is not monotonic: "
                    f"{self._last_timeline_s} -> {sample_s}",
                )
            self._last_timeline_s = sample_s

    def _check_conservation(self, boundary, state) -> None:
        self.checks["conservation"] += 1
        accounted = (
            len(state.records)
            + len(state.shed_records)
            + len(state.waiting)
            + len(state.running)
        )
        if accounted != state.next_arrival:
            self._fail(
                "conservation",
                boundary,
                f"absorbed {state.next_arrival} request(s) but "
                f"finished+shed+waiting+running == {accounted}",
            )
        waiting_ids = {entry[-1].spec.request_id for entry in state.waiting}
        running_ids = {
            request.spec.request_id for request in state.running
        }
        overlap = waiting_ids & running_ids
        if overlap:
            self._fail(
                "conservation",
                boundary,
                f"request(s) {sorted(overlap)} are both waiting and "
                "running",
            )

    def _check_kv_accounting(self, boundary, kv) -> None:
        self.checks["kv_accounting"] += 1
        tiermap = kv.tiermap
        recomputed: Dict[str, int] = {
            budget.name: 0 for budget in kv.topology.budgets
        }
        for request_id in tiermap.request_ids():
            for extent in tiermap.extents_of(request_id):
                recomputed[extent.tier_name] += extent.nbytes
        for budget in kv.topology.budgets:
            used = tiermap.used_bytes(budget.name)
            if used != recomputed[budget.name]:
                self._fail(
                    "kv_accounting",
                    boundary,
                    f"tier {budget.name!r} counter says {used} B but "
                    f"its extents sum to {recomputed[budget.name]} B",
                )
            if used < 0:
                self._fail(
                    "kv_accounting",
                    boundary,
                    f"tier {budget.name!r} has negative occupancy "
                    f"({used} B)",
                )
            if (
                tiermap.enforce
                and budget.name not in kv.lost_tiers
                and used > tiermap.capacity_bytes(budget.name)
            ):
                self._fail(
                    "kv_accounting",
                    boundary,
                    f"tier {budget.name!r} holds {used} B over its "
                    f"effective capacity "
                    f"{tiermap.capacity_bytes(budget.name)} B",
                )

    def _check_lost_tiers(self, boundary, kv) -> None:
        self.checks["lost_tiers"] += 1
        for tier in sorted(kv.lost_tiers):
            used = kv.tiermap.used_bytes(tier)
            if used != 0:
                self._fail(
                    "lost_tiers",
                    boundary,
                    f"lost tier {tier!r} still holds {used} B after "
                    "the rescue/shed response (stranded KV)",
                )

    def _check_cache_stats(self, boundary, scheduler) -> None:
        cache = getattr(scheduler.costs, "cache", None)
        stats = getattr(cache, "stats", None)
        if stats is None:
            return
        self.checks["cache_stats"] += 1
        hits = getattr(stats, "hits", 0)
        misses = getattr(stats, "misses", 0)
        lookups = getattr(stats, "lookups", hits + misses)
        if hits < 0 or misses < 0:
            self._fail(
                "cache_stats",
                boundary,
                f"price cache counters went negative: hits={hits} "
                f"misses={misses}",
            )
        if lookups != hits + misses:
            self._fail(
                "cache_stats",
                boundary,
                f"price cache lookups ({lookups}) != hits ({hits}) + "
                f"misses ({misses})",
            )
        rate = getattr(stats, "hit_rate", 0.0)
        if not 0.0 <= rate <= 1.0:
            self._fail(
                "cache_stats",
                boundary,
                f"price cache hit rate {rate} outside [0, 1]",
            )

    def _check_price_agreement(self, boundary, kv) -> None:
        spec = kv.spec
        if id(spec) in self._priced_specs:
            return
        self.checks["price_agreement"] += 1
        self._priced_specs.add(id(spec))
        from repro.core.metrics import Stage
        from repro.pricing import AnalyticBackend, EventBackend

        if self._backends is None:
            self._backends = (AnalyticBackend(), EventBackend())
        analytic, event = self._backends
        context = spec.prompt_len + spec.gen_len
        analytic_s = analytic.iteration_parts(
            spec, Stage.DECODE, context
        ).total_s()
        event_s = event.iteration_parts(
            spec, Stage.DECODE, context
        ).total_s()
        ceiling = max(analytic_s, event_s)
        if ceiling <= 0.0:
            if analytic_s != event_s:
                self._fail(
                    "price_agreement",
                    boundary,
                    f"degenerate decode prices: analytic={analytic_s} "
                    f"event={event_s}",
                )
            return
        gap = abs(analytic_s - event_s) / ceiling
        if gap > self.pricing_tolerance:
            self._fail(
                "price_agreement",
                boundary,
                "analytic and event backends disagree on one decode "
                f"iteration: {analytic_s:.6f}s vs {event_s:.6f}s "
                f"({gap:.1%} > {self.pricing_tolerance:.1%})",
            )
