"""Intel UPI inter-socket link model."""

from __future__ import annotations

from repro.interconnect.link import Link
from repro.memory import calibration as cal


class UpiLink(Link):
    """The aggregate UPI connection between the two sockets."""

    def __init__(
        self,
        bandwidth: float = cal.UPI_BANDWIDTH,
        latency_s: float = cal.UPI_LATENCY,
    ) -> None:
        super().__init__(
            name="UPI",
            bandwidth_up=bandwidth,
            bandwidth_down=bandwidth,
            latency_s=latency_s,
        )
