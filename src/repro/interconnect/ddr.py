"""DDR memory-channel model (used to derive socket DRAM bandwidth)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DdrChannel:
    """One DDR channel.

    Attributes:
        mega_transfers: Transfer rate in MT/s (e.g. 2933 for DDR4-2933).
        bus_bytes: Bus width in bytes (8 for standard DDR).
        efficiency: Sustained fraction of the pin rate.
    """

    mega_transfers: int
    bus_bytes: int = 8
    efficiency: float = 0.84

    def __post_init__(self) -> None:
        if self.mega_transfers <= 0 or self.bus_bytes <= 0:
            raise ConfigurationError("DDR channel parameters must be positive")
        if not (0 < self.efficiency <= 1):
            raise ConfigurationError("DDR efficiency must be in (0, 1]")

    @property
    def peak_bandwidth(self) -> float:
        """Pin-rate bandwidth (bytes/s)."""
        return self.mega_transfers * 1e6 * self.bus_bytes

    @property
    def sustained_bandwidth(self) -> float:
        return self.peak_bandwidth * self.efficiency


def socket_bandwidth(channel: DdrChannel, channels: int) -> float:
    """Aggregate sustained bandwidth of ``channels`` identical channels."""
    if channels <= 0:
        raise ConfigurationError("channel count must be positive")
    return channel.sustained_bandwidth * channels


#: Table I: DDR4-2933 across 8 channels per socket, ~157 GB/s sustained.
DDR4_2933 = DdrChannel(mega_transfers=2933)
