"""Base abstraction for point-to-point interconnect links."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Link:
    """A duplex point-to-point link.

    Attributes:
        name: Human-readable name.
        bandwidth_up: Achievable bandwidth toward the device (bytes/s);
            for PCIe this is the host-to-device direction.
        bandwidth_down: Achievable bandwidth from the device (bytes/s).
        latency_s: One-way latency.
        setup_latency_s: Fixed per-transfer cost (DMA descriptor setup,
            driver entry); dominates only tiny transfers.
    """

    name: str
    bandwidth_up: float
    bandwidth_down: float
    latency_s: float = 0.0
    setup_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_up <= 0 or self.bandwidth_down <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency_s < 0 or self.setup_latency_s < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    def transfer_time(self, nbytes: float, *, toward_device: bool) -> float:
        """Time to move ``nbytes`` one way across this link alone."""
        if nbytes < 0:
            raise ValueError("transfer size must be >= 0")
        if nbytes == 0:
            return 0.0
        rate = self.bandwidth_up if toward_device else self.bandwidth_down
        return self.setup_latency_s + self.latency_s + nbytes / rate
