"""Interconnect models: PCIe, DDR, UPI, and the transfer-path solver.

The solver is the single place that answers "how long does it take to
move N bytes between X and Y on this platform?" — both the Fig. 3
microbenchmark and the offloading engine's timing backend go through
it, so characterization and end-to-end results are produced by the
same code path.
"""

from repro.interconnect.link import Link
from repro.interconnect.pcie import PcieLink, PCIE_GEN_GT_PER_LANE
from repro.interconnect.ddr import DdrChannel
from repro.interconnect.upi import UpiLink
from repro.interconnect.path import TransferKind, TransferPathSolver

__all__ = [
    "Link",
    "PcieLink",
    "PCIE_GEN_GT_PER_LANE",
    "DdrChannel",
    "UpiLink",
    "TransferKind",
    "TransferPathSolver",
]
