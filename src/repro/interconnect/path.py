"""End-to-end transfer-time solver.

Composes a host-memory region, the NUMA topology, the PCIe link, and
(for the storage tier) a DRAM bounce buffer into a single answer:
*time to move N bytes along a named path*.  Every data movement in the
system — the Fig. 3 microbenchmark and all engine transfers — is
costed here, so the characterization and the end-to-end results can
never drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RoutingError
from repro.interconnect.pcie import PcieLink
from repro.interconnect.upi import UpiLink
from repro.memory import calibration as cal
from repro.memory.hierarchy import HostMemoryConfig, HostRegion
from repro.memory.memory_mode import MemoryModeTechnology
from repro.memory.technology import Direction


class TransferKind(enum.Enum):
    """The data-movement paths the offloading engine uses."""

    HOST_TO_GPU = "host_to_gpu"
    GPU_TO_HOST = "gpu_to_host"
    DISK_TO_GPU = "disk_to_gpu"
    GPU_TO_DISK = "gpu_to_disk"
    DISK_TO_HOST = "disk_to_host"
    HOST_TO_DISK = "host_to_disk"
    HOST_TO_HOST = "host_to_host"


@dataclass
class TransferPathSolver:
    """Computes transfer times over one host-memory configuration.

    ``pcie`` may be passed as ``None`` (the common "use the platform
    default link" case), so callers holding an ``Optional[PcieLink]``
    can forward it directly instead of building conditional kwargs.
    """

    config: HostMemoryConfig
    pcie: Optional[PcieLink] = None
    upi: UpiLink = field(default_factory=UpiLink)
    #: Resident footprint (bytes) the *host* region's transfers stream
    #: over, for technologies whose bandwidth depends on it (Optane's
    #: AIT decay, Memory Mode's cache hit fraction).  ``None`` falls
    #: back to the working set stored on the technology itself — the
    #: microbenchmark path, where callers mutate the shared config via
    #: :meth:`HostMemoryConfig.set_host_working_set`.  Cost models set
    #: this *per solver instance* instead, so concurrent models pricing
    #: different footprints never alias each other's bandwidths.
    host_working_set_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pcie is None:
            self.pcie = PcieLink()

    def _host_working_set(
        self, region: HostRegion
    ) -> Optional[int]:
        """The per-solver footprint override, for host-region queries only.

        Disk-region (and other non-host) queries keep the technology's
        stored working set: the per-model footprint describes what
        streams over the *host* tier.
        """
        if self.host_working_set_bytes is None:
            return None
        if region is self.config.host_region:
            return self.host_working_set_bytes
        return None

    # ------------------------------------------------------------------
    # Single-hop building blocks
    # ------------------------------------------------------------------

    def _memory_rate(
        self,
        region: HostRegion,
        nbytes: float,
        direction: Direction,
        link_cap: Optional[float] = None,
    ) -> float:
        """Rate the region sustains, including a UPI bottleneck if the
        region sits on the socket remote from the GPU.

        Memory Mode needs the link cap *inside* its hit/miss blend: a
        PCIe consumer streams cache hits at PCIe rate, so capping after
        blending against raw DRAM bandwidth would erase the miss
        penalty (see ``MemoryModeTechnology._mixed_bandwidth``).
        """
        technology = region.technology
        working_set = self._host_working_set(region)
        if isinstance(technology, MemoryModeTechnology):
            scale = (
                region.read_scale
                if direction is Direction.READ
                else region.write_scale
            )
            if direction is Direction.READ:
                rate = technology.read_bandwidth(
                    nbytes, link_cap=link_cap, working_set_bytes=working_set
                )
            else:
                rate = technology.write_bandwidth(
                    nbytes, link_cap=link_cap, working_set_bytes=working_set
                )
            rate *= scale
        else:
            rate = region.bandwidth(
                nbytes, direction, working_set_bytes=working_set
            )
            if link_cap is not None:
                rate = min(rate, link_cap)
        if self.config.topology.hops_to_gpu(region.node) > 0:
            rate = min(rate, self.upi.bandwidth_up)
        return rate

    def host_to_gpu_bandwidth(
        self, nbytes: float, region: Optional[HostRegion] = None
    ) -> float:
        """Achievable host->GPU copy bandwidth (bytes/s)."""
        region = region if region is not None else self.config.host_region
        return self._memory_rate(
            region, nbytes, Direction.READ, link_cap=self.pcie.h2d_bandwidth
        )

    def gpu_to_host_bandwidth(
        self, nbytes: float, region: Optional[HostRegion] = None
    ) -> float:
        """Achievable GPU->host copy bandwidth (bytes/s)."""
        region = region if region is not None else self.config.host_region
        return self._memory_rate(
            region, nbytes, Direction.WRITE, link_cap=self.pcie.d2h_bandwidth
        )

    def host_to_gpu_time(
        self, nbytes: float, region: Optional[HostRegion] = None
    ) -> float:
        if nbytes <= 0:
            return 0.0
        region = region if region is not None else self.config.host_region
        rate = self.host_to_gpu_bandwidth(nbytes, region)
        return (
            self.pcie.setup_latency_s
            + region.latency(Direction.READ)
            + nbytes / rate
        )

    def gpu_to_host_time(
        self, nbytes: float, region: Optional[HostRegion] = None
    ) -> float:
        if nbytes <= 0:
            return 0.0
        region = region if region is not None else self.config.host_region
        rate = self.gpu_to_host_bandwidth(nbytes, region)
        return (
            self.pcie.setup_latency_s
            + region.latency(Direction.WRITE)
            + nbytes / rate
        )

    # ------------------------------------------------------------------
    # Storage tier (bounce-buffered)
    # ------------------------------------------------------------------

    def _disk_region(self) -> HostRegion:
        region = self.config.disk_region
        if region is None:
            raise RoutingError(
                f"configuration {self.config.label!r} has no storage tier"
            )
        return region

    def disk_to_gpu_time(self, nbytes: float) -> float:
        """Disk -> (DRAM bounce) -> GPU.

        FlexGen reads storage into a pinned host staging buffer and
        then issues the PCIe copy; chunked double-buffering overlaps
        the two hops only partially
        (:data:`~repro.memory.calibration.BOUNCE_PIPELINE_EFFICIENCY`).
        """
        if nbytes <= 0:
            return 0.0
        disk = self._disk_region()
        disk_time = (
            disk.latency(Direction.READ)
            + nbytes / self._memory_rate(disk, nbytes, Direction.READ)
        )
        pcie_time = (
            self.pcie.setup_latency_s + nbytes / self.pcie.h2d_bandwidth
        )
        if self.config.disk_bounce:
            return (disk_time + pcie_time) * cal.BOUNCE_PIPELINE_EFFICIENCY
        return max(disk_time, pcie_time)

    def gpu_to_disk_time(self, nbytes: float) -> float:
        """GPU -> (DRAM bounce) -> disk."""
        if nbytes <= 0:
            return 0.0
        disk = self._disk_region()
        disk_time = (
            disk.latency(Direction.WRITE)
            + nbytes / self._memory_rate(disk, nbytes, Direction.WRITE)
        )
        pcie_time = (
            self.pcie.setup_latency_s + nbytes / self.pcie.d2h_bandwidth
        )
        if self.config.disk_bounce:
            return (disk_time + pcie_time) * cal.BOUNCE_PIPELINE_EFFICIENCY
        return max(disk_time, pcie_time)

    def disk_to_host_time(self, nbytes: float) -> float:
        """Disk -> host memory (no PCIe hop)."""
        if nbytes <= 0:
            return 0.0
        disk = self._disk_region()
        return disk.latency(Direction.READ) + nbytes / self._memory_rate(
            disk, nbytes, Direction.READ
        )

    def host_to_disk_time(self, nbytes: float) -> float:
        """Host memory -> disk (no PCIe hop; the write mirror of
        :meth:`disk_to_host_time`, used by KV-cache demotions)."""
        if nbytes <= 0:
            return 0.0
        disk = self._disk_region()
        return disk.latency(Direction.WRITE) + nbytes / self._memory_rate(
            disk, nbytes, Direction.WRITE
        )

    def host_to_host_time(self, nbytes: float) -> float:
        """Host-side staging memcpy (e.g. repacking into pinned buffers)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / cal.CPU_MEMCPY_BW

    # ------------------------------------------------------------------
    # Generic entry point
    # ------------------------------------------------------------------

    def transfer_time(
        self,
        nbytes: float,
        kind: TransferKind,
        region: Optional[HostRegion] = None,
    ) -> float:
        """Time (seconds) to move ``nbytes`` along ``kind``."""
        if kind is TransferKind.HOST_TO_GPU:
            return self.host_to_gpu_time(nbytes, region)
        if kind is TransferKind.GPU_TO_HOST:
            return self.gpu_to_host_time(nbytes, region)
        if kind is TransferKind.DISK_TO_GPU:
            return self.disk_to_gpu_time(nbytes)
        if kind is TransferKind.GPU_TO_DISK:
            return self.gpu_to_disk_time(nbytes)
        if kind is TransferKind.DISK_TO_HOST:
            return self.disk_to_host_time(nbytes)
        if kind is TransferKind.HOST_TO_DISK:
            return self.host_to_disk_time(nbytes)
        if kind is TransferKind.HOST_TO_HOST:
            return self.host_to_host_time(nbytes)
        raise RoutingError(f"unsupported transfer kind {kind!r}")

    def measured_bandwidth(
        self,
        nbytes: float,
        kind: TransferKind,
        region: Optional[HostRegion] = None,
    ) -> float:
        """End-to-end bandwidth (bytes/s) as a microbenchmark reports it."""
        time = self.transfer_time(nbytes, kind, region)
        if time <= 0:
            raise RoutingError("cannot report bandwidth for an empty transfer")
        return nbytes / time
