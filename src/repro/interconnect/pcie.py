"""PCI Express link model.

The platform pairs the A100 with 16 PCIe Gen 4 lanes (Table I:
32.0 GB/s theoretical).  Achievable DMA rates are lower and slightly
direction-dependent; the defaults reproduce the paper's Fig. 3 DRAM
plateaus (~24.9 GB/s host-to-GPU, ~27.2 GB/s GPU-to-host, the latter
implied by NVDRAM writes being "88% lower ... maxing out at
3.26 GB/s").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.units import GB

#: Per-lane raw rate in GT/s by PCIe generation.
PCIE_GEN_GT_PER_LANE = {1: 2.5, 2: 5.0, 3: 8.0, 4: 16.0, 5: 32.0, 6: 64.0}

#: Encoding efficiency by generation (8b/10b for gen1/2, 128b/130b after).
_ENCODING = {1: 0.8, 2: 0.8, 3: 128 / 130, 4: 128 / 130, 5: 128 / 130, 6: 1.0}


def theoretical_bandwidth(generation: int, lanes: int) -> float:
    """Raw payload bandwidth (bytes/s) of a PCIe link."""
    try:
        gt = PCIE_GEN_GT_PER_LANE[generation]
    except KeyError:
        raise ConfigurationError(
            f"unknown PCIe generation {generation}"
        ) from None
    if lanes not in (1, 2, 4, 8, 16):
        raise ConfigurationError(f"invalid PCIe lane count {lanes}")
    return gt * 1e9 / 8.0 * _ENCODING[generation] * lanes


@dataclass(frozen=True)
class PcieLink:
    """A host/GPU PCIe connection with direction-specific efficiency."""

    generation: int = 4
    lanes: int = 16
    #: Host-to-device DMA efficiency vs. theoretical.
    h2d_efficiency: float = 0.79
    #: Device-to-host DMA efficiency vs. theoretical.
    d2h_efficiency: float = 0.86
    setup_latency_s: float = cal.PCIE_SETUP_LATENCY

    def __post_init__(self) -> None:
        if not (0 < self.h2d_efficiency <= 1 and 0 < self.d2h_efficiency <= 1):
            raise ConfigurationError("PCIe efficiencies must be in (0, 1]")

    @property
    def theoretical(self) -> float:
        return theoretical_bandwidth(self.generation, self.lanes)

    @property
    def h2d_bandwidth(self) -> float:
        """Achievable host-to-device bandwidth (bytes/s)."""
        return self.theoretical * self.h2d_efficiency

    @property
    def d2h_bandwidth(self) -> float:
        """Achievable device-to-host bandwidth (bytes/s)."""
        return self.theoretical * self.d2h_efficiency


#: The evaluation platform's link (Table I).
A100_PCIE = PcieLink(generation=4, lanes=16)
