"""Exception taxonomy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system, model, or policy configuration is invalid."""


class CapacityError(ReproError):
    """An allocation request exceeds the capacity of a device.

    ``occupancy`` optionally carries a per-tier ``name -> (used,
    capacity)`` snapshot taken at the moment of the failed placement,
    so a chaos-run rejection is debuggable from the log line alone.
    """

    def __init__(
        self,
        device: str,
        requested: int,
        available: int,
        occupancy=None,
    ) -> None:
        self.device = device
        self.requested = int(requested)
        self.available = int(available)
        self.occupancy = dict(occupancy) if occupancy else None
        message = (
            f"device {device!r}: requested {requested} bytes "
            f"but only {available} bytes are available"
        )
        if self.occupancy:
            tiers = ", ".join(
                f"{name}: {used}/{capacity} B"
                for name, (used, capacity) in self.occupancy.items()
            )
            message += f" | tier occupancy: {tiers}"
        super().__init__(message)


class AllocationError(ReproError):
    """A tensor allocation or release was used incorrectly."""


class RoutingError(ReproError):
    """No transfer path exists between two devices."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class PlacementError(ReproError):
    """A weight placement policy produced an invalid assignment."""


class QuantizationError(ReproError):
    """Quantization parameters or payloads are invalid."""


class WorkloadError(ReproError):
    """A workload/request specification is invalid."""


class TransferError(ReproError):
    """A data transfer failed under fault injection.

    Carries enough context for an operator (or a test) to reconstruct
    what happened: which device/link failed, how many attempts were
    made, and how much virtual time the attempts consumed.
    """

    def __init__(
        self,
        device: str,
        attempts: int,
        elapsed_s: float,
        message: str = "",
    ) -> None:
        self.device = device
        self.attempts = int(attempts)
        self.elapsed_s = float(elapsed_s)
        detail = message or (
            f"transfer on {device!r} failed after {attempts} attempt(s) "
            f"({elapsed_s:.3f} s of virtual time)"
        )
        super().__init__(detail)


class RetryExhaustedError(TransferError):
    """Every retry attempt of a transfer failed within the policy."""

    def __init__(self, device: str, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            device,
            attempts,
            elapsed_s,
            f"retries exhausted on {device!r}: {attempts} attempt(s) "
            f"failed over {elapsed_s:.3f} s of virtual time",
        )


class DegradedTierError(TransferError):
    """A memory/storage tier stayed unusable past the retry budget."""

    def __init__(self, device: str, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            device,
            attempts,
            elapsed_s,
            f"tier {device!r} unavailable: still down after "
            f"{attempts} attempt(s) spanning {elapsed_s:.3f} s "
            "of virtual time",
        )


class SanitizerError(ReproError):
    """A cross-layer invariant check failed during a sanitized run.

    Carries the checker's name and the iteration boundary it fired
    at, so a violation can be replayed deterministically.
    """

    def __init__(self, check: str, boundary: int, detail: str) -> None:
        self.check = check
        self.boundary = int(boundary)
        self.detail = detail
        super().__init__(
            f"sanitizer check {check!r} failed at iteration boundary "
            f"{boundary}: {detail}"
        )


class CheckpointError(ReproError):
    """A scheduler checkpoint could not be taken or restored."""


class SimulatedCrash(ReproError):
    """An injected crash stopped a scheduler run mid-stream.

    ``checkpoint`` holds the most recent deterministic state snapshot
    (possibly from an earlier boundary than the crash itself);
    recovery resumes from it and replays the gap bit for bit.
    """

    def __init__(self, boundary: int, checkpoint) -> None:
        self.boundary = int(boundary)
        self.checkpoint = checkpoint
        super().__init__(
            f"simulated crash at iteration boundary {boundary} "
            f"(checkpoint from boundary "
            f"{checkpoint.get('boundary', '?') if checkpoint else '?'})"
        )


class ExperimentError(ReproError):
    """An experiment was requested with unsupported parameters."""


class TelemetryError(ReproError):
    """Telemetry instruments or exports were used incorrectly."""
