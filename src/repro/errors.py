"""Exception taxonomy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system, model, or policy configuration is invalid."""


class CapacityError(ReproError):
    """An allocation request exceeds the capacity of a device."""

    def __init__(self, device: str, requested: int, available: int) -> None:
        self.device = device
        self.requested = int(requested)
        self.available = int(available)
        super().__init__(
            f"device {device!r}: requested {requested} bytes "
            f"but only {available} bytes are available"
        )


class AllocationError(ReproError):
    """A tensor allocation or release was used incorrectly."""


class RoutingError(ReproError):
    """No transfer path exists between two devices."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class PlacementError(ReproError):
    """A weight placement policy produced an invalid assignment."""


class QuantizationError(ReproError):
    """Quantization parameters or payloads are invalid."""


class WorkloadError(ReproError):
    """A workload/request specification is invalid."""


class TransferError(ReproError):
    """A data transfer failed under fault injection.

    Carries enough context for an operator (or a test) to reconstruct
    what happened: which device/link failed, how many attempts were
    made, and how much virtual time the attempts consumed.
    """

    def __init__(
        self,
        device: str,
        attempts: int,
        elapsed_s: float,
        message: str = "",
    ) -> None:
        self.device = device
        self.attempts = int(attempts)
        self.elapsed_s = float(elapsed_s)
        detail = message or (
            f"transfer on {device!r} failed after {attempts} attempt(s) "
            f"({elapsed_s:.3f} s of virtual time)"
        )
        super().__init__(detail)


class RetryExhaustedError(TransferError):
    """Every retry attempt of a transfer failed within the policy."""

    def __init__(self, device: str, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            device,
            attempts,
            elapsed_s,
            f"retries exhausted on {device!r}: {attempts} attempt(s) "
            f"failed over {elapsed_s:.3f} s of virtual time",
        )


class DegradedTierError(TransferError):
    """A memory/storage tier stayed unusable past the retry budget."""

    def __init__(self, device: str, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            device,
            attempts,
            elapsed_s,
            f"tier {device!r} unavailable: still down after "
            f"{attempts} attempt(s) spanning {elapsed_s:.3f} s "
            "of virtual time",
        )


class ExperimentError(ReproError):
    """An experiment was requested with unsupported parameters."""


class TelemetryError(ReproError):
    """Telemetry instruments or exports were used incorrectly."""
