"""Exception taxonomy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system, model, or policy configuration is invalid."""


class CapacityError(ReproError):
    """An allocation request exceeds the capacity of a device."""

    def __init__(self, device: str, requested: int, available: int) -> None:
        self.device = device
        self.requested = int(requested)
        self.available = int(available)
        super().__init__(
            f"device {device!r}: requested {requested} bytes "
            f"but only {available} bytes are available"
        )


class AllocationError(ReproError):
    """A tensor allocation or release was used incorrectly."""


class RoutingError(ReproError):
    """No transfer path exists between two devices."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class PlacementError(ReproError):
    """A weight placement policy produced an invalid assignment."""


class QuantizationError(ReproError):
    """Quantization parameters or payloads are invalid."""


class WorkloadError(ReproError):
    """A workload/request specification is invalid."""


class ExperimentError(ReproError):
    """An experiment was requested with unsupported parameters."""
