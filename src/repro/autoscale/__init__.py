"""``repro.autoscale`` — planner-in-the-loop fleet autoscaling.

The capacity planner (:mod:`repro.plan`) answers "how many replicas
does this load need" offline; this package puts that answer *in the
serving loop*.  An :class:`AutoscaleController` rides inside a
:class:`~repro.fleet.simulator.FleetSimulator` run, watches streaming
telemetry in virtual time (an arrival-rate
:class:`~repro.obs.RollingCounter` and a TTFT
:class:`~repro.obs.WindowedHistogram`), and at every control interval
re-plans through a warm :class:`~repro.plan.CapacityPlanner` — the
engines and vectorized batch-ladder prices are built once, so each
re-plan is pure arithmetic.  Applied decisions add replicas (fresh
:func:`~repro.faults.seed_stream` sibling streams — survivors' RNG is
never perturbed) or drain them (the replica finishes its queue, takes
no new work, and retires), with hysteresis and cooldown from the
:class:`AutoscalePolicy`.

Determinism and inertness mirror the rest of the repo: the same seed
and trace produce bit-identical decisions and records, and a fleet
run without a controller attached executes the exact pre-autoscale
instruction stream.  Decisions surface as ``autoscale/`` gauges and
``autoscale_decision`` span events (see ``docs/fleet.md``).
"""

from repro.autoscale.policy import AutoscalePolicy, ScalingDecision
from repro.autoscale.controller import AutoscaleController

__all__ = [
    "AutoscaleController",
    "AutoscalePolicy",
    "ScalingDecision",
]
