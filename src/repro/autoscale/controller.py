"""The planner-in-the-loop control plane for fleet serving.

:class:`AutoscaleController` is a passive, deterministic observer of
the fleet's virtual timeline until a control interval elapses; then
it turns the trailing arrival rate into an offered-load estimate,
re-plans capacity through a warm :class:`~repro.plan.CapacityPlanner`
(the priced ladders are built once, at construction), and emits a
:class:`~repro.autoscale.policy.ScalingDecision` the fleet applies by
adding or draining replicas.

Everything the controller reads is a deterministic function of
virtual time — the arrival counter, the TTFT window, the plan — so
the decision stream replays bit-identically for the same seed and
trace, which is what lets autoscaled runs live under the same
determinism guard tests as everything else in the repo.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.qos import QosTarget
from repro.obs.window import RollingCounter, WindowConfig, WindowedHistogram
from repro.autoscale.policy import AutoscalePolicy, ScalingDecision
from repro.plan import DEFAULT_PLACEMENTS, CapacityPlanner
from repro.serve.request import RequestRecord, RequestSpec

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Watches streaming telemetry, periodically re-plans capacity.

    ``planner`` may be injected (anything with
    ``plan(target, rates_rps=..., replica_counts=...)``) for tests;
    by default a :class:`~repro.plan.CapacityPlanner` scoped to the
    fleet's model/host — and, with ``policy.replan_placement``, all
    placements — is built once and reused warm at every interval.
    """

    def __init__(
        self,
        policy: AutoscalePolicy,
        target: QosTarget,
        *,
        model: str = "opt-175b",
        host: str = "NVDRAM",
        placement: str = "helm",
        compress_weights: bool = True,
        overlap: bool = True,
        prompt_len: int = 128,
        gen_len: int = 21,
        max_batch_limit: int = 512,
        planner=None,
    ) -> None:
        self.policy = policy
        self.target = target
        self.placement = placement
        if planner is None:
            placements = (
                DEFAULT_PLACEMENTS
                if policy.replan_placement
                else (placement,)
            )
            planner = CapacityPlanner(
                model=model,
                hosts=(host,),
                placements=placements,
                compress_weights=compress_weights,
                prompt_len=prompt_len,
                gen_len=gen_len,
                overlap=overlap,
                max_batch_limit=max_batch_limit,
            )
        self.planner = planner
        window = WindowConfig(
            width_s=policy.effective_window_s,
            windows=max(2, policy.rate_windows + 2),
        )
        self._arrivals = RollingCounter("autoscale_arrivals", window)
        self._ttft = WindowedHistogram("autoscale_ttft", window)
        self._next_decision_s = policy.interval_s
        self._last_change_s = -math.inf
        self._down_streak = 0
        self.decisions: List[ScalingDecision] = []
        self._scope = None
        self._span = None
        self._replica_range = tuple(
            range(policy.min_replicas, policy.max_replicas + 1)
        )

    # -- streaming inputs ----------------------------------------------

    def on_arrival(self, spec: RequestSpec) -> None:
        self._arrivals.inc(spec.arrival_s)

    def on_finish(self, record: RequestRecord) -> None:
        # Key the observation by when the first token was emitted —
        # that is the instant the TTFT became known.
        self._ttft.observe(record.ttft_s, record.arrival_s + record.ttft_s)

    # -- telemetry ------------------------------------------------------

    def bind(self, telemetry) -> None:
        """Publish decisions as ``autoscale/`` gauges + span events."""
        if telemetry is None or not telemetry.enabled:
            return
        self._scope = telemetry.scoped("autoscale")
        self._span = telemetry.tracer.start(
            "autoscale controller", 0.0, category="run"
        )

    def finalize(self, now: float) -> None:
        if self._span is not None and not self._span.finished:
            self._span.set("decisions", len(self.decisions))
            self._span.set(
                "applied",
                sum(1 for d in self.decisions if d.applied),
            )
            self._span.end(max(now, 0.0))

    def _publish(self, decision: ScalingDecision) -> None:
        if self._scope is not None:
            self._scope.gauge("offered_rate_rps").set(decision.offered_rps)
            self._scope.gauge("ttft_p99_s").set(decision.ttft_p99_s)
            self._scope.gauge("desired_replicas").set(
                decision.desired_replicas
            )
            self._scope.gauge("replicas").set(
                decision.desired_replicas
                if decision.applied
                else decision.current_replicas
            )
            self._scope.gauge("decisions").set(len(self.decisions))
        if self._span is not None:
            self._span.event(
                "autoscale_decision",
                decision.at_s,
                offered_rps=decision.offered_rps,
                current=decision.current_replicas,
                desired=decision.desired_replicas,
                applied=decision.applied,
                reason=decision.reason,
            )

    # -- the control loop ----------------------------------------------

    def maybe_decide(
        self, now: float, current_replicas: int
    ) -> Optional[ScalingDecision]:
        """Run one control evaluation if an interval has elapsed.

        Returns the decision (also appended to :attr:`decisions`), or
        ``None`` between intervals.  The fleet acts only when
        ``decision.applied`` and the desired count differs.
        """
        if now < self._next_decision_s:
            return None
        policy = self.policy
        # Skip empty intervals deterministically (sparse troughs).
        while self._next_decision_s <= now:
            self._next_decision_s += policy.interval_s
        observed = self._arrivals.rate(policy.rate_windows, now=now)
        offered = observed * policy.headroom
        ttft_p99 = self._ttft.quantile(
            0.99, windows=policy.rate_windows, now=now
        )
        batch_cap: Optional[int] = None
        placement: Optional[str] = None
        if offered <= 0:
            desired = policy.min_replicas
            reason = "idle: no arrivals in the trailing windows"
        else:
            plan = self.planner.plan(
                self.target,
                rates_rps=(offered,),
                replica_counts=self._replica_range,
            )
            feasible = plan.feasible_candidates()
            if not feasible:
                desired = policy.max_replicas
                reason = (
                    f"infeasible at {offered:.4f} rps even at "
                    f"{policy.max_replicas} replicas; scaling to max"
                )
            else:
                # The plan's per-token cost is replica-invariant (its
                # batches are assumed full), so "cheapest feasible"
                # alone would always ride the lower-queueing-delay
                # tie-break up to max replicas.  Provisioned-but-idle
                # replicas burn real GPU-seconds: take the *smallest*
                # feasible count, then the cheapest candidate at it
                # (candidates are already in deterministic cost
                # order).
                desired = min(c.replicas for c in feasible)
                chosen = next(
                    c for c in feasible if c.replicas == desired
                )
                if policy.apply_batch_cap:
                    batch_cap = chosen.batch_size
                if policy.replan_placement:
                    placement = chosen.placement
                reason = (
                    f"plan: {chosen.replicas} replica(s) x batch "
                    f"{chosen.batch_size} covers {offered:.4f} rps "
                    f"(ttft {chosen.ttft_s:.2f}s, rho "
                    f"{chosen.utilization:.2f})"
                )
        if (
            policy.breach_boost
            and self.target.max_ttft_s is not None
            and ttft_p99 > self.target.max_ttft_s
            and desired <= current_replicas
        ):
            desired = current_replicas + 1
            reason = (
                f"observed ttft p99 {ttft_p99:.2f}s breaches "
                f"{self.target.max_ttft_s:.2f}s; boosting past the plan"
            )
        desired = max(policy.min_replicas, min(policy.max_replicas, desired))
        cooled = now - self._last_change_s >= policy.cooldown_s
        applied = False
        if desired > current_replicas:
            self._down_streak = 0
            applied = cooled
            if not cooled:
                reason += " [held: cooldown]"
        elif desired < current_replicas:
            self._down_streak += 1
            if self._down_streak < policy.scale_down_periods:
                reason += (
                    f" [held: shrink streak "
                    f"{self._down_streak}/{policy.scale_down_periods}]"
                )
            elif not cooled:
                reason += " [held: cooldown]"
            else:
                applied = True
        else:
            self._down_streak = 0
        if applied:
            self._last_change_s = now
            self._down_streak = 0
        decision = ScalingDecision(
            at_s=now,
            offered_rps=offered,
            ttft_p99_s=ttft_p99,
            current_replicas=current_replicas,
            desired_replicas=desired,
            batch_cap=batch_cap,
            placement=placement,
            reason=reason,
            applied=applied,
        )
        self.decisions.append(decision)
        self._publish(decision)
        return decision
