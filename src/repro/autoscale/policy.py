"""Autoscaling policy knobs and the decision record.

The policy is deliberately small: a control interval, replica bounds,
a headroom multiplier on the observed rate, and two dampers —
*cooldown* (minimum virtual time between applied changes) and
*scale-down streaks* (the planner must ask for fewer replicas at
several consecutive intervals before a drain is applied).  Scale-ups
only wait for cooldown; under-capacity hurts the SLO immediately,
while over-capacity only costs money.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["AutoscalePolicy", "ScalingDecision"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for the planner-in-the-loop controller.

    ``interval_s`` is the control period in *virtual* seconds; it is
    also the default telemetry window width, so "the last
    ``rate_windows`` windows" spans exactly that many control
    periods.  ``headroom`` inflates the observed arrival rate before
    planning, so capacity is sized for a bit more than the trailing
    average — the classic utilization-target trick.
    """

    interval_s: float = 60.0
    cooldown_s: float = 120.0
    min_replicas: int = 1
    max_replicas: int = 4
    #: Trailing windows used for the rate estimate and TTFT readout.
    rate_windows: int = 2
    #: Multiplier on the observed rate before re-planning.
    headroom: float = 1.25
    #: Consecutive shrink-requesting decisions before a drain.
    scale_down_periods: int = 2
    #: Add one replica beyond the plan when the *observed* windowed
    #: TTFT p99 already breaches the target (the plan's closed-form
    #: queueing model can lag a burst).
    breach_boost: bool = True
    #: Cap new replicas' admission at the plan's chosen batch size.
    apply_batch_cap: bool = True
    #: Let the planner sweep placements too; new replicas are built
    #: with the chosen scheme (existing replicas keep theirs).
    replan_placement: bool = False
    #: Telemetry window width; defaults to ``interval_s``.
    window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError(
                "autoscale interval must be positive"
            )
        if self.cooldown_s < 0:
            raise ConfigurationError("autoscale cooldown must be >= 0")
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigurationError(
                "max_replicas must be >= min_replicas"
            )
        if self.rate_windows < 1:
            raise ConfigurationError("rate_windows must be >= 1")
        if self.headroom <= 0:
            raise ConfigurationError("headroom must be positive")
        if self.scale_down_periods < 1:
            raise ConfigurationError("scale_down_periods must be >= 1")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError("window width must be positive")

    @property
    def effective_window_s(self) -> float:
        return self.window_s if self.window_s is not None else self.interval_s


@dataclass(frozen=True)
class ScalingDecision:
    """One control-interval verdict, applied or not."""

    at_s: float
    #: Headroom-inflated rate the plan was asked to cover.
    offered_rps: float
    #: Observed windowed TTFT p99 at decision time (0 when no data).
    ttft_p99_s: float
    current_replicas: int
    desired_replicas: int
    #: The plan's chosen batch point (None when the plan was
    #: infeasible or the fleet was idle).
    batch_cap: Optional[int]
    #: The plan's chosen placement (None unless ``replan_placement``).
    placement: Optional[str]
    reason: str
    #: Whether the fleet acted on it (cooldown/hysteresis may veto).
    applied: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "offered_rps": self.offered_rps,
            "ttft_p99_s": self.ttft_p99_s,
            "current_replicas": self.current_replicas,
            "desired_replicas": self.desired_replicas,
            "batch_cap": self.batch_cap,
            "placement": self.placement,
            "reason": self.reason,
            "applied": self.applied,
        }
