"""Generation requests and the paper's workload shape.

Section III-B: input sequences limited to 128 tokens, outputs to 21
tokens, prompts drawn from C4 and repeated 10 times each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.corpus import SyntheticCorpus
from repro.workloads.tokenizer import WordPieceTokenizer

#: The paper's sequence shape (Section III-B).
PAPER_PROMPT_LEN = 128
PAPER_GEN_LEN = 21
PAPER_REPEATS = 10


@dataclass(frozen=True)
class GenerationRequest:
    """One prompt with its generation budget."""

    prompt_ids: Tuple[int, ...]
    gen_len: int

    def __post_init__(self) -> None:
        if not self.prompt_ids:
            raise WorkloadError("a request needs at least one prompt token")
        if self.gen_len <= 0:
            raise WorkloadError("gen_len must be positive")

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)


@dataclass(frozen=True)
class RequestBatch:
    """A batch of same-shape requests, as FlexGen schedules them."""

    requests: Tuple[GenerationRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise WorkloadError("a batch needs at least one request")
        lengths = {request.prompt_len for request in self.requests}
        gen_lens = {request.gen_len for request in self.requests}
        if len(lengths) != 1 or len(gen_lens) != 1:
            raise WorkloadError(
                "FlexGen batches require uniform prompt and generation "
                "lengths"
            )

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def prompt_len(self) -> int:
        return self.requests[0].prompt_len

    @property
    def gen_len(self) -> int:
        return self.requests[0].gen_len

    def token_ids(self) -> np.ndarray:
        """(batch, prompt_len) int64 array."""
        return np.array(
            [request.prompt_ids for request in self.requests], dtype=np.int64
        )


def paper_workload(
    batch_size: int,
    prompt_len: int = PAPER_PROMPT_LEN,
    gen_len: int = PAPER_GEN_LEN,
    vocab_size: Optional[int] = None,
    seed: int = 1234,
    tokenizer: Optional[WordPieceTokenizer] = None,
) -> RequestBatch:
    """Build a batch with the paper's workload shape.

    Documents come from the synthetic corpus; a tokenizer is trained
    on them unless one is supplied.  Token ids are clipped to
    ``vocab_size`` when targeting a model with a smaller vocabulary
    (the tiny functional-test configs).
    """
    if batch_size <= 0:
        raise WorkloadError("batch size must be positive")
    corpus = SyntheticCorpus(seed=seed)
    documents = corpus.documents(batch_size, sentences=40)
    if tokenizer is None:
        tokenizer = WordPieceTokenizer.train(documents, vocab_size=512)

    requests: List[GenerationRequest] = []
    for document in documents:
        ids = tokenizer.encode(document, max_tokens=prompt_len)
        if len(ids) < prompt_len:
            # Cycle the document until the prompt is full, like C4
            # truncation in the opposite direction.
            repeats = -(-prompt_len // max(1, len(ids)))
            ids = (ids * repeats)[:prompt_len]
        if vocab_size is not None:
            ids = [token_id % vocab_size for token_id in ids]
        requests.append(
            GenerationRequest(prompt_ids=tuple(ids), gen_len=gen_len)
        )
    return RequestBatch(requests=tuple(requests))
