"""Deterministic synthetic news-like corpus (stands in for
C4/realnewslike, whose content never affects timing)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import WorkloadError

_SUBJECTS = (
    "the council", "a spokesperson", "the research team", "local officials",
    "the company", "analysts", "the committee", "residents", "engineers",
    "the agency", "investors", "the university", "regulators", "the startup",
)
_VERBS = (
    "announced", "reported", "confirmed", "denied", "projected",
    "released", "reviewed", "approved", "criticized", "launched",
    "postponed", "measured", "evaluated", "published",
)
_OBJECTS = (
    "a new infrastructure plan", "quarterly earnings figures",
    "the updated safety guidelines", "a long awaited study",
    "record energy consumption", "the revised budget proposal",
    "an ambitious expansion", "preliminary trial results",
    "the community feedback", "a detailed audit",
    "unexpected traffic patterns", "the migration timeline",
)
_CLAUSES = (
    "after months of deliberation", "despite earlier concerns",
    "according to people familiar with the matter",
    "in a statement on tuesday", "citing internal documents",
    "amid growing public interest", "following the annual review",
    "as part of a broader initiative",
)


class SyntheticCorpus:
    """Generates reproducible news-like documents."""

    def __init__(self, seed: int = 1234) -> None:
        self.seed = int(seed)

    def document(self, index: int, sentences: int = 12) -> str:
        """The ``index``-th document; stable across calls and runs."""
        if index < 0 or sentences <= 0:
            raise WorkloadError("index must be >= 0 and sentences positive")
        rng = np.random.default_rng((self.seed, index))
        parts: List[str] = []
        for _ in range(sentences):
            subject = _SUBJECTS[rng.integers(len(_SUBJECTS))]
            verb = _VERBS[rng.integers(len(_VERBS))]
            obj = _OBJECTS[rng.integers(len(_OBJECTS))]
            sentence = f"{subject} {verb} {obj}"
            if rng.random() < 0.6:
                sentence += f" {_CLAUSES[rng.integers(len(_CLAUSES))]}"
            parts.append(sentence + ".")
        return " ".join(parts)

    def documents(self, count: int, sentences: int = 12) -> List[str]:
        if count <= 0:
            raise WorkloadError("count must be positive")
        return [self.document(i, sentences) for i in range(count)]
