"""A small, deterministic WordPiece-style tokenizer.

The paper tokenizes C4/realnewslike prompts with the OPT tokenizer.
Absolute timing never depends on token *identity*, only on counts, so
this self-contained tokenizer (greedy longest-match word pieces with
``##`` continuations, like BERT's) preserves the workload shape while
giving the functional backend a real text-to-ids code path.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from repro.errors import WorkloadError

UNK_TOKEN = "<unk>"
PAD_TOKEN = "<pad>"
BOS_TOKEN = "<s>"
EOS_TOKEN = "</s>"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, BOS_TOKEN, EOS_TOKEN)


class WordPieceTokenizer:
    """Greedy longest-match subword tokenizer."""

    def __init__(self, vocab: Dict[str, int]) -> None:
        if not vocab:
            raise WorkloadError("tokenizer vocabulary is empty")
        for token in SPECIAL_TOKENS:
            if token not in vocab:
                raise WorkloadError(f"vocabulary is missing {token!r}")
        ids = sorted(vocab.values())
        if ids != list(range(len(ids))):
            raise WorkloadError("vocabulary ids must be dense from 0")
        self.vocab = dict(vocab)
        self.inverse = {token_id: token for token, token_id in vocab.items()}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def train(
        cls, texts: Iterable[str], vocab_size: int = 512
    ) -> "WordPieceTokenizer":
        """Build a vocabulary from whole words, frequency-ranked, plus
        single-character fallback pieces."""
        if vocab_size < len(SPECIAL_TOKENS) + 8:
            raise WorkloadError(f"vocab size {vocab_size} is too small")
        word_counts: Counter = Counter()
        chars = set()
        for text in texts:
            for word in text.lower().split():
                word_counts[word] += 1
                chars.update(word)

        vocab: Dict[str, int] = {}
        for token in SPECIAL_TOKENS:
            vocab[token] = len(vocab)
        # Character pieces guarantee every word tokenizes without <unk>.
        for char in sorted(chars):
            for piece in (char, f"##{char}"):
                if len(vocab) < vocab_size and piece not in vocab:
                    vocab[piece] = len(vocab)
        for word, _ in word_counts.most_common():
            if len(vocab) >= vocab_size:
                break
            if word not in vocab:
                vocab[word] = len(vocab)
        return cls(vocab)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def _encode_word(self, word: str) -> List[int]:
        pieces: List[int] = []
        start = 0
        while start < len(word):
            prefix = "" if start == 0 else "##"
            end = len(word)
            match = None
            while end > start:
                candidate = prefix + word[start:end]
                if candidate in self.vocab:
                    match = candidate
                    break
                end -= 1
            if match is None:
                return [self.vocab[UNK_TOKEN]]
            pieces.append(self.vocab[match])
            start = end
        return pieces

    def encode(self, text: str, max_tokens: int = None) -> List[int]:
        """Tokenize ``text``; truncate to ``max_tokens`` if given."""
        ids: List[int] = []
        for word in text.lower().split():
            ids.extend(self._encode_word(word))
            if max_tokens is not None and len(ids) >= max_tokens:
                return ids[:max_tokens]
        return ids

    def decode(self, ids: Iterable[int]) -> str:
        """Best-effort detokenization (joins ``##`` continuations)."""
        words: List[str] = []
        for token_id in ids:
            try:
                token = self.inverse[int(token_id)]
            except KeyError:
                raise WorkloadError(f"unknown token id {token_id}") from None
            if token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)
