"""Workload generation: synthetic corpus, tokenizer, and requests.

The paper prompts the models with C4/realnewslike text truncated to
128 input tokens and generates 21 output tokens, repeating each
prompt 10 times (Section III-B).  Timing results depend only on the
shape of the workload, so a deterministic synthetic corpus with the
same shape preserves every result; the tokenizer and corpus are
nonetheless real code paths exercised by the functional backend.
"""

from repro.workloads.tokenizer import WordPieceTokenizer
from repro.workloads.corpus import SyntheticCorpus
from repro.workloads.requests import GenerationRequest, RequestBatch, paper_workload

__all__ = [
    "WordPieceTokenizer",
    "SyntheticCorpus",
    "GenerationRequest",
    "RequestBatch",
    "paper_workload",
]
