"""Per-request sequence-length distributions.

The paper's closed-loop batches fix every request to 128 prompt / 21
generated tokens (Section III-B).  An open arrival stream is not that
uniform: production traces (and the agentic workloads ITME studies)
mix short chat turns with long documents.  This module models token
counts as integer distributions the serving simulator samples per
request — fixed (the paper's shape), uniform, or lognormal (the usual
fit for production prompt lengths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError

#: Supported distribution families.
KINDS = ("fixed", "uniform", "lognormal")


@dataclass(frozen=True)
class LengthDistribution:
    """A distribution over integer token counts, clipped to [low, high]."""

    kind: str
    low: int
    high: int
    #: Median of the lognormal family (ignored otherwise).
    median: float = 0.0
    #: Shape parameter of the lognormal family.
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise WorkloadError(
                f"unknown length distribution {self.kind!r}; "
                f"expected one of {', '.join(KINDS)}"
            )
        if self.low < 1 or self.high < self.low:
            raise WorkloadError(
                f"invalid length bounds [{self.low}, {self.high}]"
            )
        if self.kind == "lognormal" and (self.median <= 0 or self.sigma <= 0):
            raise WorkloadError("lognormal needs positive median and sigma")

    # -- constructors ------------------------------------------------------

    @classmethod
    def fixed(cls, tokens: int) -> "LengthDistribution":
        """Every request gets exactly ``tokens`` tokens."""
        return cls(kind="fixed", low=tokens, high=tokens)

    @classmethod
    def uniform(cls, low: int, high: int) -> "LengthDistribution":
        return cls(kind="uniform", low=low, high=high)

    @classmethod
    def lognormal(
        cls,
        median: float,
        sigma: float = 0.6,
        low: int = 1,
        high: Optional[int] = None,
    ) -> "LengthDistribution":
        """Lognormal with the given median, clipped to [low, high]."""
        if high is None:
            high = max(int(median * 8), low)
        return cls(
            kind="lognormal", low=low, high=high, median=median, sigma=sigma
        )

    @classmethod
    def parse(cls, spec: str) -> "LengthDistribution":
        """Parse a CLI spec.

        Formats: ``128`` or ``fixed:128``; ``uniform:64:256``;
        ``lognormal:128:0.6`` (median, sigma).
        """
        parts = spec.split(":")
        try:
            if len(parts) == 1:
                return cls.fixed(int(parts[0]))
            if parts[0] == "fixed" and len(parts) == 2:
                return cls.fixed(int(parts[1]))
            if parts[0] == "uniform" and len(parts) == 3:
                return cls.uniform(int(parts[1]), int(parts[2]))
            if parts[0] == "lognormal" and len(parts) in (2, 3):
                sigma = float(parts[2]) if len(parts) == 3 else 0.6
                return cls.lognormal(float(parts[1]), sigma)
        except ValueError as error:
            raise WorkloadError(
                f"bad length distribution spec {spec!r}: {error}"
            ) from None
        raise WorkloadError(f"bad length distribution spec {spec!r}")

    # -- sampling ----------------------------------------------------------

    @property
    def mean_estimate(self) -> float:
        """Closed-form mean (pre-clipping for the lognormal family)."""
        if self.kind == "fixed":
            return float(self.low)
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.median * float(np.exp(self.sigma**2 / 2.0))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` integer lengths."""
        if size < 1:
            raise WorkloadError("sample size must be positive")
        if self.kind == "fixed":
            return np.full(size, self.low, dtype=np.int64)
        if self.kind == "uniform":
            return rng.integers(self.low, self.high + 1, size=size)
        values = rng.lognormal(
            mean=float(np.log(self.median)), sigma=self.sigma, size=size
        )
        return np.clip(np.rint(values), self.low, self.high).astype(np.int64)
