"""Pricing one replica's iterations across its shards.

A sharded replica runs every iteration on all shards at once: the
tensor-parallel shards of a pipeline stage execute in lockstep (the
stage takes its *slowest* shard, then pays the allreduce that stitches
the partial sums back together), and pipeline stages run in sequence
for a single iteration's latency (plus the activation handoff between
consecutive stages).  Both collective payloads are priced through the
same :class:`~repro.interconnect.path.TransferPathSolver` arithmetic
as every other byte in the library, so the allreduce penalty scales
with the host technology under test.

Each shard is priced by an ordinary
:class:`~repro.serve.costs.IterationCostModel` over a per-shard
:class:`~repro.core.engine.OffloadEngine` (built through
:class:`~repro.core.placement.PrecomputedPlacement`), which is what
keeps shard pricing float-identical to single-engine pricing: a
degree-1 "fleet" never constructs this class at all — it uses the base
engine's cost model object directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import OffloadEngine
from repro.core.placement.sharding import (
    PrecomputedPlacement,
    Shard,
    ShardedPlacement,
    allreduce_bytes,
    handoff_bytes,
)
from repro.errors import ConfigurationError
from repro.interconnect.path import TransferPathSolver
from repro.pricing import IterationParts


def shard_engines(
    base: OffloadEngine, sharded: ShardedPlacement
) -> List[OffloadEngine]:
    """One engine per shard, inheriting the base engine's platform.

    Shard engines reuse the base policy (compression choices included)
    and pricing backend; their placements replay the partitioned tier
    assignments via :class:`PrecomputedPlacement`, so no placement
    algorithm re-runs on shard-sized models.
    """
    engines: List[OffloadEngine] = []
    for shard in sharded.shards:
        engines.append(
            OffloadEngine(
                model=shard.config,
                host=base.host,
                placement=PrecomputedPlacement(shard.placement),
                policy=base.policy,
                batch_size=base.batch_size,
                prompt_len=base.prompt_len,
                gen_len=base.gen_len,
                gpu_spec=base.gpu_spec,
                pricing_backend=base.pricing_backend,
            )
        )
    return engines


class ShardedCostModel:
    """Combines per-shard iteration prices into replica iteration times.

    Drop-in for :class:`~repro.serve.costs.IterationCostModel` where
    the scheduler is concerned: ``max_concurrency``, ``prefill_parts``
    / ``decode_parts`` (and their ``_time`` reductions),
    ``reference_service_time``, ``prewarm``.  The combined
    :class:`~repro.pricing.IterationParts` keeps per-layer granularity
    — each stage contributes its critical (slowest) shard's per-layer
    transfer/compute pairs, then one pure-transfer entry for the
    stage's allreduce and one per pipeline handoff — so FlexGen
    overlap semantics and lump-sum fault scaling both keep working.
    """

    def __init__(
        self,
        base: OffloadEngine,
        sharded: ShardedPlacement,
        overlap: bool = True,
    ) -> None:
        if sharded.is_identity:
            raise ConfigurationError(
                "degree-1 partitions price through the base engine's "
                "cost model; ShardedCostModel is for degree >= 2"
            )
        self.base = base
        self.sharded = sharded
        self.overlap = overlap
        self.engines = shard_engines(base, sharded)
        self.models = [
            engine.cost_model(overlap=overlap) for engine in self.engines
        ]
        self._solver = TransferPathSolver(config=base.host)
        self._stage_models: List[List[Tuple[Shard, object]]] = []
        by_position = {
            id(shard): model
            for shard, model in zip(sharded.shards, self.models)
        }
        for pp_index in range(sharded.pipeline_parallel):
            stage = sharded.stage_shards(pp_index)
            self._stage_models.append(
                [(shard, by_position[id(shard)]) for shard in stage]
            )

    # -- identity/bookkeeping ------------------------------------------

    @property
    def backend_name(self) -> str:
        return self.models[0].backend_name

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Price-cache counters summed across all shard engines."""
        totals: Dict[str, float] = {}
        for model in self.models:
            for key, value in model.cache_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def max_concurrency(self, limit: int = 512) -> int:
        """The fleet batch cap is the *tightest* shard's cap."""
        return min(model.max_concurrency(limit) for model in self.models)

    def prewarm(
        self,
        batches: Sequence[int],
        prompt_lens: Sequence[int] = (),
        limit: int = 4096,
    ) -> int:
        return sum(
            model.prewarm(batches, prompt_lens=prompt_lens, limit=limit)
            for model in self.models
        )

    def faulted_parts(self, *args, **kwargs) -> Optional[object]:
        """Per-layer fault pricing is a single-engine feature; callers
        fall back to lump-sum scaling of the combined transfers."""
        return None

    # -- combination ----------------------------------------------------

    def _comm_times(self, batch: int, new_tokens: int) -> Tuple[float, float]:
        """(per-stage allreduce seconds, per-handoff seconds)."""
        tp = self.sharded.tensor_parallel
        allreduce_s = 0.0
        if tp > 1:
            stage_config = self.sharded.shards[0].config
            per_block = allreduce_bytes(stage_config, batch, new_tokens)
            blocks = stage_config.num_decoder_blocks
            allreduce_s = self._solver.host_to_host_time(per_block * blocks)
        handoff_s = 0.0
        if self.sharded.pipeline_parallel > 1:
            handoff_s = self._solver.host_to_host_time(
                handoff_bytes(self.base.config, batch, new_tokens)
            )
        return allreduce_s, handoff_s

    def _combine(
        self, per_model_parts: List[IterationParts], batch: int,
        new_tokens: int,
    ) -> IterationParts:
        by_model = dict(zip(self.models, per_model_parts))
        allreduce_s, handoff_s = self._comm_times(batch, new_tokens)
        transfers: List[float] = []
        computes: List[float] = []
        for stage_index, stage in enumerate(self._stage_models):
            stage_parts = [by_model[model] for _, model in stage]
            critical = max(stage_parts, key=lambda p: p.total_s())
            transfers.extend(critical.transfers)
            computes.extend(critical.computes)
            if allreduce_s > 0.0:
                # The allreduce cannot hide behind compute: it runs
                # after the stage's kernels produce the partial sums.
                transfers.append(allreduce_s)
                computes.append(0.0)
            if handoff_s > 0.0 and stage_index + 1 < len(self._stage_models):
                transfers.append(handoff_s)
                computes.append(0.0)
        return IterationParts(
            transfers=tuple(transfers),
            computes=tuple(computes),
            # Comm entries pair with zero compute, so under overlap
            # they still cost their full transfer time.
            overlap=self.overlap,
        )

    def prefill_parts(self, batch: int, prompt_len: int) -> IterationParts:
        return self._combine(
            [model.prefill_parts(batch, prompt_len) for model in self.models],
            batch,
            prompt_len,
        )

    def decode_parts(self, batch: int, context_len: int) -> IterationParts:
        return self._combine(
            [model.decode_parts(batch, context_len) for model in self.models],
            batch,
            1,
        )

    def prefill_time(self, batch: int, prompt_len: int) -> float:
        return self.prefill_parts(batch, prompt_len).total_s()

    def decode_time(self, batch: int, context_len: int) -> float:
        return self.decode_parts(batch, context_len).total_s()

    def reference_service_time(
        self, prompt_len: int, gen_len: int, batch: int
    ) -> float:
        prefill = self.prefill_time(1, prompt_len)
        decode = self.decode_time(max(1, batch), prompt_len + gen_len)
        return prefill + max(0, gen_len - 1) * decode
