"""One serving replica: the single-engine serve stack as a fleet unit.

:func:`build_replica` performs exactly the wiring
:func:`repro.serve.simulate_serving` does for its one engine — engine
construction, cost model, telemetry binding, fault injector,
replanner, KV manager, sanitizer, scheduler — but per replica, with
replica-stable RNG streams derived via
:func:`repro.faults.seed_stream`.  A fleet of one replica at shard
degree 1 therefore *is* the old stack object-for-object, which is
what the bit-identity guard tests pin.

The replica exposes the scheduler's incremental
:class:`~repro.serve.scheduler.SchedulerDrive` so the
:class:`~repro.fleet.simulator.FleetSimulator` can interleave many
replicas in one virtual timeline: advance to an arrival, route, push,
repeat.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.engine import OffloadEngine
from repro.core.placement.sharding import ShardedPlacement
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, make_injector
from repro.faults.models import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.faults.seeds import seed_stream
from repro.fleet.costs import ShardedCostModel
from repro.fleet.prefix import PrefixCache
from repro.serve.metrics import build_metrics
from repro.serve.request import QosClass, RequestSpec
from repro.serve.resilience import Replanner, ResiliencePolicy
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    SchedulerDrive,
    SchedulerRun,
)
from repro.serve.simulator import ServingResult
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class Replica:
    """A fully wired serving replica and its live drive handle."""

    index: int
    engine: OffloadEngine
    costs: object
    scheduler: ContinuousBatchingScheduler
    telemetry: Telemetry
    classes: Tuple[QosClass, ...] = ()
    sharded: Optional[ShardedPlacement] = None
    prefix_cache: Optional[PrefixCache] = None
    sanitizer: Optional[object] = None
    observer: Optional[object] = None
    prewarm: bool = True
    drive: Optional[SchedulerDrive] = None
    routed: int = 0
    #: Autoscale lifecycle: when this replica was provisioned (virtual
    #: seconds; 0 for the initial fleet), whether it is draining (no
    #: new work, finishes its queue, then retires), and when the
    #: drain was ordered.  Untouched in static fleets.
    activated_s: float = 0.0
    draining: bool = False
    drain_mark_s: Optional[float] = None
    _prewarmed: int = field(default=0, repr=False)

    @property
    def queue_depth(self) -> int:
        """Exact queued-plus-running occupancy at the drive's clock."""
        return 0 if self.drive is None else self.drive.queue_depth

    def start(self, specs: Sequence[RequestSpec]) -> None:
        """Prewarm the price cache and park the scheduler at time 0.

        ``specs`` is the *global* stream (routing is not known yet);
        prewarming over it is a superset of what this replica will
        serve and never changes a priced value.
        """
        self._prewarmed = 0
        if self.prewarm and hasattr(self.costs, "prewarm"):
            ladder = sorted(
                {
                    min(1 << power, self.scheduler.max_batch)
                    for power in range(
                        max(1, self.scheduler.max_batch).bit_length()
                    )
                }
                | {self.scheduler.max_batch}
            )
            self._prewarmed = self.costs.prewarm(
                ladder, prompt_lens=[spec.prompt_len for spec in specs]
            )
        self.drive = self.scheduler.drive()

    def push(self, spec: RequestSpec) -> None:
        self.routed += 1
        self.drive.push(spec)

    def advance(self, until: float) -> None:
        self.drive.advance(until)

    def finish(self) -> SchedulerRun:
        return self.drive.finish()

    def finalize(
        self,
        outcome: SchedulerRun,
        all_specs: Sequence[RequestSpec],
        setup: Optional[Dict[str, object]] = None,
    ) -> ServingResult:
        """Reduce this replica's run exactly as ``ServingSimulator.run``
        does, so a one-replica fleet's result is bit-identical."""
        service_ref = self.costs.reference_service_time(
            prompt_len=int(
                statistics.fmean(spec.prompt_len for spec in all_specs)
            )
            or 1,
            gen_len=max(
                1,
                int(statistics.fmean(spec.gen_len for spec in all_specs)),
            ),
            batch=self.scheduler.max_batch,
        )
        metrics = build_metrics(outcome, self.classes, service_ref)
        info: Dict[str, object] = {
            "max_batch": self.scheduler.max_batch,
            "service_ref_s": service_ref,
            "prefill_iterations": outcome.prefill_iterations,
            "decode_iterations": outcome.decode_iterations,
        }
        if self.scheduler.injector is not None:
            info["fault_stats"] = self.scheduler.injector.stats.as_dict()
        backend_name = getattr(self.costs, "backend_name", None)
        if backend_name is not None:
            info["pricing_backend"] = backend_name
        cache_stats = getattr(self.costs, "cache_stats", None)
        if cache_stats is not None:
            info["price_cache"] = cache_stats
        if self.scheduler.kv is not None:
            info["kv"] = self.scheduler.kv.snapshot()
        if self.sanitizer is not None:
            info["sanitize"] = self.sanitizer.report()
        if self.observer is not None:
            slo_report = self.observer.report()
            if slo_report is not None:
                info["slo"] = slo_report
        if self._prewarmed:
            info["prewarmed_prices"] = self._prewarmed
        backend_memo = getattr(
            getattr(self.costs, "backend", None), "cache_info", None
        )
        if backend_memo is not None:
            info["backend_memo"] = backend_memo
        if self.prefix_cache is not None:
            info["prefix_cache"] = self.prefix_cache.snapshot()
        if setup:
            info.update(setup)
        telemetry = self.telemetry
        if telemetry.enabled and backend_memo is not None:
            memo_scope = telemetry.scoped("pricing/backend")
            memo_scope.gauge("entries").set(backend_memo["entries"])
            memo_scope.gauge("evictions").set(backend_memo["evictions"])
        if telemetry.enabled:
            scope = telemetry.scoped("serve")
            scope.gauge("max_batch").set(self.scheduler.max_batch)
            scope.gauge("throughput_rps").set(metrics.throughput_rps)
            scope.gauge("goodput_rps").set(metrics.goodput_rps)
            scope.gauge("slo_attainment").set(metrics.slo_attainment)
            scope.gauge("utilization").set(metrics.utilization)
            scope.gauge("saturated").set(float(metrics.saturated))
        return ServingResult(
            setup=info,
            metrics=metrics,
            records=outcome.records,
            timeline=outcome.timeline,
            trace=outcome.trace,
            shed=outcome.shed,
        )


def build_replica(
    index: int,
    *,
    model: str = "opt-175b",
    host: str = "NVDRAM",
    placement: str = "helm",
    compress_weights: bool = True,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
    classes: Sequence[QosClass],
    max_batch: Optional[int] = None,
    overlap: bool = True,
    faults: Optional[Union[FaultSchedule, FaultInjector, str]] = None,
    fault_seed: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResiliencePolicy] = None,
    pricing_backend: str = "analytic",
    telemetry: Optional[Telemetry] = None,
    prewarm: bool = True,
    kv_policy: Optional[str] = None,
    sanitize: Optional[Union[bool, object]] = None,
    iteration_fault_pricing: bool = False,
    prefix_cache_size: int = 0,
    slo=None,
) -> Replica:
    """Wire one replica exactly as ``simulate_serving`` wires its stack.

    ``fault_seed`` is the fleet root: replica 0 draws from it
    unchanged, siblings from :func:`seed_stream` — so growing the
    fleet never perturbs an existing replica's fault draws.
    """
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    engine = OffloadEngine(
        model=model,
        host=host,
        placement=placement,
        compress_weights=compress_weights,
        batch_size=1,
        pricing_backend=pricing_backend,
    )
    sharded: Optional[ShardedPlacement] = None
    if tensor_parallel > 1 or pipeline_parallel > 1:
        sharded = ShardedPlacement.plan(
            engine.placement_result,
            tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        )
        costs: object = ShardedCostModel(engine, sharded, overlap=overlap)
    else:
        costs = engine.cost_model(overlap=overlap)
    if telemetry.enabled:
        if sharded is None:
            engine.price_cache.bind_telemetry(telemetry.registry)
        else:
            for shard_engine in costs.engines:
                shard_engine.price_cache.bind_telemetry(telemetry.registry)
        scope = telemetry.scoped("engine")
        scope.gauge("spilled_layers").set(len(engine.spill_log))
        scope.gauge("host_oversubscribed").set(
            float(engine.host_oversubscribed)
        )
    injector = make_injector(
        faults, seed=seed_stream(fault_seed, index, "faults")
    )
    replanner: Optional[Replanner] = None
    fault_targets: Optional[Tuple[str, ...]] = None
    if injector is not None:
        from repro.faults.models import HOST_TARGET, PCIE_TARGET
        from repro.serve.resilience import engine_replanner

        if telemetry.enabled:
            injector.bind_telemetry(telemetry.registry)
        fault_targets = (
            HOST_TARGET,
            PCIE_TARGET,
            engine.host.host_region.name,
            engine.host.label,
        )
        if sharded is None:
            # Re-planning swaps in a degraded *single-engine* cost
            # model; a sharded replica rides out degradation with
            # shedding and batch shrink instead.
            replanner = engine_replanner(engine, overlap=overlap)
    sanitizer = None
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
    if sanitize:
        if isinstance(sanitize, bool):
            from repro.chaos import SanitizerHarness

            sanitizer = SanitizerHarness()
        else:
            sanitizer = sanitize
    kv = None
    if kv_policy is not None:
        from repro.kv import KvCacheManager
        from repro.kv import kv_policy as resolve_kv_policy

        kv = KvCacheManager(
            engine, resolve_kv_policy(kv_policy), telemetry=telemetry
        )
    prefix_cache = (
        PrefixCache(prefix_cache_size) if prefix_cache_size else None
    )
    observer = None
    if slo is not None:
        from repro.obs import ServeObserver

        # Replicas share the (immutable) spec but each gets its own
        # observer instance — windowed state is per replica, rolled
        # up by the fleet through mergeable snapshots.
        observer = ServeObserver(spec=slo)
    scheduler_kwargs: Dict[str, object] = {}
    if fault_targets is not None:
        scheduler_kwargs["fault_targets"] = fault_targets
    scheduler = ContinuousBatchingScheduler(
        costs,
        tuple(classes),
        max_batch=max_batch,
        injector=injector,
        retry=retry,
        resilience=resilience,
        replanner=replanner,
        telemetry=telemetry,
        kv=kv,
        iteration_fault_pricing=iteration_fault_pricing,
        sanitizer=sanitizer,
        prefix_cache=prefix_cache,
        observer=observer,
        **scheduler_kwargs,
    )
    return Replica(
        index=index,
        engine=engine,
        costs=costs,
        scheduler=scheduler,
        telemetry=telemetry,
        classes=tuple(classes),
        sharded=sharded,
        prefix_cache=prefix_cache,
        sanitizer=sanitizer,
        observer=observer,
        prewarm=prewarm,
    )
