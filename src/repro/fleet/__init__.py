"""Fleet serving: replicated (and sharded) serve stacks behind a router.

The single-engine serve stack (:mod:`repro.serve`) becomes the unit of
replication here: :func:`build_replica` wires scheduler + KV + faults +
telemetry into a :class:`Replica`, :class:`FleetSimulator` interleaves
N replicas in one virtual timeline behind a :class:`FleetRouter`, and
:func:`simulate_fleet` is the one-call entry point mirroring
:func:`repro.serve.simulate_serving`.  Shard degrees > 1 price each
replica through :class:`ShardedCostModel` over the per-shard engines
of a :class:`~repro.core.placement.ShardedPlacement`.

A fleet of ``replicas=1`` at shard degree 1 is bit-identical to
``simulate_serving`` — summary, records, and telemetry snapshot.
"""

from repro.fleet.costs import ShardedCostModel, shard_engines
from repro.fleet.prefix import PrefixCache
from repro.fleet.replica import Replica, build_replica
from repro.fleet.router import (
    ROUTER_NAMES,
    FleetRouter,
    LeastLoadedRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    make_router,
)
from repro.fleet.simulator import (
    FleetResult,
    FleetSimulator,
    ReplicaResult,
    simulate_fleet,
)

__all__ = [
    "FleetResult",
    "FleetRouter",
    "FleetSimulator",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "PrefixCache",
    "ROUTER_NAMES",
    "Replica",
    "ReplicaResult",
    "RoundRobinRouter",
    "ShardedCostModel",
    "build_replica",
    "make_router",
    "shard_engines",
    "simulate_fleet",
]
