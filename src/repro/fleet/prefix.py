"""Per-replica prefix cache: shared prompt prefixes skip prefill work.

Multi-tenant serving traffic reuses long shared prefixes (system
prompts, few-shot templates).  A replica that recently prefilled a
group's prefix still holds its KV, so the next request of that group
only prefills the *suffix* — which is exactly the locality a
prefix-affinity router exploits and a round-robin router destroys.

The cache is deliberately simple and fully deterministic: an LRU over
``prefix_group`` keys, touched in virtual time at admission.  It
never evicts mid-batch, never reads a wall clock, and is inert for
requests without a group — a scheduler with ``prefix_cache=None``
prices every batch exactly as before this module existed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.serve.request import RequestSpec


class PrefixCache:
    """Deterministic LRU of resident prompt-prefix groups."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ConfigurationError("prefix cache capacity must be >= 1")
        self.capacity = int(capacity)
        #: group -> virtual time of last touch (LRU order = dict order).
        self._resident: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def effective_prompt_len(self, spec: RequestSpec, now: float) -> int:
        """Prompt tokens this replica must actually prefill for ``spec``.

        A resident group's requests skip their shared prefix (at least
        one token always remains — the suffix is never empty by
        :class:`RequestSpec` validation).  A miss installs the group,
        evicting the least-recently-used one beyond capacity.
        """
        if spec.prefix_group is None:
            return spec.prompt_len
        group = spec.prefix_group
        if group in self._resident:
            self._resident.move_to_end(group)
            self._resident[group] = float(now)
            self.hits += 1
            return max(1, spec.prompt_len - spec.prefix_len)
        self.misses += 1
        self._resident[group] = float(now)
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.evictions += 1
        return spec.prompt_len

    @property
    def resident_groups(self) -> int:
        return len(self._resident)

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "resident": list(self._resident),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
