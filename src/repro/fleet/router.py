"""Fleet routing policies: which replica serves the next arrival.

A :class:`FleetRouter` sees each request once, at its arrival instant,
after every replica has been advanced to that virtual time — so
``queue_depth`` readings are exact, not stale.  Routing is the *only*
thing the policies differ in; replicas are configured identically, so
an A/B of two routers over one trace isolates the routing effect.

* :class:`RoundRobinRouter` — arrival order modulo fleet size; the
  baseline that ignores both load and locality.
* :class:`LeastLoadedRouter` — fewest queued-plus-running requests,
  ties to the lowest index.
* :class:`PrefixAffinityRouter` — requests of one ``prefix_group``
  stick to the replica that first served the group (chosen
  least-loaded), so its :class:`~repro.fleet.prefix.PrefixCache` stays
  hot; ungrouped requests fall back to least-loaded.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigurationError
from repro.serve.request import RequestSpec

ROUTER_NAMES = ("round-robin", "least-loaded", "prefix-affinity")


class FleetRouter:
    """Base router: pick a replica index for one arriving request."""

    name = "base"

    def route(self, spec: RequestSpec, replicas: Sequence) -> int:
        raise NotImplementedError


class RoundRobinRouter(FleetRouter):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(self, spec: RequestSpec, replicas: Sequence) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


def _least_loaded(replicas: Sequence) -> int:
    depths = [replica.queue_depth for replica in replicas]
    return min(range(len(replicas)), key=lambda i: (depths[i], i))


class LeastLoadedRouter(FleetRouter):
    name = "least-loaded"

    def route(self, spec: RequestSpec, replicas: Sequence) -> int:
        return _least_loaded(replicas)


class PrefixAffinityRouter(FleetRouter):
    name = "prefix-affinity"

    def __init__(self) -> None:
        #: prefix group -> sticky replica index.
        self.affinity: Dict[str, int] = {}

    def route(self, spec: RequestSpec, replicas: Sequence) -> int:
        if spec.prefix_group is None:
            return _least_loaded(replicas)
        home = self.affinity.get(spec.prefix_group)
        if home is None or home >= len(replicas):
            # First touch: spread groups, not just instantaneous load —
            # ties on empty queues would otherwise pile every group
            # onto replica 0 and defeat the stickiness.
            sticky = [0] * len(replicas)
            for index in self.affinity.values():
                if index < len(replicas):
                    sticky[index] += 1
            home = min(
                range(len(replicas)),
                key=lambda i: (sticky[i], replicas[i].queue_depth, i),
            )
            self.affinity[spec.prefix_group] = home
        return home


def make_router(name: str) -> FleetRouter:
    """Build a router by name (one instance per fleet run — routers
    carry per-run state)."""
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-loaded":
        return LeastLoadedRouter()
    if name == "prefix-affinity":
        return PrefixAffinityRouter()
    raise ConfigurationError(
        f"unknown router {name!r}; expected one of {', '.join(ROUTER_NAMES)}"
    )
