"""Fleet serving: N replicas behind a router, one virtual timeline.

:class:`FleetSimulator` interleaves replica schedulers in virtual
time without ever running one "past" an arrival it might receive: for
each request, every replica is advanced exactly to the arrival
instant (:meth:`~repro.serve.scheduler.SchedulerDrive.advance`), the
router picks a target off exact queue depths, and the spec is pushed
into that replica's stream.  After the last arrival the streams are
closed and drained to completion.

:func:`simulate_fleet` is the fleet counterpart of
:func:`repro.serve.simulate_serving` — same model/host/placement and
workload knobs, plus ``replicas``, shard degrees, and ``router``.
A ``replicas=1, tensor_parallel=1, pipeline_parallel=1`` fleet runs
the identical object graph and is bit-identical to
``simulate_serving`` (summary, records, telemetry snapshot); the
guard tests in ``tests/fleet`` pin that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.fleet.replica import Replica, build_replica
from repro.fleet.router import FleetRouter, make_router
from repro.serve.arrivals import (
    DEFAULT_MIX,
    ArrivalProcess,
    TraceReplay,
    assign_prefix_groups,
    generate_requests,
)
from repro.serve.metrics import LatencyStats
from repro.serve.request import QosClass, RequestRecord, RequestSpec
from repro.serve.resilience import ResiliencePolicy
from repro.serve.simulator import ServingResult, make_arrival_process
from repro.telemetry import (
    MetricsRegistry,
    NULL_TELEMETRY,
    Telemetry,
    resolve_telemetry,
)
from repro.workloads.lengths import LengthDistribution


@dataclass(frozen=True)
class ReplicaResult:
    """One replica's complete single-engine result within a fleet."""

    index: int
    result: ServingResult
    #: Requests the router sent here (>= completed + shed).
    routed: int
    #: This replica's registry snapshot (its own labels, un-merged).
    telemetry_snapshot: Dict[str, object]


@dataclass(frozen=True)
class FleetResult:
    """A fleet run: per-replica results plus the rolled-up view."""

    setup: Dict[str, object]
    replicas: Tuple[ReplicaResult, ...]
    #: request_id -> replica index, for every routed request.
    assignments: Dict[int, int]
    #: Fleet-level reductions over all replicas' records.
    metrics: Dict[str, object]
    #: Every replica's registry folded into one, each instrument
    #: stamped with a ``replica`` label (``MetricsRegistry.merge``).
    registry: MetricsRegistry

    @property
    def records(self) -> Tuple[RequestRecord, ...]:
        merged: List[RequestRecord] = []
        for replica in self.replicas:
            merged.extend(replica.result.records)
        return tuple(
            sorted(merged, key=lambda r: (r.arrival_s, r.request_id))
        )

    def summary(self) -> Dict[str, object]:
        return {**self.setup, **self.metrics}


def _fleet_metrics(
    replicas: Sequence[ReplicaResult],
) -> Dict[str, object]:
    """Reduce all replicas' records into one operator view."""
    records: List[RequestRecord] = []
    shed = 0
    for replica in replicas:
        records.extend(replica.result.records)
        shed += len(replica.result.shed)
    span = max(
        (replica.result.metrics.duration_s for replica in replicas),
        default=0.0,
    )
    met = sum(1 for record in records if record.slo_met)
    offered = len(records) + shed
    ttft = LatencyStats.from_values([r.ttft_s for r in records])
    e2e = LatencyStats.from_values([r.e2e_s for r in records])
    return {
        "completed": len(records),
        "shed_requests": shed,
        "span_s": span,
        "throughput_rps": len(records) / span if span > 0 else 0.0,
        "goodput_rps": met / span if span > 0 else 0.0,
        "slo_attainment": met / offered if offered else 0.0,
        **ttft.summary("ttft"),
        **e2e.summary("e2e"),
        "per_replica_completed": [
            len(replica.result.records) for replica in replicas
        ],
        "per_replica_routed": [replica.routed for replica in replicas],
    }


class FleetSimulator:
    """Runs one request stream through a router onto many replicas.

    With an ``autoscaler`` (an
    :class:`~repro.autoscale.AutoscaleController`) and a
    ``replica_factory`` (``factory(index, decision) -> Replica``),
    the fleet becomes elastic: arrivals and completions stream into
    the controller, and applied decisions add replicas (activated at
    the current virtual instant, with fresh ``seed_stream`` sibling
    RNG — survivors are never perturbed) or drain them (the replica
    finishes its queued work, takes no new arrivals, and retires).
    Draining replicas are excluded from routing; nothing else about
    the interleaving changes, and with no autoscaler attached the
    loop is instruction-identical to the static fleet.
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        router: FleetRouter,
        autoscaler=None,
        replica_factory=None,
    ) -> None:
        if not replicas:
            raise ConfigurationError("a fleet needs at least one replica")
        if autoscaler is not None and replica_factory is None:
            raise ConfigurationError(
                "an autoscaled fleet needs a replica_factory to build "
                "scale-up replicas"
            )
        self.replicas = list(replicas)
        self.router = router
        self.autoscaler = autoscaler
        self.replica_factory = replica_factory
        self._initial = len(self.replicas)
        self._peak = self._initial
        #: Applied scaling actions: {"at_s", "action", "replica"}.
        self.scaling_log: List[Dict[str, object]] = []
        self._harvested: Dict[int, int] = {}

    # -- autoscale plumbing --------------------------------------------

    def _active(self) -> List[Replica]:
        return [r for r in self.replicas if not r.draining]

    def _harvest_completions(self) -> None:
        """Stream newly finished records into the controller.

        Records accumulate in each drive's live state; feeding them at
        control boundaries (rather than per iteration) keeps the hot
        path untouched while the controller's TTFT window still sees
        every completion, keyed by its virtual finish time.
        """
        for replica in self.replicas:
            records = replica.drive.state.records
            seen = self._harvested.get(replica.index, 0)
            for record in records[seen:]:
                self.autoscaler.on_finish(record)
            self._harvested[replica.index] = len(records)

    def _apply_decision(
        self, decision, now: float, ordered: Sequence[RequestSpec]
    ) -> None:
        active = self._active()
        desired = decision.desired_replicas
        while len(active) < desired:
            index = len(self.replicas)
            replica = self.replica_factory(index, decision)
            replica.start(ordered)
            replica.activated_s = now
            replica.advance(now)
            self.replicas.append(replica)
            active.append(replica)
            self.scaling_log.append(
                {"at_s": now, "action": "add", "replica": index}
            )
            self._peak = max(self._peak, len(active))
        # Drain newest-first so the original replicas (and their RNG
        # streams) stay stable across the whole run.
        while len(active) > desired:
            replica = max(active, key=lambda r: r.index)
            replica.draining = True
            replica.drain_mark_s = now
            replica.drive.close()
            active.remove(replica)
            self.scaling_log.append(
                {"at_s": now, "action": "drain", "replica": replica.index}
            )

    def _autoscale_metrics(self, outcomes) -> Dict[str, object]:
        fleet_end = max((o.span_s for o in outcomes), default=0.0)
        replica_seconds = 0.0
        for replica, outcome in zip(self.replicas, outcomes):
            if replica.drain_mark_s is not None:
                # A drained replica stays provisioned until the later
                # of the drain order and its last completed work.
                end = max(replica.drain_mark_s, outcome.span_s)
            else:
                end = fleet_end
            replica_seconds += max(0.0, end - replica.activated_s)
        tokens = sum(
            record.gen_len
            for outcome in outcomes
            for record in outcome.records
        )
        active = self._active()
        return {
            "decisions": [
                d.as_dict() for d in self.autoscaler.decisions
            ],
            "scaling_events": list(self.scaling_log),
            "initial_replicas": self._initial,
            "final_replicas": len(active),
            "peak_replicas": self._peak,
            "replica_seconds": replica_seconds,
            "gpu_seconds_per_token": (
                replica_seconds / tokens if tokens else float("inf")
            ),
        }

    # -- the run loop ---------------------------------------------------

    def run(
        self,
        specs: Sequence[RequestSpec],
        setup: Optional[Dict[str, object]] = None,
    ) -> FleetResult:
        ordered = sorted(specs, key=lambda s: (s.arrival_s, s.request_id))
        for replica in self.replicas:
            replica.start(ordered)
        assignments: Dict[int, int] = {}
        if self.autoscaler is None:
            for spec in ordered:
                for replica in self.replicas:
                    replica.advance(spec.arrival_s)
                target = self.router.route(spec, self.replicas)
                if not 0 <= target < len(self.replicas):
                    raise ConfigurationError(
                        f"router {self.router.name!r} returned replica "
                        f"{target} for a fleet of {len(self.replicas)}"
                    )
                assignments[spec.request_id] = target
                self.replicas[target].push(spec)
        else:
            for spec in ordered:
                now = spec.arrival_s
                for replica in self.replicas:
                    replica.advance(now)
                self.autoscaler.on_arrival(spec)
                self._harvest_completions()
                decision = self.autoscaler.maybe_decide(
                    now, len(self._active())
                )
                if decision is not None and decision.applied:
                    self._apply_decision(decision, now, ordered)
                pool = self._active()
                target = self.router.route(spec, pool)
                if not 0 <= target < len(pool):
                    raise ConfigurationError(
                        f"router {self.router.name!r} returned replica "
                        f"{target} for a fleet of {len(pool)}"
                    )
                chosen = pool[target]
                assignments[spec.request_id] = chosen.index
                chosen.push(spec)
        outcomes = [replica.finish() for replica in self.replicas]
        if self.autoscaler is not None:
            self._harvest_completions()
            self.autoscaler.finalize(
                max((o.span_s for o in outcomes), default=0.0)
            )
        results: List[ReplicaResult] = []
        for replica, outcome in zip(self.replicas, outcomes):
            serving = replica.finalize(outcome, ordered, setup=setup)
            results.append(
                ReplicaResult(
                    index=replica.index,
                    result=serving,
                    routed=replica.routed,
                    telemetry_snapshot=replica.telemetry.registry.snapshot(),
                )
            )
        registry = MetricsRegistry(enabled=True)
        for entry in results:
            registry.merge(
                entry.telemetry_snapshot,
                extra_labels={"replica": str(entry.index)},
            )
        fleet_setup: Dict[str, object] = {
            "replicas": (
                len(self.replicas)
                if self.autoscaler is None
                else self._initial
            ),
            "router": self.router.name,
        }
        if self.autoscaler is not None:
            fleet_setup["autoscale"] = True
        if setup:
            fleet_setup.update(setup)
        metrics = _fleet_metrics(results)
        if self.autoscaler is not None:
            metrics["autoscale"] = self._autoscale_metrics(outcomes)
        return FleetResult(
            setup=fleet_setup,
            replicas=tuple(results),
            assignments=assignments,
            metrics=metrics,
            registry=registry,
        )


def simulate_fleet(
    model: str = "opt-175b",
    host: str = "NVDRAM",
    placement: str = "helm",
    compress_weights: bool = True,
    arrival: Union[str, ArrivalProcess, TraceReplay] = "poisson",
    rate_rps: float = 0.01,
    burst_rate_rps: Optional[float] = None,
    num_requests: int = 200,
    prompt_lengths: Optional[LengthDistribution] = None,
    gen_lengths: Optional[LengthDistribution] = None,
    class_mix: Sequence[Tuple[QosClass, float]] = DEFAULT_MIX,
    seed: int = 0,
    max_batch: Optional[int] = None,
    overlap: bool = True,
    faults: Optional[Union[FaultSchedule, FaultInjector, str]] = None,
    fault_seed: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResiliencePolicy] = None,
    pricing_backend: str = "analytic",
    telemetry: Optional[Telemetry] = None,
    prewarm: bool = True,
    kv_policy: Optional[str] = None,
    sanitize: Optional[Union[bool, object]] = None,
    iteration_fault_pricing: bool = False,
    replicas: int = 1,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
    router: Union[str, FleetRouter] = "round-robin",
    prefix_groups: int = 0,
    prefix_len: int = 64,
    prefix_skew: float = 1.5,
    prefix_cache_size: int = 0,
    slo: Optional[Union[bool, str, object]] = None,
    autoscale: Optional[Union[bool, object]] = None,
    autoscale_target: Optional[object] = None,
) -> FleetResult:
    """Simulate ``replicas`` identically configured serve stacks.

    The workload knobs match :func:`repro.serve.simulate_serving`; the
    arrival stream is sampled *once* (same seed, same draws) and
    routed, so growing the fleet re-routes the same requests rather
    than sampling new ones.  ``tensor_parallel``/``pipeline_parallel``
    shard every replica's placement
    (:class:`~repro.core.placement.ShardedPlacement`); ``router``
    picks the policy (see :mod:`repro.fleet.router`).

    ``prefix_groups > 0`` tags the generated stream with skewed
    shared-prefix tenants
    (:func:`~repro.serve.arrivals.assign_prefix_groups`), and
    ``prefix_cache_size > 0`` attaches a per-replica
    :class:`~repro.fleet.prefix.PrefixCache` — enabled identically
    under every router, so routing is the only variable in an A/B.

    With ``replicas=1`` and shard degree 1 the wiring collapses to
    exactly ``simulate_serving``'s object graph: same engine, same
    scheduler arithmetic, bit-identical summary/records/telemetry.

    ``slo`` (``True`` / spec path / :class:`~repro.obs.SloSpec`)
    attaches streaming SLO monitoring per replica — every replica
    gets its own :class:`~repro.obs.ServeObserver` over the shared
    spec — and, with several replicas and enabled telemetry, folds
    the windowed state into one fleet-level rollup published as
    unlabeled ``obs/``/``slo/`` gauges next to the replica-labeled
    ones; the merged SLO report lands in ``result.metrics["slo"]``.

    ``autoscale`` (``True`` for defaults, or an
    :class:`~repro.autoscale.AutoscalePolicy`) attaches the
    planner-in-the-loop controller: ``replicas`` becomes the
    *initial* fleet size, the controller re-plans capacity each
    interval against ``autoscale_target`` (a
    :class:`~repro.core.qos.QosTarget`; defaults to the first QoS
    class's own latency bounds), and the applied decisions, scaling
    events, and GPU-seconds accounting land in
    ``result.metrics["autoscale"]``.  With ``autoscale`` unset the
    run is bit-identical to a plain fleet run.
    """
    if replicas < 1:
        raise ConfigurationError("a fleet needs at least one replica")
    autoscaling = autoscale is not None and autoscale is not False
    if isinstance(faults, FaultInjector) and (replicas > 1 or autoscaling):
        raise ConfigurationError(
            "a shared FaultInjector instance would couple replica RNG "
            "streams; pass a FaultSchedule (or schedule path) instead"
        )
    if not isinstance(sanitize, (bool, type(None))) and (
        replicas > 1 or autoscaling
    ):
        raise ConfigurationError(
            "a shared sanitizer harness cannot observe several "
            "replicas; pass sanitize=True for per-replica harnesses"
        )
    if autoscaling and (tensor_parallel > 1 or pipeline_parallel > 1):
        raise ConfigurationError(
            "autoscaling currently adds/drains unsharded replicas; "
            "combine it with shard degree 1"
        )
    resolved = resolve_telemetry(telemetry)
    slo_spec = None
    if slo is not None:
        from repro.obs import SloSpec

        if isinstance(slo, bool):
            if slo:
                slo_spec = SloSpec.for_classes(
                    tuple(qos for qos, _ in class_mix)
                )
        elif isinstance(slo, str):
            slo_spec = SloSpec.load(slo)
        else:
            slo_spec = slo
    if isinstance(arrival, str):
        process: Union[ArrivalProcess, TraceReplay] = make_arrival_process(
            arrival, rate_rps, burst_rate_rps
        )
    else:
        process = arrival
    specs = generate_requests(
        process,
        num_requests,
        prompt_lengths=prompt_lengths or LengthDistribution.fixed(128),
        gen_lengths=gen_lengths or LengthDistribution.fixed(21),
        class_mix=class_mix,
        seed=seed,
    )
    if prefix_groups:
        specs = assign_prefix_groups(
            specs,
            num_groups=prefix_groups,
            prefix_len=prefix_len,
            skew=prefix_skew,
            seed=seed,
        )
    if replicas == 1 and not autoscaling:
        telemetries: List[Telemetry] = [resolved]
    elif resolved.enabled:
        telemetries = [Telemetry.create() for _ in range(replicas)]
    else:
        telemetries = [NULL_TELEMETRY] * replicas

    def _build(index: int, telemetry_, placement_, max_batch_) -> Replica:
        return build_replica(
            index,
            model=model,
            host=host,
            placement=placement_,
            compress_weights=compress_weights,
            tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
            classes=tuple(qos for qos, _ in class_mix),
            max_batch=max_batch_,
            overlap=overlap,
            faults=faults,
            fault_seed=fault_seed,
            retry=retry,
            resilience=resilience,
            pricing_backend=pricing_backend,
            telemetry=telemetry_,
            prewarm=prewarm,
            kv_policy=kv_policy,
            sanitize=sanitize,
            iteration_fault_pricing=iteration_fault_pricing,
            prefix_cache_size=prefix_cache_size,
            slo=slo_spec,
        )

    controller = None
    replica_factory = None
    if autoscaling:
        import statistics

        from repro.autoscale import AutoscaleController, AutoscalePolicy

        policy = (
            autoscale
            if isinstance(autoscale, AutoscalePolicy)
            else AutoscalePolicy()
        )
        target = (
            autoscale_target
            if autoscale_target is not None
            else class_mix[0][0].target
        )
        controller = AutoscaleController(
            policy,
            target,
            model=model,
            host=host,
            placement=placement,
            compress_weights=compress_weights,
            overlap=overlap,
            prompt_len=max(
                1,
                int(statistics.fmean(s.prompt_len for s in specs)),
            ),
            gen_len=max(
                1, int(statistics.fmean(s.gen_len for s in specs))
            ),
            max_batch_limit=max_batch if max_batch is not None else 512,
        )
        controller.bind(resolved)

        def replica_factory(index: int, decision) -> Replica:
            scale_telemetry = (
                Telemetry.create() if resolved.enabled else NULL_TELEMETRY
            )
            placement_ = placement
            cap = max_batch
            if decision is not None:
                if decision.placement is not None:
                    placement_ = decision.placement
                if decision.batch_cap is not None:
                    cap = (
                        decision.batch_cap
                        if max_batch is None
                        else min(max_batch, decision.batch_cap)
                    )
            return _build(index, scale_telemetry, placement_, cap)

    fleet = FleetSimulator(
        replicas=[
            _build(index, telemetries[index], placement, max_batch)
            for index in range(replicas)
        ],
        router=router if isinstance(router, FleetRouter) else make_router(router),
        autoscaler=controller,
        replica_factory=replica_factory,
    )
    setup: Dict[str, object] = {
        "model": model,
        "host": host,
        "placement": placement,
        "compress_weights": compress_weights,
        "arrival": arrival if isinstance(arrival, str) else type(arrival).__name__,
        "rate_rps": rate_rps,
        "num_requests": len(specs),
        "seed": seed,
        "pricing_backend": fleet.replicas[0].costs.backend_name,
    }
    if fleet.replicas[0].scheduler.injector is not None:
        setup["faults"] = faults if isinstance(faults, str) else "schedule"
        setup["fault_seed"] = fleet.replicas[0].scheduler.injector.seed
    if fleet.replicas[0].scheduler.kv is not None:
        setup["kv_policy"] = fleet.replicas[0].scheduler.kv.policy.name
    if tensor_parallel > 1 or pipeline_parallel > 1:
        setup["tensor_parallel"] = tensor_parallel
        setup["pipeline_parallel"] = pipeline_parallel
    result = fleet.run(specs, setup=setup)
    if (replicas > 1 or autoscaling) and resolved.enabled:
        # Fold the per-replica registries into the caller's ambient/
        # explicit registry so --telemetry-out captures the fleet.
        for entry in result.replicas:
            resolved.registry.merge(
                entry.telemetry_snapshot,
                extra_labels={"replica": str(entry.index)},
            )
    if slo_spec is not None and len(fleet.replicas) > 1:
        # Fleet rollup: merge every replica's windowed observer state
        # into one observer over the shared spec, publish unlabeled
        # obs/slo gauges beside the replica-labeled ones, and surface
        # the merged attainment report.
        from repro.obs import ServeObserver

        rollup = ServeObserver(spec=slo_spec)
        if resolved.enabled:
            rollup.bind_run(resolved, None)
        last_now = 0.0
        for replica in fleet.replicas:
            if replica.observer is not None:
                snapshot = replica.observer.snapshot()
                rollup.merge(snapshot)
                last_now = max(
                    last_now, float(snapshot.get("last_now", 0.0))
                )
        rollup.finalize(last_now)
        fleet_report = rollup.report()
        if fleet_report is not None:
            result.metrics["slo"] = fleet_report
    elif slo_spec is not None and fleet.replicas[0].observer is not None:
        report = fleet.replicas[0].observer.report()
        if report is not None:
            result.metrics["slo"] = report
    return result
