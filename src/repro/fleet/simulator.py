"""Fleet serving: N replicas behind a router, one virtual timeline.

:class:`FleetSimulator` interleaves replica schedulers in virtual
time without ever running one "past" an arrival it might receive: for
each request, every replica is advanced exactly to the arrival
instant (:meth:`~repro.serve.scheduler.SchedulerDrive.advance`), the
router picks a target off exact queue depths, and the spec is pushed
into that replica's stream.  After the last arrival the streams are
closed and drained to completion.

:func:`simulate_fleet` is the fleet counterpart of
:func:`repro.serve.simulate_serving` — same model/host/placement and
workload knobs, plus ``replicas``, shard degrees, and ``router``.
A ``replicas=1, tensor_parallel=1, pipeline_parallel=1`` fleet runs
the identical object graph and is bit-identical to
``simulate_serving`` (summary, records, telemetry snapshot); the
guard tests in ``tests/fleet`` pin that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.fleet.replica import Replica, build_replica
from repro.fleet.router import FleetRouter, make_router
from repro.serve.arrivals import (
    DEFAULT_MIX,
    ArrivalProcess,
    TraceReplay,
    assign_prefix_groups,
    generate_requests,
)
from repro.serve.metrics import LatencyStats
from repro.serve.request import QosClass, RequestRecord, RequestSpec
from repro.serve.resilience import ResiliencePolicy
from repro.serve.simulator import ServingResult, make_arrival_process
from repro.telemetry import (
    MetricsRegistry,
    NULL_TELEMETRY,
    Telemetry,
    resolve_telemetry,
)
from repro.workloads.lengths import LengthDistribution


@dataclass(frozen=True)
class ReplicaResult:
    """One replica's complete single-engine result within a fleet."""

    index: int
    result: ServingResult
    #: Requests the router sent here (>= completed + shed).
    routed: int
    #: This replica's registry snapshot (its own labels, un-merged).
    telemetry_snapshot: Dict[str, object]


@dataclass(frozen=True)
class FleetResult:
    """A fleet run: per-replica results plus the rolled-up view."""

    setup: Dict[str, object]
    replicas: Tuple[ReplicaResult, ...]
    #: request_id -> replica index, for every routed request.
    assignments: Dict[int, int]
    #: Fleet-level reductions over all replicas' records.
    metrics: Dict[str, object]
    #: Every replica's registry folded into one, each instrument
    #: stamped with a ``replica`` label (``MetricsRegistry.merge``).
    registry: MetricsRegistry

    @property
    def records(self) -> Tuple[RequestRecord, ...]:
        merged: List[RequestRecord] = []
        for replica in self.replicas:
            merged.extend(replica.result.records)
        return tuple(
            sorted(merged, key=lambda r: (r.arrival_s, r.request_id))
        )

    def summary(self) -> Dict[str, object]:
        return {**self.setup, **self.metrics}


def _fleet_metrics(
    replicas: Sequence[ReplicaResult],
) -> Dict[str, object]:
    """Reduce all replicas' records into one operator view."""
    records: List[RequestRecord] = []
    shed = 0
    for replica in replicas:
        records.extend(replica.result.records)
        shed += len(replica.result.shed)
    span = max(
        (replica.result.metrics.duration_s for replica in replicas),
        default=0.0,
    )
    met = sum(1 for record in records if record.slo_met)
    offered = len(records) + shed
    ttft = LatencyStats.from_values([r.ttft_s for r in records])
    e2e = LatencyStats.from_values([r.e2e_s for r in records])
    return {
        "completed": len(records),
        "shed_requests": shed,
        "span_s": span,
        "throughput_rps": len(records) / span if span > 0 else 0.0,
        "goodput_rps": met / span if span > 0 else 0.0,
        "slo_attainment": met / offered if offered else 0.0,
        **ttft.summary("ttft"),
        **e2e.summary("e2e"),
        "per_replica_completed": [
            len(replica.result.records) for replica in replicas
        ],
        "per_replica_routed": [replica.routed for replica in replicas],
    }


class FleetSimulator:
    """Runs one request stream through a router onto many replicas."""

    def __init__(
        self, replicas: Sequence[Replica], router: FleetRouter
    ) -> None:
        if not replicas:
            raise ConfigurationError("a fleet needs at least one replica")
        self.replicas = list(replicas)
        self.router = router

    def run(
        self,
        specs: Sequence[RequestSpec],
        setup: Optional[Dict[str, object]] = None,
    ) -> FleetResult:
        ordered = sorted(specs, key=lambda s: (s.arrival_s, s.request_id))
        for replica in self.replicas:
            replica.start(ordered)
        assignments: Dict[int, int] = {}
        for spec in ordered:
            for replica in self.replicas:
                replica.advance(spec.arrival_s)
            target = self.router.route(spec, self.replicas)
            if not 0 <= target < len(self.replicas):
                raise ConfigurationError(
                    f"router {self.router.name!r} returned replica "
                    f"{target} for a fleet of {len(self.replicas)}"
                )
            assignments[spec.request_id] = target
            self.replicas[target].push(spec)
        outcomes = [replica.finish() for replica in self.replicas]
        results: List[ReplicaResult] = []
        for replica, outcome in zip(self.replicas, outcomes):
            serving = replica.finalize(outcome, ordered, setup=setup)
            results.append(
                ReplicaResult(
                    index=replica.index,
                    result=serving,
                    routed=replica.routed,
                    telemetry_snapshot=replica.telemetry.registry.snapshot(),
                )
            )
        registry = MetricsRegistry(enabled=True)
        for entry in results:
            registry.merge(
                entry.telemetry_snapshot,
                extra_labels={"replica": str(entry.index)},
            )
        fleet_setup: Dict[str, object] = {
            "replicas": len(self.replicas),
            "router": self.router.name,
        }
        if setup:
            fleet_setup.update(setup)
        return FleetResult(
            setup=fleet_setup,
            replicas=tuple(results),
            assignments=assignments,
            metrics=_fleet_metrics(results),
            registry=registry,
        )


def simulate_fleet(
    model: str = "opt-175b",
    host: str = "NVDRAM",
    placement: str = "helm",
    compress_weights: bool = True,
    arrival: Union[str, ArrivalProcess, TraceReplay] = "poisson",
    rate_rps: float = 0.01,
    burst_rate_rps: Optional[float] = None,
    num_requests: int = 200,
    prompt_lengths: Optional[LengthDistribution] = None,
    gen_lengths: Optional[LengthDistribution] = None,
    class_mix: Sequence[Tuple[QosClass, float]] = DEFAULT_MIX,
    seed: int = 0,
    max_batch: Optional[int] = None,
    overlap: bool = True,
    faults: Optional[Union[FaultSchedule, FaultInjector, str]] = None,
    fault_seed: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResiliencePolicy] = None,
    pricing_backend: str = "analytic",
    telemetry: Optional[Telemetry] = None,
    prewarm: bool = True,
    kv_policy: Optional[str] = None,
    sanitize: Optional[Union[bool, object]] = None,
    iteration_fault_pricing: bool = False,
    replicas: int = 1,
    tensor_parallel: int = 1,
    pipeline_parallel: int = 1,
    router: Union[str, FleetRouter] = "round-robin",
    prefix_groups: int = 0,
    prefix_len: int = 64,
    prefix_skew: float = 1.5,
    prefix_cache_size: int = 0,
    slo: Optional[Union[bool, str, object]] = None,
) -> FleetResult:
    """Simulate ``replicas`` identically configured serve stacks.

    The workload knobs match :func:`repro.serve.simulate_serving`; the
    arrival stream is sampled *once* (same seed, same draws) and
    routed, so growing the fleet re-routes the same requests rather
    than sampling new ones.  ``tensor_parallel``/``pipeline_parallel``
    shard every replica's placement
    (:class:`~repro.core.placement.ShardedPlacement`); ``router``
    picks the policy (see :mod:`repro.fleet.router`).

    ``prefix_groups > 0`` tags the generated stream with skewed
    shared-prefix tenants
    (:func:`~repro.serve.arrivals.assign_prefix_groups`), and
    ``prefix_cache_size > 0`` attaches a per-replica
    :class:`~repro.fleet.prefix.PrefixCache` — enabled identically
    under every router, so routing is the only variable in an A/B.

    With ``replicas=1`` and shard degree 1 the wiring collapses to
    exactly ``simulate_serving``'s object graph: same engine, same
    scheduler arithmetic, bit-identical summary/records/telemetry.

    ``slo`` (``True`` / spec path / :class:`~repro.obs.SloSpec`)
    attaches streaming SLO monitoring per replica — every replica
    gets its own :class:`~repro.obs.ServeObserver` over the shared
    spec — and, with several replicas and enabled telemetry, folds
    the windowed state into one fleet-level rollup published as
    unlabeled ``obs/``/``slo/`` gauges next to the replica-labeled
    ones; the merged SLO report lands in ``result.metrics["slo"]``.
    """
    if replicas < 1:
        raise ConfigurationError("a fleet needs at least one replica")
    if isinstance(faults, FaultInjector) and replicas > 1:
        raise ConfigurationError(
            "a shared FaultInjector instance would couple replica RNG "
            "streams; pass a FaultSchedule (or schedule path) instead"
        )
    if not isinstance(sanitize, (bool, type(None))) and replicas > 1:
        raise ConfigurationError(
            "a shared sanitizer harness cannot observe several "
            "replicas; pass sanitize=True for per-replica harnesses"
        )
    resolved = resolve_telemetry(telemetry)
    slo_spec = None
    if slo is not None:
        from repro.obs import SloSpec

        if isinstance(slo, bool):
            if slo:
                slo_spec = SloSpec.for_classes(
                    tuple(qos for qos, _ in class_mix)
                )
        elif isinstance(slo, str):
            slo_spec = SloSpec.load(slo)
        else:
            slo_spec = slo
    if isinstance(arrival, str):
        process: Union[ArrivalProcess, TraceReplay] = make_arrival_process(
            arrival, rate_rps, burst_rate_rps
        )
    else:
        process = arrival
    specs = generate_requests(
        process,
        num_requests,
        prompt_lengths=prompt_lengths or LengthDistribution.fixed(128),
        gen_lengths=gen_lengths or LengthDistribution.fixed(21),
        class_mix=class_mix,
        seed=seed,
    )
    if prefix_groups:
        specs = assign_prefix_groups(
            specs,
            num_groups=prefix_groups,
            prefix_len=prefix_len,
            skew=prefix_skew,
            seed=seed,
        )
    if replicas == 1:
        telemetries: List[Telemetry] = [resolved]
    elif resolved.enabled:
        telemetries = [Telemetry.create() for _ in range(replicas)]
    else:
        telemetries = [NULL_TELEMETRY] * replicas
    fleet = FleetSimulator(
        replicas=[
            build_replica(
                index,
                model=model,
                host=host,
                placement=placement,
                compress_weights=compress_weights,
                tensor_parallel=tensor_parallel,
                pipeline_parallel=pipeline_parallel,
                classes=tuple(qos for qos, _ in class_mix),
                max_batch=max_batch,
                overlap=overlap,
                faults=faults,
                fault_seed=fault_seed,
                retry=retry,
                resilience=resilience,
                pricing_backend=pricing_backend,
                telemetry=telemetries[index],
                prewarm=prewarm,
                kv_policy=kv_policy,
                sanitize=sanitize,
                iteration_fault_pricing=iteration_fault_pricing,
                prefix_cache_size=prefix_cache_size,
                slo=slo_spec,
            )
            for index in range(replicas)
        ],
        router=router if isinstance(router, FleetRouter) else make_router(router),
    )
    setup: Dict[str, object] = {
        "model": model,
        "host": host,
        "placement": placement,
        "compress_weights": compress_weights,
        "arrival": arrival if isinstance(arrival, str) else type(arrival).__name__,
        "rate_rps": rate_rps,
        "num_requests": len(specs),
        "seed": seed,
        "pricing_backend": fleet.replicas[0].costs.backend_name,
    }
    if fleet.replicas[0].scheduler.injector is not None:
        setup["faults"] = faults if isinstance(faults, str) else "schedule"
        setup["fault_seed"] = fleet.replicas[0].scheduler.injector.seed
    if fleet.replicas[0].scheduler.kv is not None:
        setup["kv_policy"] = fleet.replicas[0].scheduler.kv.policy.name
    if tensor_parallel > 1 or pipeline_parallel > 1:
        setup["tensor_parallel"] = tensor_parallel
        setup["pipeline_parallel"] = pipeline_parallel
    result = fleet.run(specs, setup=setup)
    if replicas > 1 and resolved.enabled:
        # Fold the per-replica registries into the caller's ambient/
        # explicit registry so --telemetry-out captures the fleet.
        for entry in result.replicas:
            resolved.registry.merge(
                entry.telemetry_snapshot,
                extra_labels={"replica": str(entry.index)},
            )
    if slo_spec is not None and replicas > 1:
        # Fleet rollup: merge every replica's windowed observer state
        # into one observer over the shared spec, publish unlabeled
        # obs/slo gauges beside the replica-labeled ones, and surface
        # the merged attainment report.
        from repro.obs import ServeObserver

        rollup = ServeObserver(spec=slo_spec)
        if resolved.enabled:
            rollup.bind_run(resolved, None)
        last_now = 0.0
        for replica in fleet.replicas:
            if replica.observer is not None:
                snapshot = replica.observer.snapshot()
                rollup.merge(snapshot)
                last_now = max(
                    last_now, float(snapshot.get("last_now", 0.0))
                )
        rollup.finalize(last_now)
        fleet_report = rollup.report()
        if fleet_report is not None:
            result.metrics["slo"] = fleet_report
    elif slo_spec is not None and fleet.replicas[0].observer is not None:
        report = fleet.replicas[0].observer.report()
        if report is not None:
            result.metrics["slo"] = report
    return result
