"""Reproduction of *Improving the Performance of Out-of-Core LLM
Inference Using Heterogeneous Host Memory* (Gupta & Dwarkadas,
IISWC 2025).

Quick start::

    from repro import OffloadEngine

    engine = OffloadEngine(
        model="opt-175b", host="NVDRAM", placement="helm",
        compress_weights=True, batch_size=1,
    )
    metrics = engine.run_timing()
    print(metrics.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.analysis.energy import estimate_energy
from repro.core.engine import OffloadEngine
from repro.core.metrics import GenerationMetrics, Stage
from repro.core.policy import Policy
from repro.core.qos import QosTarget, plan_for_qos
from repro.core.serving import serve
from repro.memory.hierarchy import HOST_CONFIG_LABELS, host_config
from repro.models.config import OPT_CONFIGS, opt_config
from repro.sim.chrome_trace import save_chrome_trace

__version__ = "1.0.0"

__all__ = [
    "OffloadEngine",
    "GenerationMetrics",
    "Stage",
    "Policy",
    "host_config",
    "HOST_CONFIG_LABELS",
    "opt_config",
    "OPT_CONFIGS",
    "serve",
    "QosTarget",
    "plan_for_qos",
    "estimate_energy",
    "save_chrome_trace",
    "__version__",
]
