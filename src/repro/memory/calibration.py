"""Calibration constants for the simulated platform.

Every number here is tied either to the paper's own measurements
(Section III/IV, Figures 3-6, Tables I/III) or to the published
characterization studies the paper cites (Izraelevitz et al. for
Optane, Sun et al. and Wang et al. for CXL).  Keeping them in one
module makes the provenance auditable and lets sensitivity sweeps
perturb the platform coherently.

Units: bytes, seconds, bytes/second.
"""

from __future__ import annotations

from repro.units import GB, GIB, MIB, NS, US

# --------------------------------------------------------------------------
# PCIe (Table I: PCIe Gen 4 x16, 32.0 GB/s theoretical)
# --------------------------------------------------------------------------

#: Theoretical PCIe Gen4 x16 bandwidth.
PCIE_GEN4_X16_THEORETICAL = 32.0 * GB
#: Achievable DMA efficiency over PCIe for large transfers.  The paper's
#: DRAM host-to-GPU measurements plateau around 25 GB/s (Fig. 3a: NVDRAM
#: is "20% lower" at 19.91 GB/s, putting DRAM near 24.9 GB/s).
PCIE_EFFICIENCY = 0.78
#: Per-transfer DMA setup cost (driver + descriptor ring).
PCIE_SETUP_LATENCY = 10 * US

# --------------------------------------------------------------------------
# Host DRAM (Table I: 8x DDR4-2933 DIMMs over 4 controllers per socket;
# the paper reports 157 GB/s across 8 channels)
# --------------------------------------------------------------------------

DDR4_2933_CHANNEL_BW = 2933e6 * 8          # 23.46 GB/s per channel
DRAM_CHANNELS_PER_SOCKET = 8
DRAM_SOCKET_EFFICIENCY = 0.84              # 157 GB/s / (8 * 23.46 GB/s)
DRAM_CAPACITY_PER_SOCKET = 128 * GIB       # 4 controllers x 2 x 16 GiB
DRAM_READ_LATENCY = 90 * NS
DRAM_WRITE_LATENCY = 90 * NS

# --------------------------------------------------------------------------
# Intel Optane DCPMM, 200 series (Table I: 4 x 128 GiB per socket)
#
# The paper measures, over PCIe to the GPU (Fig. 3):
#   * host->GPU from NVDRAM: 19.91 GB/s up to 4 GB buffers, decaying to
#     15.52 GB/s at 32 GB (AIT-buffer misses / wear-leveled placement);
#   * GPU->host into NVDRAM: peak 3.26 GB/s at 1 GB buffers (write
#     bandwidth, consistent with Izraelevitz et al.), with node 0
#     (GPU-local socket) lower than node 1.
# The DMA-visible sequential read rate below is chosen so that
# min(optane_read, PCIe) reproduces the 19.91 GB/s plateau.
# --------------------------------------------------------------------------

OPTANE_CAPACITY_PER_SOCKET = 512 * GIB     # 4 x 128 GiB
#: Sequential read bandwidth visible to a streaming DMA engine, small
#: working sets (AIT buffer hits).  Fig. 3a: the NVDRAM plateau is
#: 19.91 GB/s, a "near constant loss of 20%" against DRAM's ~24.9.
OPTANE_READ_PEAK = 19.91 * GB
#: Read bandwidth once the footprint defeats the AIT buffer (32 GB point
#: of Fig. 3a).
OPTANE_READ_AIT_MISS = 15.52 * GB
#: Working-set size at which AIT misses begin to bite.
OPTANE_AIT_KNEE = 4.0 * GB
#: Working-set size by which the read rate has fully decayed.
OPTANE_AIT_FLOOR = 32.0 * GB
#: Peak streaming write bandwidth (GPU-local socket / node 1 in Fig. 3b).
OPTANE_WRITE_PEAK = 3.26 * GB
#: Write bandwidth at small (256 MB) buffers, before the on-DIMM write
#: combining buffer is effective.
OPTANE_WRITE_SMALL = 2.6 * GB
#: Write bandwidth at very large buffers (media-bound steady state).
OPTANE_WRITE_LARGE = 3.0 * GB
#: Fig. 3b: writes to the socket whose PCIe root port carries the GPU
#: (node 0) run slower than node 1.
OPTANE_WRITE_NODE0_SCALE = 0.86
OPTANE_READ_REMOTE_SCALE = 0.97
OPTANE_READ_LATENCY = 170 * NS
OPTANE_WRITE_LATENCY = 90 * NS             # hidden by the WPQ until full

# --------------------------------------------------------------------------
# Optane Memory Mode (DRAM as a direct-mapped cache in front of Optane)
# --------------------------------------------------------------------------

#: Extra cost of a Memory-Mode cache miss relative to a raw Optane
#: access.  A miss is a synchronous, line-granular demand fill (no DMA
#: pipelining) that also writes the line back into DRAM; calibrated so
#: MemoryMode lands ~8-22% above NVDRAM for OPT-175B (whose 324 GiB
#: working set overflows the 256 GiB cache), per Figs. 4 and 5.
MEMORY_MODE_MISS_OVERHEAD = 1.7
#: Fig. 3b: MM on the remote socket (MM-0 in the paper's labelling)
#: cannot reach remote-DRAM write bandwidth.
MEMORY_MODE_REMOTE_WRITE_SCALE = 0.80

# --------------------------------------------------------------------------
# NVMe SSD and Optane FSDAX (filesystem-mediated access)
# --------------------------------------------------------------------------

SSD_CAPACITY = 2048 * GIB
SSD_READ_BW = 3.2 * GB
SSD_WRITE_BW = 1.8 * GB
SSD_READ_LATENCY = 80 * US
SSD_WRITE_LATENCY = 20 * US

#: Effective Optane read rate through the ext4-DAX file interface
#: (page granular, no page cache, no DMA batching); calibrated so the
#: FSDAX configuration improves TTFT over SSD by the paper's ~33%
#: (Section IV-B) under the (65, 15, 20) policy.
FSDAX_READ_BW = 5.4 * GB
FSDAX_WRITE_BW = 2.4 * GB
FSDAX_READ_LATENCY = 3 * US
FSDAX_WRITE_LATENCY = 3 * US
#: FSDAX transfers to the GPU bounce through DRAM; chunked pipelining
#: overlaps the two hops imperfectly.
BOUNCE_PIPELINE_EFFICIENCY = 0.92

# --------------------------------------------------------------------------
# CXL expanders (Table III)
# --------------------------------------------------------------------------

CXL_FPGA_BW = 5.12 * GB                    # Sun et al., CXL-C
CXL_ASIC_BW = 28.0 * GB                    # Wang et al., System A
CXL_ADDED_LATENCY = 70 * NS                # Sharma, CXL round-trip adder
CXL_CAPACITY = 512 * GIB

# --------------------------------------------------------------------------
# NUMA / UPI
# --------------------------------------------------------------------------

UPI_BANDWIDTH = 62.4 * GB                  # 3 x UPI links @ 20.8 GB/s
UPI_LATENCY = 70 * NS

# --------------------------------------------------------------------------
# GPU (Table I: A100-PCIe 40 GB)
# --------------------------------------------------------------------------

GPU_HBM_CAPACITY = 40 * GB
GPU_HBM_BANDWIDTH = 1555 * GB
#: Fraction of peak HBM bandwidth a well-formed GEMV/attention kernel
#: sustains.
GPU_HBM_EFFICIENCY = 0.78
#: A100 dense fp16 tensor-core peak.
GPU_FP16_TFLOPS = 312e12
#: Fraction of fp16 peak that FlexGen's PyTorch kernels achieve on
#: large GEMMs.  Calibrated against the paper's OPT-30B prefill batch
#: scaling (TTFT +32.4% from batch 1 to 32 under DRAM, Fig. 4a), which
#: pins the prefill GEMM rate near 210 TFLOP/s.
GPU_GEMM_EFFICIENCY = 0.67
#: Per-kernel launch overhead; an MHA or FFN "layer" in FlexGen issues a
#: handful of kernels.
GPU_KERNEL_LAUNCH_OVERHEAD = 25 * US
GPU_KERNELS_PER_LAYER = 6
#: Rate at which the GPU dequantizes group-wise int4 weights back to
#: fp16 (bytes of *compressed* input per second).  Chosen so compressed
#: compute inflates by the 2.5x-13x range the paper reports (Fig. 6)
#: and so Table IV's compute/load ratios come out (e.g. FFN compute /
#: MHA load = 1.85 for NVDRAM(c), implying ~20 ms FFN compute for a
#: 0.6 GB compressed FFN layer).
GPU_DEQUANT_THROUGHPUT = 33 * GB

# --------------------------------------------------------------------------
# Host CPU (host-side staging, and CPU-delegated attention)
# --------------------------------------------------------------------------

CPU_MEMCPY_BW = 12.0 * GB                  # single-stream temporal copy
#: Effective fp32 rate of the dual Xeon 6330 pair for batched GEMV
#: attention (AVX-512, memory-latency limited well below peak).
CPU_EFFECTIVE_FLOPS = 1.5e12
#: Streaming rate CPU attention kernels sustain out of host memory
#: (shared with everything else on the socket).
CPU_EFFECTIVE_MEM_BW = 100.0 * GB
#: Per-layer software overhead of dispatching attention to CPU worker
#: threads (FlexGen's cpu_cache_compute path).
CPU_ATTENTION_OVERHEAD = 200 * US

# --------------------------------------------------------------------------
# Energy model (Section I/VII: substituting DRAM with denser memory
# "improv[es] overall system energy efficiency").  Per-bit transfer
# energies from the literature the paper cites (CXL/DDR per-bit
# comparisons; Optane product brief), idle/active powers from public
# datasheets.  Used by the energy ablation, not by any timing result.
# --------------------------------------------------------------------------

ENERGY_DRAM_PJ_PER_BIT = 22.0              # DDR4 access + IO
ENERGY_OPTANE_READ_PJ_PER_BIT = 45.0
ENERGY_OPTANE_WRITE_PJ_PER_BIT = 120.0
ENERGY_PCIE_PJ_PER_BIT = 6.0
ENERGY_CXL_PJ_PER_BIT = 4.5                # lower per-bit IO than DDR
ENERGY_HBM_PJ_PER_BIT = 7.0
#: Static (idle) power of the populated memory system, per DIMM.
POWER_DRAM_IDLE_W = 3.0                    # 8 x 16 GiB RDIMMs/socket
#: Idle power of the high-capacity (64 GiB LRDIMM-class) parts an
#: all-DRAM host of Optane-like capacity would need.
POWER_DRAM_LRDIMM_IDLE_W = 8.0
POWER_OPTANE_IDLE_W = 6.0                  # 128 GiB DCPMM active idle
POWER_GPU_IDLE_W = 60.0
POWER_GPU_COMPUTE_W = 300.0
POWER_CPU_ACTIVE_W = 150.0

# Convenient derived values -------------------------------------------------

PCIE_EFFECTIVE_BW = PCIE_GEN4_X16_THEORETICAL * PCIE_EFFICIENCY
DRAM_SOCKET_BW = (
    DDR4_2933_CHANNEL_BW * DRAM_CHANNELS_PER_SOCKET * DRAM_SOCKET_EFFICIENCY
)

#: Buffer sizes (bytes) swept by the Fig. 3 microbenchmark.
FIG3_BUFFER_SIZES = tuple(
    int(256 * MIB * (2 ** i)) for i in range(8)
)  # 256 MiB .. 32 GiB
