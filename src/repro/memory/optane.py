"""Intel Optane DCPMM ("NVDRAM") model.

Models the three behaviours the paper leans on (Section II-C, IV-A):

* **Read/write asymmetry** — sequential reads reach ~20 GB/s while
  streaming writes top out at 3.26 GB/s (Fig. 3b), consistent with the
  Izraelevitz et al. characterization the paper cites.
* **AIT-buffer / wear-leveling decay** — single large transfers decay
  from 19.91 GB/s at 4 GB to 15.52 GB/s at 32 GB (Fig. 3a) because the
  Address Indirection Table buffer stops covering the footprint and
  wear-leveling scatters physically-consecutive data.
* **Footprint decay for chunked streaming** — repeatedly streaming a
  multi-hundred-GB model through layer-sized chunks also defeats the
  AIT, but more mildly than one huge DMA; the paper's OPT-30B (+33%
  per-layer time, ~50 GB resident) and OPT-175B (+~49% transfer time,
  ~300 GB resident) measurements pin the two ends of the decay.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.memory import calibration as cal
from repro.memory.technology import BandwidthCurve, MemoryTechnology
from repro.units import GB


def _footprint_decay(working_set_bytes: float) -> float:
    """Mild AIT decay for layer-granular streaming over a large footprint.

    1.0 up to 16 GB; log-interpolates down to 0.84 at 300 GB (the
    OPT-175B resident size) and floors at 0.82.  The 16 GB onset is
    calibrated against the paper's OPT-30B result (+33% TTFT on
    NVDRAM with a ~30 GB resident set).
    """
    start = 16 * GB
    end = 300 * GB
    low = 0.84
    floor = 0.82
    if working_set_bytes <= start:
        return 1.0
    if working_set_bytes >= end:
        return max(
            floor,
            low - 0.02 * (math.log(working_set_bytes / end) / math.log(2)),
        )
    frac = math.log(working_set_bytes / start) / math.log(end / start)
    return 1.0 + frac * (low - 1.0)


class OptaneTechnology(MemoryTechnology):
    """Optane DCPMM exposed as a flat memory-only NUMA node (Memkind)."""

    def __init__(
        self,
        capacity_bytes: int = cal.OPTANE_CAPACITY_PER_SOCKET,
        name: str = "Optane DCPMM (200 series)",
    ) -> None:
        read_curve = BandwidthCurve.from_points(
            [
                (256e6, cal.OPTANE_READ_PEAK),
                (4 * GB, cal.OPTANE_READ_PEAK),
                (8 * GB, 18.4 * GB),
                (16 * GB, 17.0 * GB),
                (32 * GB, cal.OPTANE_READ_AIT_MISS),
            ]
        )
        write_curve = BandwidthCurve.from_points(
            [
                (256e6, cal.OPTANE_WRITE_SMALL),
                (1 * GB, cal.OPTANE_WRITE_PEAK),
                (4 * GB, 3.1 * GB),
                (32 * GB, cal.OPTANE_WRITE_LARGE),
            ]
        )
        super().__init__(
            name=name,
            capacity_bytes=int(capacity_bytes),
            read_curve=read_curve,
            write_curve=write_curve,
            read_latency_s=cal.OPTANE_READ_LATENCY,
            write_latency_s=cal.OPTANE_WRITE_LATENCY,
        )

    def read_bandwidth(
        self, nbytes: float, working_set_bytes: Optional[int] = None
    ) -> float:
        base = self.read_curve.at(nbytes)
        working_set = (
            self.working_set_bytes
            if working_set_bytes is None
            else working_set_bytes
        )
        if working_set > nbytes:
            base *= _footprint_decay(working_set)
        return base
