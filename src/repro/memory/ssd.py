"""NVMe SSD model (the paper's slowest offload tier, Table II)."""

from __future__ import annotations

from repro.memory import calibration as cal
from repro.memory.technology import BandwidthCurve, MemoryTechnology
from repro.units import GB


class SsdTechnology(MemoryTechnology):
    """A datacenter NVMe SSD used as the storage tier.

    Reads ramp up with request size (queue-depth effects) and saturate
    around :data:`~repro.memory.calibration.SSD_READ_BW`; sustained
    writes are slower still.  SSD transfers to the GPU always stage
    through a DRAM bounce buffer (there is no peer DMA path on this
    platform), which the transfer-path solver accounts for.
    """

    def __init__(
        self,
        capacity_bytes: int = cal.SSD_CAPACITY,
        name: str = "NVMe SSD",
    ) -> None:
        read_curve = BandwidthCurve.from_points(
            [
                (1e6, 1.2 * GB),
                (64e6, 2.6 * GB),
                (256e6, cal.SSD_READ_BW),
            ]
        )
        write_curve = BandwidthCurve.from_points(
            [
                (1e6, 0.8 * GB),
                (256e6, cal.SSD_WRITE_BW),
            ]
        )
        super().__init__(
            name=name,
            capacity_bytes=int(capacity_bytes),
            read_curve=read_curve,
            write_curve=write_curve,
            read_latency_s=cal.SSD_READ_LATENCY,
            write_latency_s=cal.SSD_WRITE_LATENCY,
        )
