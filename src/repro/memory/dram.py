"""DDR4 DRAM model (the paper's all-DRAM baseline, Table I)."""

from __future__ import annotations

from repro.memory import calibration as cal
from repro.memory.technology import BandwidthCurve, MemoryTechnology


class DramTechnology(MemoryTechnology):
    """Socket-local DDR4 DRAM.

    DRAM bandwidth is effectively flat across the buffer sizes this
    system moves (hundreds of MiB and up), and far above the PCIe link
    to the GPU, so host/GPU transfers from DRAM are PCIe-bound.
    """

    def __init__(
        self,
        capacity_bytes: int = cal.DRAM_CAPACITY_PER_SOCKET,
        bandwidth: float = cal.DRAM_SOCKET_BW,
        name: str = "DDR4-2933 DRAM",
    ) -> None:
        super().__init__(
            name=name,
            capacity_bytes=int(capacity_bytes),
            read_curve=BandwidthCurve.flat(bandwidth),
            write_curve=BandwidthCurve.flat(bandwidth),
            read_latency_s=cal.DRAM_READ_LATENCY,
            write_latency_s=cal.DRAM_WRITE_LATENCY,
        )
