"""Heterogeneous host-memory technology models.

This package models every memory configuration the paper evaluates
(Table II) plus the CXL expanders it projects onto (Table III):

* :mod:`~repro.memory.dram` — DDR4 DRAM (the all-DRAM baseline).
* :mod:`~repro.memory.optane` — Intel Optane DCPMM exposed as flat
  NUMA memory ("NVDRAM"), including read/write asymmetry, AIT-miss
  degradation at large footprints, and write-concurrency effects.
* :mod:`~repro.memory.memory_mode` — Optane Memory Mode (DRAM acting
  as a direct-mapped cache in front of Optane).
* :mod:`~repro.memory.ssd` — NVMe SSD block storage.
* :mod:`~repro.memory.fsdax` — Optane as an ext4-DAX filesystem,
  which forces a DRAM bounce buffer on the way to the GPU.
* :mod:`~repro.memory.cxl` — CXL Type-3 memory expanders (FPGA- and
  ASIC-controller variants from Table III).
* :mod:`~repro.memory.numa` — socket topology and inter-socket links.
* :mod:`~repro.memory.hierarchy` — assembled, named host-memory
  configurations matching the paper's labels (DRAM, NVDRAM,
  MemoryMode, SSD, FSDAX, plus CXL projections).
"""

from repro.memory.technology import (
    BandwidthCurve,
    Direction,
    MemoryTechnology,
)
from repro.memory.dram import DramTechnology
from repro.memory.optane import OptaneTechnology
from repro.memory.memory_mode import MemoryModeTechnology
from repro.memory.ssd import SsdTechnology
from repro.memory.fsdax import FsdaxTechnology
from repro.memory.cxl import CxlMemoryTechnology, CXL_FPGA, CXL_ASIC
from repro.memory.numa import NumaNode, NumaTopology
from repro.memory.hierarchy import (
    HostMemoryConfig,
    HostRegion,
    host_config,
    HOST_CONFIG_LABELS,
)

__all__ = [
    "BandwidthCurve",
    "Direction",
    "MemoryTechnology",
    "DramTechnology",
    "OptaneTechnology",
    "MemoryModeTechnology",
    "SsdTechnology",
    "FsdaxTechnology",
    "CxlMemoryTechnology",
    "CXL_FPGA",
    "CXL_ASIC",
    "NumaNode",
    "NumaTopology",
    "HostMemoryConfig",
    "HostRegion",
    "host_config",
    "HOST_CONFIG_LABELS",
]
