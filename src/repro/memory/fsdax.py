"""Optane exposed as an ext4-DAX filesystem ("FSDAX", Table II).

App Direct mode with a DAX filesystem bypasses the page cache and
reads the Optane media at close to its raw rate, but the data still
enters the process through the file interface: copies to the GPU must
bounce through a DRAM staging buffer (Section IV-B attributes FSDAX's
gap to NVDRAM exactly to this bounce buffer).  The technology object
models the file-interface bandwidth; the transfer-path solver adds
the bounce hop.
"""

from __future__ import annotations

from repro.memory import calibration as cal
from repro.memory.technology import BandwidthCurve, MemoryTechnology
from repro.units import GB


class FsdaxTechnology(MemoryTechnology):
    """Optane DCPMM behind an ext4-DAX file interface."""

    def __init__(
        self,
        capacity_bytes: int = cal.OPTANE_CAPACITY_PER_SOCKET,
        name: str = "Optane ext4-DAX",
    ) -> None:
        read_curve = BandwidthCurve.from_points(
            [
                (1e6, 6.0 * GB),
                (256e6, cal.FSDAX_READ_BW),
            ]
        )
        write_curve = BandwidthCurve.flat(cal.FSDAX_WRITE_BW)
        super().__init__(
            name=name,
            capacity_bytes=int(capacity_bytes),
            read_curve=read_curve,
            write_curve=write_curve,
            read_latency_s=cal.FSDAX_READ_LATENCY,
            write_latency_s=cal.FSDAX_WRITE_LATENCY,
        )
