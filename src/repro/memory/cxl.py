"""CXL Type-3 memory expanders (Section II-D, Table III).

The paper projects its placement policies onto two published CXL
implementations:

* **CXL-FPGA** — Sun et al.'s "CXL-C": an FPGA CXL controller backed
  by one DDR4-3200 channel, 5.12 GB/s.
* **CXL-ASIC** — Wang et al.'s "System A": a commercial ASIC
  controller backed by one DDR5-4800 channel, 28 GB/s.

Both add at least ~70 ns to round-trip latency over the host's DDR
path (Sharma).  Bandwidth is symmetric at the granularity the paper
projects with (one number per device), so we use the same curve in
both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.memory.technology import BandwidthCurve, MemoryTechnology


@dataclass(frozen=True)
class CxlDeviceSpec:
    """A row of Table III."""

    name: str
    memory_technology: str
    bandwidth: float  # bytes/s

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.memory_technology}, "
            f"{self.bandwidth / 1e9:.2f} GB/s)"
        )


#: Table III, row 1 (Sun et al. [17], "CXL-C").
CXL_FPGA = CxlDeviceSpec("CXL-FPGA", "DDR4-3200 x1", cal.CXL_FPGA_BW)
#: Table III, row 2 (Wang et al. [54], "System A").
CXL_ASIC = CxlDeviceSpec("CXL-ASIC", "DDR5-4800 x1", cal.CXL_ASIC_BW)

CXL_DEVICES = (CXL_FPGA, CXL_ASIC)


class CxlMemoryTechnology(MemoryTechnology):
    """Host memory reached through a CXL Type-3 expander."""

    def __init__(
        self,
        spec: CxlDeviceSpec,
        capacity_bytes: int = cal.CXL_CAPACITY,
    ) -> None:
        curve = BandwidthCurve.flat(spec.bandwidth)
        super().__init__(
            name=spec.name,
            capacity_bytes=int(capacity_bytes),
            read_curve=curve,
            write_curve=curve,
            read_latency_s=cal.DRAM_READ_LATENCY + cal.CXL_ADDED_LATENCY,
            write_latency_s=cal.DRAM_WRITE_LATENCY + cal.CXL_ADDED_LATENCY,
        )
        self.spec = spec


#: Pages striped across expanders don't aggregate perfectly: the
#: interleaving granularity and per-device queue imbalance cost a few
#: percent per added device.
CXL_INTERLEAVE_EFFICIENCY = 0.95


class CxlInterleavedTechnology(MemoryTechnology):
    """Several identical CXL expanders with page-interleaved traffic.

    Section II-D notes CXL allows technology-agnostic *expansion*;
    interleaving across devices also aggregates bandwidth — the path
    a deployment would take to close the gap to DDR.  Capacity adds
    linearly; bandwidth adds with a per-device efficiency factor.
    """

    def __init__(
        self,
        spec: CxlDeviceSpec,
        devices: int,
        capacity_bytes_per_device: int = cal.CXL_CAPACITY,
    ) -> None:
        if devices < 1:
            raise ConfigurationError("need at least one CXL device")
        scale = devices * (CXL_INTERLEAVE_EFFICIENCY ** (devices - 1))
        curve = BandwidthCurve.flat(spec.bandwidth * scale)
        super().__init__(
            name=f"{spec.name} x{devices}",
            capacity_bytes=int(capacity_bytes_per_device) * devices,
            read_curve=curve,
            write_curve=curve,
            read_latency_s=cal.DRAM_READ_LATENCY + cal.CXL_ADDED_LATENCY,
            write_latency_s=cal.DRAM_WRITE_LATENCY + cal.CXL_ADDED_LATENCY,
        )
        self.spec = spec
        self.devices = devices
