"""Base abstractions for memory technologies.

A :class:`MemoryTechnology` answers one question for the rest of the
system: *at what rate can a buffer of N bytes be streamed out of (read)
or into (write) this memory?*  The answer can depend on the buffer
size (e.g. Optane's Address Indirection Table stops being effective
past a few GiB) and on the resident working-set size (e.g. Memory Mode
behaves like DRAM only while the working set fits the DRAM cache).

Bandwidths are expressed in bytes/second; buffer sizes in bytes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError


class Direction(enum.Enum):
    """Direction of a memory access, from the memory's point of view."""

    #: Data is streamed *out of* this memory (e.g. host-to-GPU copy).
    READ = "read"
    #: Data is streamed *into* this memory (e.g. GPU-to-host copy).
    WRITE = "write"


@dataclass(frozen=True)
class BandwidthCurve:
    """Piecewise bandwidth as a function of buffer size.

    The curve is defined by ``(buffer_bytes, bytes_per_second)``
    breakpoints.  Between breakpoints the bandwidth is interpolated
    linearly in ``log(buffer size)``, which matches how measured
    bandwidth curves (e.g. the paper's Figure 3) are customarily
    plotted and interpolated.  Outside the breakpoint range the curve
    is clamped to its end values.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("a bandwidth curve needs at least one point")
        sizes = [size for size, _ in self.points]
        if sorted(sizes) != sizes or len(set(sizes)) != len(sizes):
            raise ConfigurationError(
                "bandwidth curve breakpoints must be strictly increasing"
            )
        for size, rate in self.points:
            if size <= 0 or rate <= 0:
                raise ConfigurationError(
                    "bandwidth curve breakpoints must be positive"
                )

    @classmethod
    def flat(cls, bytes_per_second: float) -> "BandwidthCurve":
        """A size-independent bandwidth."""
        return cls(((1.0, float(bytes_per_second)),))

    @classmethod
    def from_points(
        cls, points: Sequence[Tuple[float, float]]
    ) -> "BandwidthCurve":
        return cls(tuple((float(s), float(r)) for s, r in points))

    def at(self, nbytes: float) -> float:
        """Bandwidth (bytes/s) for a buffer of ``nbytes`` bytes."""
        if nbytes <= 0:
            raise ValueError("buffer size must be positive")
        points = self.points
        if nbytes <= points[0][0]:
            return points[0][1]
        if nbytes >= points[-1][0]:
            return points[-1][1]
        for (s0, r0), (s1, r1) in zip(points, points[1:]):
            if s0 <= nbytes <= s1:
                frac = (math.log(nbytes) - math.log(s0)) / (
                    math.log(s1) - math.log(s0)
                )
                return r0 + frac * (r1 - r0)
        raise AssertionError("unreachable: breakpoints are sorted")

    def scaled(self, factor: float) -> "BandwidthCurve":
        """A copy of this curve with every rate multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return BandwidthCurve(
            tuple((size, rate * factor) for size, rate in self.points)
        )


@dataclass
class MemoryTechnology:
    """A memory technology with capacity and direction-dependent bandwidth.

    Subclasses provide technology-specific constructors and may override
    :meth:`read_bandwidth` / :meth:`write_bandwidth` to model effects
    beyond a static curve (e.g. caching in Memory Mode).

    Attributes:
        name: Human-readable technology name.
        capacity_bytes: Usable capacity.
        read_curve: Bandwidth curve for streaming reads.
        write_curve: Bandwidth curve for streaming writes.
        read_latency_s: Idle load-to-use latency.
        write_latency_s: Idle store-commit latency.
    """

    name: str
    capacity_bytes: int
    read_curve: BandwidthCurve
    write_curve: BandwidthCurve
    read_latency_s: float = 0.0
    write_latency_s: float = 0.0
    #: Size of the resident working set that transfers stream over.  Only
    #: technologies with internal caching (Memory Mode) or translation
    #: structures (Optane's AIT) consult it; the engine sets it to the
    #: total number of bytes it placed in this memory.
    working_set_bytes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"{self.name}: capacity must be positive"
            )
        if self.read_latency_s < 0 or self.write_latency_s < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    def set_working_set(self, nbytes: int) -> None:
        """Record the workload's resident footprint in this memory."""
        if nbytes < 0:
            raise ConfigurationError("working set must be >= 0")
        if nbytes > self.capacity_bytes:
            raise ConfigurationError(
                f"{self.name}: working set {nbytes} exceeds capacity "
                f"{self.capacity_bytes}"
            )
        self.working_set_bytes = int(nbytes)

    def read_bandwidth(
        self, nbytes: float, working_set_bytes: Optional[int] = None
    ) -> float:
        """Streaming read bandwidth (bytes/s) for an ``nbytes`` buffer.

        ``working_set_bytes`` overrides the stored
        :attr:`working_set_bytes` for this one query, so concurrent
        cost models can price different resident footprints against
        the *same* technology object without mutating it.  ``None``
        falls back to the stored value (the microbenchmark path).
        Technologies with no footprint sensitivity ignore it.
        """
        return self.read_curve.at(nbytes)

    def write_bandwidth(
        self, nbytes: float, working_set_bytes: Optional[int] = None
    ) -> float:
        """Streaming write bandwidth (bytes/s) for an ``nbytes`` buffer."""
        return self.write_curve.at(nbytes)

    def bandwidth(
        self,
        nbytes: float,
        direction: Direction,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        if direction is Direction.READ:
            return self.read_bandwidth(
                nbytes, working_set_bytes=working_set_bytes
            )
        return self.write_bandwidth(
            nbytes, working_set_bytes=working_set_bytes
        )

    def latency(self, direction: Direction) -> float:
        if direction is Direction.READ:
            return self.read_latency_s
        return self.write_latency_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
