"""Optane Memory Mode: DRAM as a direct-mapped cache in front of Optane.

In Memory Mode the platform exposes only the Optane capacity; all of
DRAM becomes a hardware-managed, direct-mapped, line-granular cache
(Section II-C).  The performance consequence the paper measures:

* While the resident working set fits in the DRAM cache, bandwidth is
  indistinguishable from DRAM (Fig. 3: the MM lines overlap DRAM).
* Once the working set outgrows the cache (OPT-175B's 324 GiB weights
  vs. a 256 GiB cache), a streaming pass hits in DRAM only for the
  cached fraction and pays Optane plus a fill penalty for the rest —
  MemoryMode lands between DRAM and NVDRAM (Fig. 4/5).

We model a streaming pass over a working set ``W`` with cache size
``C`` as a bandwidth mix with hit fraction ``min(1, C/W)`` (what a
direct-mapped cache retains of a circularly-streamed working set) and
a miss path at Optane bandwidth degraded by the cache-fill overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.memory.dram import DramTechnology
from repro.memory.optane import OptaneTechnology
from repro.memory.technology import MemoryTechnology


class MemoryModeTechnology(MemoryTechnology):
    """Optane in Memory Mode with a DRAM direct-mapped cache."""

    def __init__(
        self,
        dram: DramTechnology = None,
        optane: OptaneTechnology = None,
        name: str = "Optane Memory Mode",
    ) -> None:
        self.dram = dram if dram is not None else DramTechnology()
        self.optane = optane if optane is not None else OptaneTechnology()
        if self.dram.capacity_bytes >= self.optane.capacity_bytes:
            raise ConfigurationError(
                "Memory Mode requires the DRAM cache to be smaller than "
                "the Optane capacity it fronts"
            )
        super().__init__(
            name=name,
            # Only the Optane capacity is visible in Memory Mode.
            capacity_bytes=self.optane.capacity_bytes,
            read_curve=self.dram.read_curve,
            write_curve=self.dram.write_curve,
            read_latency_s=self.dram.read_latency_s,
            write_latency_s=self.dram.write_latency_s,
        )

    @property
    def cache_bytes(self) -> int:
        return self.dram.capacity_bytes

    def set_working_set(self, nbytes: int) -> None:
        super().set_working_set(nbytes)
        # Misses stream from the Optane media, whose own AIT decay
        # depends on the uncached footprint.
        uncached = max(0, nbytes - self.cache_bytes)
        self.optane.set_working_set(min(uncached, self.optane.capacity_bytes))

    def _working_set(self, working_set_bytes: Optional[int]) -> int:
        """The footprint one query prices against (override or stored)."""
        if working_set_bytes is None:
            return self.working_set_bytes
        return working_set_bytes

    def uncached_working_set(
        self, working_set_bytes: Optional[int] = None
    ) -> int:
        """Bytes of the working set that overflow the DRAM cache —
        the footprint the Optane miss path streams over."""
        uncached = max(0, self._working_set(working_set_bytes) - self.cache_bytes)
        return min(uncached, self.optane.capacity_bytes)

    def hit_fraction(
        self, nbytes: float, working_set_bytes: Optional[int] = None
    ) -> float:
        """Fraction of a streaming access that hits the DRAM cache."""
        footprint = max(
            float(nbytes), float(self._working_set(working_set_bytes))
        )
        if footprint <= self.cache_bytes:
            return 1.0
        return self.cache_bytes / footprint

    def _mixed_bandwidth(
        self,
        nbytes: float,
        hit_bw: float,
        miss_bw: float,
        link_cap: float = None,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        """Harmonic hit/miss blend.

        ``link_cap`` matters when the consumer sits behind a slower
        link (PCIe): cache *hits* stream at the link rate, so blending
        against raw DRAM bandwidth would let the link ``min()``
        swallow the miss penalty entirely.  The transfer-path solver
        passes its link rate here instead of applying ``min()`` after.
        """
        if link_cap is not None:
            hit_bw = min(hit_bw, link_cap)
            miss_bw = min(miss_bw, link_cap)
        hit = self.hit_fraction(nbytes, working_set_bytes=working_set_bytes)
        miss = 1.0 - hit
        if miss <= 0.0:
            return hit_bw
        # A miss is a synchronous demand fill from the Optane media
        # that also writes the line back into the DRAM cache.
        miss_bw = miss_bw / (1.0 + cal.MEMORY_MODE_MISS_OVERHEAD)
        return 1.0 / (hit / hit_bw + miss / miss_bw)

    def _optane_working_set(
        self, working_set_bytes: Optional[int]
    ) -> Optional[int]:
        """The Optane-side footprint override for the miss path.

        ``None`` (no override) keeps the Optane technology's own
        stored working set — which :meth:`set_working_set` maintains —
        so the mutating path stays bit-identical.
        """
        if working_set_bytes is None:
            return None
        return self.uncached_working_set(working_set_bytes)

    def read_bandwidth(
        self,
        nbytes: float,
        link_cap: float = None,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        return self._mixed_bandwidth(
            nbytes,
            self.dram.read_bandwidth(nbytes),
            self.optane.read_bandwidth(
                nbytes,
                working_set_bytes=self._optane_working_set(working_set_bytes),
            ),
            link_cap,
            working_set_bytes=working_set_bytes,
        )

    def write_bandwidth(
        self,
        nbytes: float,
        link_cap: float = None,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        return self._mixed_bandwidth(
            nbytes,
            self.dram.write_bandwidth(nbytes),
            self.optane.write_bandwidth(nbytes),
            link_cap,
            working_set_bytes=working_set_bytes,
        )
