"""NUMA topology of the dual-socket evaluation platform (Table I).

The paper's Figure 3 distinguishes the two sockets ("NUMA node 0" and
"NUMA node 1"): the GPU hangs off PCIe root ports attached to node 0,
and Optane write bandwidth differs visibly between the nodes.  The
topology object records which node owns the GPU and the cost of
crossing the inter-socket (UPI) link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.memory import calibration as cal


@dataclass(frozen=True)
class NumaNode:
    """One socket of the dual-socket host."""

    node_id: int

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError("NUMA node ids must be >= 0")

    def __str__(self) -> str:
        return f"node{self.node_id}"


@dataclass(frozen=True)
class NumaTopology:
    """Sockets plus the inter-socket interconnect.

    Attributes:
        nodes: The sockets, in id order.
        gpu_node: Id of the socket whose PCIe root ports host the GPU.
        upi_bandwidth: Aggregate inter-socket link bandwidth (bytes/s).
        upi_latency_s: One-way inter-socket hop latency.
    """

    nodes: Tuple[NumaNode, ...] = field(
        default=(NumaNode(0), NumaNode(1))
    )
    gpu_node: int = 0
    upi_bandwidth: float = cal.UPI_BANDWIDTH
    upi_latency_s: float = cal.UPI_LATENCY

    def __post_init__(self) -> None:
        ids = [node.node_id for node in self.nodes]
        if ids != sorted(set(ids)):
            raise ConfigurationError("NUMA node ids must be unique and sorted")
        if self.gpu_node not in ids:
            raise ConfigurationError(
                f"gpu_node {self.gpu_node} is not one of the nodes {ids}"
            )
        if self.upi_bandwidth <= 0:
            raise ConfigurationError("UPI bandwidth must be positive")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def hops_to_gpu(self, node_id: int) -> int:
        """Inter-socket hops between a memory node and the GPU's root port."""
        if node_id not in [node.node_id for node in self.nodes]:
            raise ConfigurationError(f"unknown NUMA node {node_id}")
        return 0 if node_id == self.gpu_node else 1


#: The paper's platform: two sockets, GPU on node 0.
DEFAULT_TOPOLOGY = NumaTopology()
