"""Assembled host-memory configurations (the labels of Table II).

A :class:`HostMemoryConfig` bundles, for one experimental
configuration:

* per-NUMA-node *regions* (technology + node + empirical scale
  factors) used by the Fig. 3 microbenchmark, and
* the *host* region where CPU-tier weights/KV live plus an optional
  *disk* region, used by the offloading engine.

The per-node write-scale factors encode the paper's Fig. 3b
measurements verbatim: Optane writes are slower on the GPU-side
socket (node 0), and Memory Mode on node 0 cannot reach DRAM write
bandwidth while MM on node 1 can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.memory.cxl import CXL_ASIC, CXL_FPGA, CxlDeviceSpec, CxlMemoryTechnology
from repro.memory.dram import DramTechnology
from repro.memory.fsdax import FsdaxTechnology
from repro.memory.memory_mode import MemoryModeTechnology
from repro.memory.numa import DEFAULT_TOPOLOGY, NumaTopology
from repro.memory.optane import OptaneTechnology
from repro.memory.ssd import SsdTechnology
from repro.memory.technology import Direction, MemoryTechnology
from repro.units import GIB


@dataclass
class HostRegion:
    """A memory technology instance pinned to one NUMA node.

    Scale factors fold in node-specific effects measured in Fig. 3
    that the raw technology curves do not capture (PCIe root-port
    contention, remote write penalties).
    """

    name: str
    technology: MemoryTechnology
    node: int
    read_scale: float = 1.0
    write_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.read_scale <= 0 or self.write_scale <= 0:
            raise ConfigurationError(
                f"region {self.name}: scale factors must be positive"
            )

    def bandwidth(
        self,
        nbytes: float,
        direction: Direction,
        working_set_bytes: Optional[int] = None,
    ) -> float:
        base = self.technology.bandwidth(
            nbytes, direction, working_set_bytes=working_set_bytes
        )
        scale = (
            self.read_scale if direction is Direction.READ else self.write_scale
        )
        return base * scale

    def latency(self, direction: Direction) -> float:
        return self.technology.latency(direction)

    @property
    def capacity_bytes(self) -> int:
        return self.technology.capacity_bytes


@dataclass
class HostMemoryConfig:
    """One named host-memory configuration (a row label of Table II)."""

    label: str
    description: str
    regions: Dict[str, HostRegion]
    host_region_name: str
    disk_region_name: Optional[str] = None
    #: Whether disk-tier transfers to/from the GPU must stage through a
    #: DRAM bounce buffer (true for both NVMe SSD and FSDAX).
    disk_bounce: bool = False
    topology: NumaTopology = field(default_factory=lambda: DEFAULT_TOPOLOGY)

    def __post_init__(self) -> None:
        if self.host_region_name not in self.regions:
            raise ConfigurationError(
                f"{self.label}: host region {self.host_region_name!r} "
                "is not among the configured regions"
            )
        if (
            self.disk_region_name is not None
            and self.disk_region_name not in self.regions
        ):
            raise ConfigurationError(
                f"{self.label}: disk region {self.disk_region_name!r} "
                "is not among the configured regions"
            )

    @property
    def host_region(self) -> HostRegion:
        return self.regions[self.host_region_name]

    @property
    def disk_region(self) -> Optional[HostRegion]:
        if self.disk_region_name is None:
            return None
        return self.regions[self.disk_region_name]

    @property
    def has_disk(self) -> bool:
        return self.disk_region_name is not None

    def region(self, name: str) -> HostRegion:
        try:
            return self.regions[name]
        except KeyError:
            raise ConfigurationError(
                f"{self.label}: no region named {name!r}; "
                f"have {sorted(self.regions)}"
            ) from None

    def set_host_working_set(self, nbytes: int) -> None:
        """Tell the host technology how much data streams over it."""
        self.host_region.technology.set_working_set(
            min(nbytes, self.host_region.capacity_bytes)
        )

    def microbench_regions(self) -> Tuple[HostRegion, ...]:
        """Per-node regions in a stable order, for the Fig. 3 sweep.

        Excludes the engine-facing aggregate "host"/"disk" regions.
        """
        aggregate = {self.host_region_name, self.disk_region_name}
        return tuple(
            self.regions[name]
            for name in sorted(self.regions)
            if name not in aggregate
        )


def _dram_regions() -> Dict[str, HostRegion]:
    return {
        f"dram{node}": HostRegion(
            name=f"DRAM-{node}",
            technology=DramTechnology(),
            node=node,
        )
        for node in (0, 1)
    }


def _nvdram_regions() -> Dict[str, HostRegion]:
    regions = {}
    for node in (0, 1):
        write_scale = cal.OPTANE_WRITE_NODE0_SCALE if node == 0 else 1.0
        read_scale = 1.0 if node == 0 else cal.OPTANE_READ_REMOTE_SCALE
        regions[f"nvdram{node}"] = HostRegion(
            name=f"NVDRAM-{node}",
            technology=OptaneTechnology(),
            node=node,
            read_scale=read_scale,
            write_scale=write_scale,
        )
    return regions


def _memory_mode_regions() -> Dict[str, HostRegion]:
    regions = {}
    for node in (0, 1):
        write_scale = (
            cal.MEMORY_MODE_REMOTE_WRITE_SCALE if node == 0 else 1.0
        )
        regions[f"mm{node}"] = HostRegion(
            name=f"MM-{node}",
            technology=MemoryModeTechnology(),
            node=node,
            write_scale=write_scale,
        )
    return regions


def _system_dram(capacity_bytes: int = 256 * GIB) -> HostRegion:
    """Both sockets' DRAM treated as one pool for the engine's host tier."""
    return HostRegion(
        name="DRAM",
        technology=DramTechnology(capacity_bytes=capacity_bytes),
        node=0,
    )


def _system_optane(capacity_bytes: int = 1024 * GIB) -> HostRegion:
    return HostRegion(
        name="NVDRAM",
        technology=OptaneTechnology(capacity_bytes=capacity_bytes),
        node=0,
    )


def _system_memory_mode() -> HostRegion:
    tech = MemoryModeTechnology(
        dram=DramTechnology(capacity_bytes=256 * GIB),
        optane=OptaneTechnology(capacity_bytes=1024 * GIB),
    )
    return HostRegion(name="MemoryMode", technology=tech, node=0)


def host_config(label: str) -> HostMemoryConfig:
    """Build a named host configuration.

    Supported labels (Table II plus the Table III projections):
    ``DRAM``, ``NVDRAM``, ``MemoryMode``, ``SSD``, ``FSDAX``,
    ``CXL-FPGA``, ``CXL-ASIC``.
    """
    if label == "DRAM":
        regions = _dram_regions()
        regions["host"] = _system_dram()
        return HostMemoryConfig(
            label=label,
            description="All host memory is DDR4 DRAM",
            regions=regions,
            host_region_name="host",
        )
    if label == "NVDRAM":
        regions = _nvdram_regions()
        regions["host"] = _system_optane()
        return HostMemoryConfig(
            label=label,
            description=(
                "Optane exposed as flat memory-only NUMA nodes (Memkind); "
                "application data lives on Optane"
            ),
            regions=regions,
            host_region_name="host",
        )
    if label == "MemoryMode":
        regions = _memory_mode_regions()
        regions["host"] = _system_memory_mode()
        return HostMemoryConfig(
            label=label,
            description="Optane main memory with DRAM as direct-mapped cache",
            regions=regions,
            host_region_name="host",
        )
    if label == "SSD":
        regions = _dram_regions()
        regions["host"] = _system_dram()
        regions["disk"] = HostRegion(
            name="SSD", technology=SsdTechnology(), node=0
        )
        return HostMemoryConfig(
            label=label,
            description="NVMe SSD storage tier below DRAM host memory",
            regions=regions,
            host_region_name="host",
            disk_region_name="disk",
            disk_bounce=True,
        )
    if label == "FSDAX":
        regions = _dram_regions()
        regions["host"] = _system_dram()
        regions["disk"] = HostRegion(
            name="FSDAX",
            technology=FsdaxTechnology(capacity_bytes=1024 * GIB),
            node=0,
        )
        return HostMemoryConfig(
            label=label,
            description=(
                "Optane as ext4-DAX storage tier below DRAM host memory "
                "(bounce buffer on the GPU path)"
            ),
            regions=regions,
            host_region_name="host",
            disk_region_name="disk",
            disk_bounce=True,
        )
    if label in ("CXL-FPGA", "CXL-ASIC"):
        spec: CxlDeviceSpec = CXL_FPGA if label == "CXL-FPGA" else CXL_ASIC
        regions = {
            "host": HostRegion(
                name=spec.name,
                technology=CxlMemoryTechnology(spec),
                node=0,
            )
        }
        return HostMemoryConfig(
            label=label,
            description=f"Host memory behind a CXL Type-3 expander: {spec}",
            regions=regions,
            host_region_name="host",
        )
    raise ConfigurationError(
        f"unknown host memory configuration {label!r}; "
        f"choose one of {sorted(HOST_CONFIG_LABELS)}"
    )


#: All labels :func:`host_config` accepts.
HOST_CONFIG_LABELS = (
    "DRAM",
    "NVDRAM",
    "MemoryMode",
    "SSD",
    "FSDAX",
    "CXL-FPGA",
    "CXL-ASIC",
)
