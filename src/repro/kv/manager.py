"""The KV-cache manager: policy-driven tier placement for serving.

One :class:`KvCacheManager` tracks every live request's KV footprint
as per-(request, block-range) extents over the engine configuration's
:class:`~repro.kv.tiers.KvTierTopology`, and answers the serving
scheduler's three questions at iteration boundaries:

* ``try_admit`` — can this request's (pre-allocated, FlexGen-style)
  KV window fit, and what does placing it cost?  Dynamic policies
  demote the coldest requests' fast-tier KV to give the newcomer HBM
  locality, pricing the migration into the prefill surcharge.
* ``on_decode`` — what does this iteration's tier-resident KV traffic
  cost?  Reads of slow-tier KV shares are priced per tier through the
  :class:`~repro.kv.pricing.KvPricer`; afterwards, recently-decoding
  requests' slow extents are passively promoted back to HBM while
  room lasts.
* ``on_degraded`` — the resilience hook: demote KV off a degraded
  host tier to storage (when the configuration has one), with the
  migration time charged to the next iteration.

The manager is keyed by the engine's
:class:`~repro.pricing.RunSpec` — the same identity every pricing
surface uses — and all its arithmetic goes through the spec's
:class:`~repro.core.layercosts.LayerCostModel` solver.  Everything is
deterministic: no RNG, ties broken by request id, and the fault
injector is only consulted through its RNG-free ``health`` query.

The default :class:`~repro.kv.policy.StaticKvPolicy` never migrates,
never rejects, and adds a surcharge of exactly ``0.0`` — serving
metrics with it attached are bit-identical to runs without any
manager (pinned by ``tests/kv/test_static_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, TransferError
from repro.faults.models import DISK_TARGET, HOST_TARGET
from repro.kv.policy import KvPolicy, kv_policy
from repro.kv.pricing import KvPricer
from repro.kv.tiermap import (
    KvExtent,
    KvTierMap,
    LayerRange,
    MigrationRecord,
)
from repro.kv.tiers import KvTierTopology, TierBudget
from repro.models.kv_cache import kv_bytes_per_token_per_block
from repro.telemetry import resolve_telemetry


@dataclass(frozen=True)
class RescueOutcome:
    """What one emergency tier rescue moved, cost, and lost."""

    tier: str
    moved_extents: int = 0
    moved_bytes: int = 0
    #: Distinct requests whose KV survived the loss via rescue.
    moved_requests: int = 0
    #: Priced migration time, charged to the next iteration.
    rescue_s: float = 0.0
    #: Requests whose KV could not be rescued (no surviving capacity
    #: or retries exhausted); every extent they held is released.
    failed: Tuple[int, ...] = ()


class KvCacheManager:
    """Tier placement and migration for one serving session."""

    def __init__(
        self,
        engine,
        policy: KvPolicy = None,
        telemetry=None,
        topology: Optional[KvTierTopology] = None,
    ) -> None:
        from repro.pricing import AnalyticBackend

        self.engine = engine
        self.policy = kv_policy(policy if policy is not None else "static")
        #: The run's identity: the same spec every pricing surface
        #: keys on (fault-free — live faults are priced separately).
        self.spec = engine.run_spec(include_faults=False)
        self.topology = (
            topology
            if topology is not None
            else KvTierTopology.from_engine(engine)
        )
        #: Static split: accounting only (mirrors today's cost-model
        #: percentages, never rejects).  Dynamic: enforced capacity.
        self.tiermap = KvTierMap(
            self.topology, enforce=self.policy.dynamic
        )
        model = AnalyticBackend().layer_model(self.spec)
        self.pricer = KvPricer(
            model=model,
            topology=self.topology,
            injector=engine.injector,
        )
        self._num_blocks = engine.config.num_decoder_blocks
        self._block_token_bytes = kv_bytes_per_token_per_block(
            engine.config, engine.policy.kv_dtype_bytes
        )
        self._gpu_fraction = engine.policy.kv_gpu_percent / 100.0
        #: request id -> virtual time of its last admit/decode touch.
        self._last_touch: Dict[int, float] = {}
        #: Migration time accrued outside an iteration (degradation
        #: demotions), drained into the next decode surcharge.
        self._pending_s = 0.0
        self.migrations: List[MigrationRecord] = []
        self.migration_bytes = 0
        #: Tiers currently structurally lost (see ``sync_structure``).
        self.lost_tiers: set = set()
        #: The GPU plan's batch cap, resolved once: the binary search
        #: over memory plans is far too slow for a per-iteration call.
        self._plan_max_batch = (
            engine.max_batch_size() if self.policy.dynamic else None
        )
        self._admission_limit = self._compute_admission_limit()
        telemetry = resolve_telemetry(telemetry)
        self._metrics = telemetry.scoped("kv")
        self._tracer = telemetry.tracer
        self._run_span = None

    # -- wiring --------------------------------------------------------

    def bind_run(self, tracer, run_span) -> None:
        """Parent migration spans under the scheduler's run span."""
        self._tracer = tracer
        self._run_span = run_span

    # -- sizing --------------------------------------------------------

    def _block_bytes(self, tokens: int) -> int:
        """One decoder block's pre-allocated KV for one request."""
        return int(tokens) * self._block_token_bytes

    def request_bytes(self, prompt_len: int, gen_len: int) -> int:
        """A request's full pre-allocated KV window, all blocks."""
        return self._num_blocks * self._block_bytes(prompt_len + gen_len)

    def admission_limit(self) -> Optional[int]:
        """How many reference-shaped requests the tiers can hold.

        ``None`` for the static policy — admission stays governed by
        the batch cap alone, exactly as before ``repro.kv``.
        Constant for a run (capacity model + GPU plan), so it is
        computed once at construction.
        """
        return self._admission_limit

    def _compute_admission_limit(self) -> Optional[int]:
        if not self.policy.dynamic:
            return None
        block = self._block_bytes(
            self.engine.prompt_len + self.engine.gen_len
        )
        # Effective capacity: structural losses/shrinks scale each
        # tier down (all factors are 1.0 until a fault fires, so this
        # is the nominal budget for a healthy run).
        fit_blocks = sum(
            self.tiermap.capacity_bytes(budget.name) // block
            for budget in self.topology.budgets
        )
        by_capacity = max(1, fit_blocks // self._num_blocks)
        by_overcommit = max(
            1,
            int(self._plan_max_batch * self.policy.overcommit),
        )
        return min(by_capacity, by_overcommit)

    # -- queries -------------------------------------------------------

    def occupancy(self) -> Dict[str, int]:
        return self.tiermap.occupancy()

    def snapshot(self) -> Dict[str, object]:
        """Operator-facing state summary (for run reports)."""
        return {
            "policy": self.policy.name,
            "occupancy_bytes": self.occupancy(),
            "migrations": len(self.migrations),
            "migration_bytes": self.migration_bytes,
            "admission_limit": self.admission_limit(),
        }

    # -- scheduler hooks ----------------------------------------------

    def try_admit(self, spec, now: float) -> Tuple[bool, float]:
        """Place one request's KV window; (admitted, surcharge_s).

        Static: split per the engine policy's ``kv_gpu_percent``
        between HBM and the host tier (both extents span every block,
        mirroring the cost model's per-block byte shares), accounting
        only, surcharge exactly ``0.0``.

        Dynamic: whole-block placement fast tier first.  When the
        policy evicts, the coldest requests' fast extents are demoted
        to slower tiers to give the (hot) newcomer HBM locality, and
        the migration time is returned as a prefill surcharge.
        Admission fails — without side effects — when the tiers
        cannot hold the window at block granularity.
        """
        tokens = spec.prompt_len + spec.gen_len
        request_id = spec.request_id
        if not self.policy.dynamic:
            self._place_static(request_id, tokens)
            self._last_touch[request_id] = now
            self._publish_occupancy()
            return True, 0.0
        block = self._block_bytes(tokens)
        fit_blocks = sum(
            self.tiermap.free_bytes(budget.name) // block
            for budget in self.topology.budgets
        )
        if fit_blocks < self._num_blocks:
            return False, 0.0
        surcharge = 0.0
        if self.policy.evict_cold:
            surcharge += self._make_room_fast(
                self._num_blocks * block, now, protect=request_id
            )
        start = 0
        for budget in self.topology.budgets:
            if start >= self._num_blocks:
                break
            fit = min(
                self._num_blocks - start,
                self.tiermap.free_bytes(budget.name) // block,
            )
            if fit > 0:
                self.tiermap.place(
                    request_id,
                    LayerRange(start, start + fit),
                    budget,
                    fit * block,
                )
                start += fit
        if start < self._num_blocks:
            # Block-granularity fragmentation after demotion; undo.
            self.tiermap.release_request(request_id)
            return False, 0.0
        self._last_touch[request_id] = now
        self._publish_occupancy()
        return True, surcharge

    def on_decode(self, running, now: float) -> float:
        """Price this decode iteration's tier-resident KV traffic.

        Reads of each request's slow-tier KV share (its attended
        context, block-proportional) are accumulated per tier and
        priced through the solver; any pending degradation-demotion
        time is drained into the result; then decoding requests' slow
        extents are passively promoted back to the fast tier while
        room lasts (priced as well — promotion is not free).
        """
        if not self.policy.dynamic:
            return 0.0
        surcharge = self._pending_s
        self._pending_s = 0.0
        reads: Dict[str, int] = {}
        for request in running:
            context = request.context_len
            for extent in self.tiermap.extents_of(request.spec.request_id):
                if extent.shadow:
                    continue
                budget = self.topology.budget(extent.tier_name)
                if budget.kind == "gpu":
                    continue
                nbytes = (
                    context
                    * self._block_token_bytes
                    * extent.layers.count
                )
                reads[budget.name] = reads.get(budget.name, 0) + nbytes
        for budget in self.topology.budgets:
            nbytes = reads.get(budget.name, 0)
            if nbytes:
                surcharge += self.pricer.read_time(budget, nbytes)
        if self.policy.promote_on_read:
            surcharge += self._promote(running, now)
        for request in running:
            self._last_touch[request.spec.request_id] = now
        self._publish_occupancy()
        return surcharge

    def on_degraded(self, now: float, severity: float = 1.0) -> None:
        """Resilience hook: demote KV off the degraded host tier.

        Moves host-tier extents to the storage tier (when the
        configuration has one, as far as capacity allows); the
        migration time is charged to the next iteration's surcharge.
        A topology without a storage tier has nowhere to demote to —
        no-op.
        """
        if not self.policy.dynamic:
            return
        disk = next(
            (
                budget
                for budget in self.topology.budgets
                if budget.kind == "disk"
            ),
            None,
        )
        if disk is None:
            return
        hosts = [
            budget
            for budget in self.topology.budgets
            if budget.kind == "host"
        ]
        for budget in hosts:
            for request_id in self.tiermap.request_ids():
                for extent in self.tiermap.extents_of(request_id):
                    if extent.shadow or extent.tier_name != budget.name:
                        continue
                    if extent.nbytes > self.tiermap.free_bytes(disk.name):
                        continue
                    duration = self.pricer.migration_time(
                        budget, disk, extent.nbytes, now
                    )
                    self.tiermap.move(extent, disk)
                    self._record_migration(
                        extent, budget, disk, now, duration, "degraded"
                    )
                    self._pending_s += duration
        self._publish_occupancy()

    def release(self, request_id: int, now: float = 0.0) -> None:
        """Free a finished/shed request's KV (unknown ids: no-op)."""
        freed = self.tiermap.release_request(request_id)
        self._last_touch.pop(request_id, None)
        if freed:
            self._publish_occupancy()

    # -- structural faults --------------------------------------------

    def _structural_targets(self, budget: TierBudget) -> Tuple[str, ...]:
        """Fault-target names a structural fault may address this
        tier by (its kind's conventional name plus its own)."""
        if budget.kind == "host":
            return (HOST_TARGET, budget.name)
        if budget.kind == "disk":
            return (DISK_TARGET, budget.name)
        return (budget.name,)

    def sync_structure(self, injector, now: float) -> List[Tuple[str, str]]:
        """Poll the injector's structural faults at one boundary.

        Updates per-tier capacity factors (a lost tier drops to 0.0),
        recomputes the admission limit, and returns the transitions
        that occurred since the last call as ``(event, tier_name)``
        pairs — ``"lost"``, ``"restored"``, ``"shrunk"``, or
        ``"regrown"`` — in topology (fast-to-slow) order.  RNG-free:
        attaching a schedule with no structural faults never changes
        a run.
        """
        if not self.policy.dynamic or injector is None:
            return []
        events: List[Tuple[str, str]] = []
        changed = False
        for budget in self.topology.budgets:
            targets = self._structural_targets(budget)
            lost = injector.tier_lost(targets, now)
            fraction = (
                0.0 if lost else injector.capacity_fraction(targets, now)
            )
            previous = self.tiermap.capacity_factor(budget.name)
            was_lost = budget.name in self.lost_tiers
            if lost and not was_lost:
                self.lost_tiers.add(budget.name)
                events.append(("lost", budget.name))
            elif not lost and was_lost:
                self.lost_tiers.discard(budget.name)
                events.append(("restored", budget.name))
            elif fraction < previous:
                events.append(("shrunk", budget.name))
            elif fraction > previous:
                events.append(("regrown", budget.name))
            if fraction != previous:
                self.tiermap.set_capacity_factor(budget.name, fraction)
                changed = True
        if changed:
            self._admission_limit = self._compute_admission_limit()
            self._publish_occupancy()
        return events

    def rescue_tier(
        self,
        tier_name: str,
        now: float,
        injector=None,
        retry=None,
    ) -> RescueOutcome:
        """Emergency-migrate every extent off a lost tier.

        Shadows resident on the lost tier are dropped for free (the
        authoritative copy survives elsewhere); authoritative extents
        are re-materialized into the fastest surviving tier with
        room, priced through the solver and — when an ``injector``
        and ``retry`` policy are given — through
        ``injector.price_transfer`` against the *destination* tier's
        fault targets, so a flaky destination can exhaust retries.
        A request whose extent finds no surviving home, or whose
        rescue transfer exhausts its retries, fails: **all** of its
        extents are released (no stranded bytes) and its id is
        reported in ``failed`` for the scheduler to shed.
        """
        moved = 0
        moved_bytes = 0
        moved_requests = 0
        rescue_s = 0.0
        failed: List[int] = []
        src = self.topology.budget(tier_name)
        for request_id in self.tiermap.request_ids():
            doomed = False
            touched = False
            for extent in list(self.tiermap.extents_of(request_id)):
                if extent.tier_name != tier_name:
                    continue
                if extent.shadow:
                    self.tiermap.remove(extent)
                    continue
                dst = self._rescue_home(extent.nbytes, tier_name)
                if dst is None:
                    doomed = True
                    break
                duration = self.pricer.migration_time(
                    src, dst, extent.nbytes, now
                )
                if injector is not None and duration > 0.0:
                    targets = self._structural_targets(dst)
                    try:
                        outcome = (
                            injector.price_transfer(
                                targets, duration, now, retry
                            )
                            if retry is not None
                            else injector.price_transfer(
                                targets, duration, now
                            )
                        )
                    except TransferError:
                        doomed = True
                        break
                    duration = outcome.duration_s
                self.tiermap.move(extent, dst)
                self._record_migration(
                    extent, src, dst, now, duration, "rescue"
                )
                rescue_s += duration
                moved += 1
                moved_bytes += extent.nbytes
                touched = True
            if doomed:
                failed.append(request_id)
                self.release(request_id, now)
            elif touched:
                moved_requests += 1
        self._pending_s += rescue_s
        self._publish_occupancy()
        return RescueOutcome(
            tier=tier_name,
            moved_extents=moved,
            moved_bytes=moved_bytes,
            moved_requests=moved_requests,
            rescue_s=rescue_s,
            failed=tuple(failed),
        )

    def _rescue_home(
        self, nbytes: int, exclude: str
    ) -> Optional[TierBudget]:
        """The fastest surviving tier with room for ``nbytes``."""
        for budget in self.topology.budgets:
            if budget.name == exclude or budget.name in self.lost_tiers:
                continue
            if self.tiermap.free_bytes(budget.name) >= nbytes:
                return budget
        return None

    def fail_tier(self, tier_name: str, now: float) -> Tuple[int, ...]:
        """Shed-only response to a lost tier: its KV is simply gone.

        Requests holding authoritative extents there are reported for
        shedding (the scheduler's shed path releases every extent
        they hold); surviving requests' shadows on the tier are
        dropped.  The do-nothing baseline the rescue path is measured
        against.
        """
        failed: List[int] = []
        for request_id in self.tiermap.request_ids():
            stranded = False
            for extent in list(self.tiermap.extents_of(request_id)):
                if extent.tier_name != tier_name:
                    continue
                if extent.shadow:
                    self.tiermap.remove(extent)
                else:
                    stranded = True
            if stranded:
                failed.append(request_id)
        self._publish_occupancy()
        return tuple(failed)

    def spill_overflow(self, tier_name: str, now: float) -> Tuple[int, ...]:
        """Demote extents off a shrunken tier until it fits again.

        Victims are chosen coldest-first (ties: lowest id) and moved
        to the fastest *slower* tier with room; the priced migration
        time accrues to the next iteration's surcharge.  Requests
        whose extents have nowhere to go are reported for shedding.
        """
        src = self.topology.budget(tier_name)
        failed: List[int] = []
        order = sorted(
            self.tiermap.request_ids(),
            key=lambda rid: (self._last_touch.get(rid, 0.0), rid),
        )
        for request_id in order:
            if self.tiermap.free_bytes(tier_name) >= 0:
                break
            for extent in list(self.tiermap.extents_of(request_id)):
                if self.tiermap.free_bytes(tier_name) >= 0:
                    break
                if extent.tier_name != tier_name:
                    continue
                if extent.shadow:
                    self.tiermap.remove(extent)
                    continue
                dst = self._slower_home(extent.nbytes, src)
                if dst is None or dst.name in self.lost_tiers:
                    failed.append(request_id)
                    self.release(request_id, now)
                    break
                duration = self.pricer.migration_time(
                    src, dst, extent.nbytes, now
                )
                self.tiermap.move(extent, dst)
                self._record_migration(
                    extent, src, dst, now, duration, "shrink"
                )
                self._pending_s += duration
        self._publish_occupancy()
        return tuple(failed)

    # -- checkpointing -------------------------------------------------

    def state_snapshot(self) -> Dict[str, object]:
        """The manager's mutable state as a deterministic dict."""
        return {
            "tiermap": self.tiermap.state_snapshot(),
            "last_touch": [
                [request_id, self._last_touch[request_id]]
                for request_id in sorted(self._last_touch)
            ],
            "pending_s": self._pending_s,
            "migration_bytes": self.migration_bytes,
            "migrations": [
                {
                    "request_id": record.request_id,
                    "start": record.layers.start,
                    "stop": record.layers.stop,
                    "src": record.src,
                    "dst": record.dst,
                    "nbytes": record.nbytes,
                    "start_s": record.start_s,
                    "duration_s": record.duration_s,
                    "reason": record.reason,
                }
                for record in self.migrations
            ],
            "lost_tiers": sorted(self.lost_tiers),
            "admission_limit": self._admission_limit,
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Rebuild the manager from :meth:`state_snapshot` output."""
        self.tiermap.restore_state(snapshot["tiermap"])
        self._last_touch = {
            int(request_id): float(touched)
            for request_id, touched in snapshot["last_touch"]
        }
        self._pending_s = float(snapshot["pending_s"])
        self.migration_bytes = int(snapshot["migration_bytes"])
        self.migrations = [
            MigrationRecord(
                request_id=int(entry["request_id"]),
                layers=LayerRange(int(entry["start"]), int(entry["stop"])),
                src=str(entry["src"]),
                dst=str(entry["dst"]),
                nbytes=int(entry["nbytes"]),
                start_s=float(entry["start_s"]),
                duration_s=float(entry["duration_s"]),
                reason=str(entry["reason"]),
            )
            for entry in snapshot["migrations"]
        ]
        self.lost_tiers = set(snapshot["lost_tiers"])
        limit = snapshot["admission_limit"]
        self._admission_limit = None if limit is None else int(limit)

    # -- internals -----------------------------------------------------

    def _place_static(self, request_id: int, tokens: int) -> None:
        """Today's percentage split, as accounting-only extents."""
        total = self._num_blocks * self._block_bytes(tokens)
        gpu_bytes = int(total * self._gpu_fraction)
        host_bytes = total - gpu_bytes
        span = LayerRange(0, self._num_blocks)
        if gpu_bytes > 0:
            self.tiermap.place(
                request_id, span, self.topology.fastest, gpu_bytes
            )
        if host_bytes > 0:
            host = next(
                (
                    budget
                    for budget in self.topology.budgets
                    if budget.kind == "host"
                ),
                None,
            )
            if host is None:
                raise ConfigurationError(
                    "static KV split needs a host tier"
                )
            self.tiermap.place(request_id, span, host, host_bytes)

    def _demotion_candidates(self, protect: int) -> List[int]:
        """Victim requests, coldest first (ties: lowest id)."""
        fast = self.topology.fastest.name
        candidates = [
            request_id
            for request_id in self.tiermap.request_ids()
            if request_id != protect
            and any(
                not extent.shadow and extent.tier_name == fast
                for extent in self.tiermap.extents_of(request_id)
            )
        ]
        candidates.sort(
            key=lambda rid: (self._last_touch.get(rid, 0.0), rid)
        )
        return candidates

    def _slower_home(self, nbytes: int, below: TierBudget):
        """The fastest tier slower than ``below`` with room."""
        for budget in self.topology.budgets:
            if budget.tier.order <= below.tier.order:
                continue
            if self.tiermap.free_bytes(budget.name) >= nbytes:
                return budget
        return None

    def _make_room_fast(
        self, need_bytes: int, now: float, protect: int
    ) -> float:
        """LRU-demote cold fast-tier extents until ``need_bytes`` fit.

        Inclusive hierarchies drop the fast copy for free when a
        slow-tier shadow already holds the blocks; exclusive ones pay
        the migration.  Returns the priced demotion time.
        """
        fast = self.topology.fastest
        target = min(need_bytes, fast.capacity_bytes)
        surcharge = 0.0
        progress = True
        while (
            self.tiermap.free_bytes(fast.name) < target and progress
        ):
            progress = False
            for request_id in self._demotion_candidates(protect):
                extents = [
                    extent
                    for extent in self.tiermap.extents_of(request_id)
                    if not extent.shadow
                    and extent.tier_name == fast.name
                ]
                if not extents:
                    continue
                extent = extents[0]
                shadow = self._shadow_for(extent)
                if shadow is not None:
                    # Inclusive: the slow tier already holds these
                    # blocks — drop the fast copy, promote the shadow
                    # to authoritative, pay nothing.
                    dst = self.topology.budget(shadow.tier_name)
                    self.tiermap.remove(extent)
                    self.tiermap.remove(shadow)
                    self.tiermap.place(
                        request_id, shadow.layers, dst, shadow.nbytes
                    )
                    self._record_migration(
                        extent, fast, dst, now, 0.0, "demote"
                    )
                    progress = True
                    break
                dst = self._slower_home(extent.nbytes, fast)
                if dst is None:
                    continue
                duration = self.pricer.migration_time(
                    fast, dst, extent.nbytes, now
                )
                self.tiermap.move(extent, dst)
                self._record_migration(
                    extent, fast, dst, now, duration, "demote"
                )
                surcharge += duration
                progress = True
                break
        return surcharge

    def _shadow_for(self, extent: KvExtent) -> Optional[KvExtent]:
        """An inclusive shadow covering ``extent``'s blocks, if any."""
        if not self.policy.inclusive:
            return None
        for candidate in self.tiermap.extents_of(extent.request_id):
            if (
                candidate.shadow
                and candidate.layers == extent.layers
                and candidate.nbytes == extent.nbytes
            ):
                return candidate
        return None

    def _promote(self, running, now: float) -> float:
        """Passively promote decoding requests' slow KV to HBM."""
        fast = self.topology.fastest
        surcharge = 0.0
        for request in running:
            request_id = request.spec.request_id
            for extent in list(self.tiermap.extents_of(request_id)):
                if extent.shadow or extent.tier_name == fast.name:
                    continue
                if extent.nbytes > self.tiermap.free_bytes(fast.name):
                    continue
                src = self.topology.budget(extent.tier_name)
                duration = self.pricer.migration_time(
                    src, fast, extent.nbytes, now
                )
                if self.policy.inclusive:
                    # Keep a shadow resident in the slow tier so a
                    # later demotion is a free copy-drop.
                    self.tiermap.remove(extent)
                    self.tiermap.place(
                        request_id,
                        extent.layers,
                        src,
                        extent.nbytes,
                        shadow=True,
                    )
                    self.tiermap.place(
                        request_id, extent.layers, fast, extent.nbytes
                    )
                else:
                    self.tiermap.move(extent, fast)
                self._record_migration(
                    extent, src, fast, now, duration, "promote"
                )
                surcharge += duration
        return surcharge

    def _record_migration(
        self,
        extent: KvExtent,
        src: TierBudget,
        dst: TierBudget,
        now: float,
        duration: float,
        reason: str,
    ) -> None:
        record = MigrationRecord(
            request_id=extent.request_id,
            layers=extent.layers,
            src=src.name,
            dst=dst.name,
            nbytes=extent.nbytes,
            start_s=now,
            duration_s=duration,
            reason=reason,
        )
        self.migrations.append(record)
        self.migration_bytes += extent.nbytes
        self._metrics.counter(
            "migration_bytes", labels={"src": src.name, "dst": dst.name}
        ).inc(extent.nbytes)
        self._metrics.counter(
            "migrations", labels={"reason": reason}
        ).inc()
        self._tracer.span(
            f"kv {reason} req {extent.request_id} {extent.layers}",
            now,
            now + duration,
            parent=self._run_span,
            category="kv_migration",
            request_id=extent.request_id,
            src=src.name,
            dst=dst.name,
            nbytes=extent.nbytes,
            reason=reason,
        )

    def _publish_occupancy(self) -> None:
        for budget in self.topology.budgets:
            self._metrics.gauge(
                "occupancy_bytes", labels={"tier": budget.name}
            ).set(float(self.tiermap.used_bytes(budget.name)))
