"""``repro.kv`` — tiered KV-cache placement for serving.

A per-(request, layer-range) tier map over HBM / DRAM / CXL / Optane /
SSD with explicit per-tier capacity accounting, pluggable placement
policies, and migration pricing routed through the same
``TransferPathSolver`` arithmetic as every other byte this
reproduction moves.  See ``docs/kv.md`` for the subsystem guide.
"""

from repro.kv.manager import KvCacheManager, RescueOutcome
from repro.kv.policy import (
    KV_POLICY_NAMES,
    HotnessKvPolicy,
    KvPolicy,
    StaticKvPolicy,
    kv_policy,
)
from repro.kv.pricing import KvPricer
from repro.kv.tiermap import (
    KvExtent,
    KvTierMap,
    LayerRange,
    MigrationRecord,
)
from repro.kv.tiers import (
    KvTier,
    KvTierTopology,
    TierBudget,
    tier_for_technology,
)

__all__ = [
    "KV_POLICY_NAMES",
    "HotnessKvPolicy",
    "KvCacheManager",
    "KvExtent",
    "KvPolicy",
    "KvPricer",
    "KvTier",
    "KvTierMap",
    "KvTierTopology",
    "LayerRange",
    "MigrationRecord",
    "RescueOutcome",
    "StaticKvPolicy",
    "TierBudget",
    "kv_policy",
    "tier_for_technology",
]
