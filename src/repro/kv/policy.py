"""Pluggable KV placement policies.

A :class:`KvPolicy` tells the :class:`~repro.kv.manager.KvCacheManager`
*how* to place, evict, and promote — the manager owns the mechanism
(tier map, pricing, telemetry).  Two families ship:

* :class:`StaticKvPolicy` — reproduces today's behavior bit for bit:
  KV is split per the engine policy's ``kv_gpu_percent`` between HBM
  and the host tier, accounting only (no enforcement, no migration,
  zero surcharge).  This is the default, and the golden tests pin its
  serving metrics byte-identical to a run without ``repro.kv`` at
  all.
* :class:`HotnessKvPolicy` — dynamic placement: admission against
  real tier capacity, LRU demotion of the coldest requests' fast-tier
  KV when a newcomer needs room, passive promotion of decoding
  requests' slow KV back to HBM when room frees up, and an
  inclusive-hierarchy variant (``hotness-inclusive``) whose demotions
  are free when a slow-tier shadow copy already exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KvPolicy:
    """Base knobs shared by every KV placement policy."""

    name: str = "static"
    #: Dynamic policies enforce tier capacity, migrate, and price
    #: tier-resident reads; the static policy is accounting-only.
    dynamic: bool = False
    #: Demote the coldest requests' fast-tier KV to make room for
    #: newly admitted (hot) requests.
    evict_cold: bool = False
    #: Promote decoding requests' slow-tier KV back to the fast tier
    #: when capacity frees up.
    promote_on_read: bool = False
    #: Inclusive tier hierarchy: keep a slow-tier shadow alongside
    #: promoted/fast extents so demotion is a free copy-drop, at the
    #: cost of permanently occupied slow-tier capacity.
    inclusive: bool = False
    #: Dynamic admission cap as a multiple of the GPU plan's batch
    #: limit: surplus KV overflows to host tiers (paying their read
    #: bandwidth each decode), but the decode batch cannot grow
    #: unboundedly just because slow capacity exists.
    overcommit: float = 2.0

    def __post_init__(self) -> None:
        if self.overcommit < 1.0:
            raise ConfigurationError(
                f"overcommit must be >= 1, got {self.overcommit}"
            )


@dataclass(frozen=True)
class StaticKvPolicy(KvPolicy):
    """Today's static percentage split, as a (no-op) policy object."""

    name: str = "static"
    dynamic: bool = False


@dataclass(frozen=True)
class HotnessKvPolicy(KvPolicy):
    """LRU eviction + passive promotion over real tier capacity."""

    name: str = "hotness"
    dynamic: bool = True
    evict_cold: bool = True
    promote_on_read: bool = True


#: Policy names accepted by :func:`kv_policy` and the CLIs.
KV_POLICY_NAMES = ("static", "hotness", "hotness-inclusive")


def kv_policy(policy) -> KvPolicy:
    """Resolve a policy by name (or pass a ready instance through)."""
    if isinstance(policy, KvPolicy):
        return policy
    if policy == "static":
        return StaticKvPolicy()
    if policy == "hotness":
        return HotnessKvPolicy()
    if policy == "hotness-inclusive":
        return HotnessKvPolicy(name="hotness-inclusive", inclusive=True)
    raise ConfigurationError(
        f"unknown KV policy {policy!r}; choose from "
        f"{', '.join(KV_POLICY_NAMES)}"
    )
