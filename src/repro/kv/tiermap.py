"""The per-(request, layer-range) KV tier map.

Each live request's KV cache is tracked as a set of
:class:`KvExtent` s — contiguous decoder-block ranges resident in one
tier — with explicit per-tier byte accounting.  The map itself is
policy-free mechanism: it places, moves, and releases extents and
answers occupancy queries; *which* extents move where (and what that
costs) is the :mod:`repro.kv.policy` / :mod:`repro.kv.manager` layer.

With ``enforce=True`` a placement that would oversubscribe a tier
raises :class:`~repro.errors.CapacityError`; with ``enforce=False``
the map is accounting-only (the static split, which mirrors today's
cost-model percentages without ever rejecting work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AllocationError, CapacityError, ConfigurationError
from repro.kv.tiers import KvTierTopology, TierBudget


@dataclass(frozen=True)
class LayerRange:
    """A half-open ``[start, stop)`` range of decoder blocks."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ConfigurationError(
                f"invalid layer range [{self.start}, {self.stop})"
            )

    @property
    def count(self) -> int:
        return self.stop - self.start

    def __str__(self) -> str:
        return f"[{self.start},{self.stop})"


@dataclass(frozen=True)
class KvExtent:
    """One request's KV for a block range, resident in one tier.

    ``shadow`` marks an inclusive-hierarchy copy: a slow-tier replica
    kept alongside the authoritative fast-tier extent so a later
    demotion is free (the fast copy is simply dropped).  Shadows
    occupy capacity but are never read from while a faster copy
    exists.
    """

    request_id: int
    layers: LayerRange
    tier_name: str
    nbytes: int
    shadow: bool = False

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigurationError("an extent must hold bytes")


@dataclass(frozen=True)
class MigrationRecord:
    """One KV migration, priced and accounted."""

    request_id: int
    layers: LayerRange
    src: str
    dst: str
    nbytes: int
    start_s: float
    duration_s: float
    reason: str  # "demote" | "promote" | "degraded" | "rescue" | "shrink"


class KvTierMap:
    """Per-tier KV occupancy over one :class:`KvTierTopology`."""

    def __init__(
        self, topology: KvTierTopology, enforce: bool = True
    ) -> None:
        self.topology = topology
        self.enforce = enforce
        self._used: Dict[str, int] = {
            budget.name: 0 for budget in topology.budgets
        }
        self._extents: Dict[int, List[KvExtent]] = {}
        #: Structural-fault capacity scaling per tier (1.0 = nominal,
        #: 0.0 = lost).  Applied on top of the topology budgets so a
        #: runtime tier loss shrinks the map without rebuilding it.
        self._capacity_factor: Dict[str, float] = {
            budget.name: 1.0 for budget in topology.budgets
        }

    # -- queries -------------------------------------------------------

    def used_bytes(self, tier_name: str) -> int:
        try:
            return self._used[tier_name]
        except KeyError:
            raise ConfigurationError(
                f"no KV tier named {tier_name!r}"
            ) from None

    def capacity_factor(self, tier_name: str) -> float:
        try:
            return self._capacity_factor[tier_name]
        except KeyError:
            raise ConfigurationError(
                f"no KV tier named {tier_name!r}"
            ) from None

    def set_capacity_factor(self, tier_name: str, fraction: float) -> None:
        """Scale one tier's effective capacity (structural faults).

        ``0.0`` marks the tier lost; the map keeps accounting its
        extents (they are stranded, not freed) so rescue/shed logic
        can enumerate exactly what was resident.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"capacity factor must be in [0, 1], got {fraction}"
            )
        if tier_name not in self._capacity_factor:
            raise ConfigurationError(f"no KV tier named {tier_name!r}")
        self._capacity_factor[tier_name] = fraction

    def capacity_bytes(self, tier_name: str) -> int:
        """The tier's effective capacity under structural faults."""
        budget = self.topology.budget(tier_name)
        return int(budget.capacity_bytes * self._capacity_factor[tier_name])

    def free_bytes(self, tier_name: str) -> int:
        return self.capacity_bytes(tier_name) - self.used_bytes(tier_name)

    def occupancy_snapshot(self) -> Dict[str, Tuple[int, int]]:
        """``name -> (used, effective capacity)`` for error messages."""
        return {
            budget.name: (
                self._used[budget.name],
                self.capacity_bytes(budget.name),
            )
            for budget in self.topology.budgets
        }

    @property
    def total_free_bytes(self) -> int:
        return sum(
            self.free_bytes(budget.name)
            for budget in self.topology.budgets
        )

    def occupancy(self) -> Dict[str, int]:
        """Used bytes per tier, in topology (fast-to-slow) order."""
        return dict(self._used)

    def extents_of(self, request_id: int) -> Tuple[KvExtent, ...]:
        return tuple(self._extents.get(request_id, ()))

    def request_ids(self) -> Tuple[int, ...]:
        """Requests holding KV, in ascending id order."""
        return tuple(sorted(self._extents))

    # -- mutation ------------------------------------------------------

    def place(
        self,
        request_id: int,
        layers: LayerRange,
        budget: TierBudget,
        nbytes: int,
        shadow: bool = False,
    ) -> KvExtent:
        """Account a new extent in ``budget``'s tier.

        Raises :class:`~repro.errors.CapacityError` when enforcing and
        the tier cannot hold it.
        """
        if self.enforce and nbytes > self.free_bytes(budget.name):
            raise CapacityError(
                budget.name,
                nbytes,
                max(0, self.free_bytes(budget.name)),
                occupancy=self.occupancy_snapshot(),
            )
        extent = KvExtent(
            request_id=request_id,
            layers=layers,
            tier_name=budget.name,
            nbytes=int(nbytes),
            shadow=shadow,
        )
        self._used[budget.name] += extent.nbytes
        self._extents.setdefault(request_id, []).append(extent)
        return extent

    def remove(self, extent: KvExtent) -> None:
        """Drop one extent (freeing its tier bytes)."""
        extents = self._extents.get(extent.request_id, [])
        try:
            extents.remove(extent)
        except ValueError:
            raise AllocationError(
                f"extent {extent} is not resident in the tier map"
            ) from None
        self._used[extent.tier_name] -= extent.nbytes
        if not extents:
            self._extents.pop(extent.request_id, None)

    def move(
        self, extent: KvExtent, dst: TierBudget
    ) -> KvExtent:
        """Re-home one extent into ``dst`` (capacity-checked)."""
        if dst.name == extent.tier_name:
            return extent
        if self.enforce and extent.nbytes > self.free_bytes(dst.name):
            raise CapacityError(
                dst.name,
                extent.nbytes,
                max(0, self.free_bytes(dst.name)),
                occupancy=self.occupancy_snapshot(),
            )
        self.remove(extent)
        return self.place(
            extent.request_id,
            extent.layers,
            dst,
            extent.nbytes,
            shadow=extent.shadow,
        )

    def release_request(self, request_id: int) -> Tuple[KvExtent, ...]:
        """Free everything a request holds; returns the freed extents.

        Unknown ids are a no-op (requests that finished during their
        prefill iteration were never placed twice).
        """
        extents = tuple(self._extents.pop(request_id, ()))
        for extent in extents:
            self._used[extent.tier_name] -= extent.nbytes
        return extents

    # -- checkpointing -------------------------------------------------

    def state_snapshot(self) -> Dict[str, object]:
        """Extents and capacity factors as a deterministic dict."""
        return {
            "capacity_factor": dict(self._capacity_factor),
            "extents": [
                {
                    "request_id": extent.request_id,
                    "start": extent.layers.start,
                    "stop": extent.layers.stop,
                    "tier": extent.tier_name,
                    "nbytes": extent.nbytes,
                    "shadow": extent.shadow,
                }
                for request_id in sorted(self._extents)
                for extent in self._extents[request_id]
            ],
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Rebuild occupancy from :meth:`state_snapshot` output.

        Restoration bypasses enforcement: the snapshot was consistent
        when taken, and replaying it through capacity checks could
        reject a legal (post-shrink, over-budget-by-design) layout.
        """
        self._extents.clear()
        self._used = {
            budget.name: 0 for budget in self.topology.budgets
        }
        self._capacity_factor = dict(snapshot["capacity_factor"])
        for entry in snapshot["extents"]:
            extent = KvExtent(
                request_id=int(entry["request_id"]),
                layers=LayerRange(int(entry["start"]), int(entry["stop"])),
                tier_name=str(entry["tier"]),
                nbytes=int(entry["nbytes"]),
                shadow=bool(entry["shadow"]),
            )
            self._used[extent.tier_name] += extent.nbytes
            self._extents.setdefault(extent.request_id, []).append(extent)
