"""KV-cache memory tiers and per-tier capacity budgets.

The paper places *weights* across heterogeneous host memory; at
serving scale the KV cache is the dominant dynamically-growing
resident set.  This module names the tiers KV can live in (HBM on the
GPU, then the host-memory technologies fast to slow, then storage)
and derives each tier's KV *budget* for one engine configuration:
whatever capacity remains after the placement's weights (and the GPU
plan's working buffers) are accounted for.

A :class:`TierBudget`'s ``kind`` ("gpu" | "host" | "disk") selects
which :class:`~repro.interconnect.path.TransferPathSolver` path prices
reads, writes, and migrations touching the tier — the same solver
every other byte moved by this reproduction is priced through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.devices.device import DeviceKind
from repro.errors import ConfigurationError
from repro.memory.cxl import CxlMemoryTechnology
from repro.memory.dram import DramTechnology
from repro.memory.fsdax import FsdaxTechnology
from repro.memory.memory_mode import MemoryModeTechnology
from repro.memory.optane import OptaneTechnology
from repro.memory.ssd import SsdTechnology
from repro.memory.technology import MemoryTechnology


class KvTier(enum.Enum):
    """Where a KV extent can live, ordered fast to slow."""

    HBM = "hbm"
    DRAM = "dram"
    CXL = "cxl"
    OPTANE = "optane"
    SSD = "ssd"

    @property
    def order(self) -> int:
        """Rank in the fast-to-slow ordering (0 = fastest)."""
        return _TIER_ORDER[self]


_TIER_ORDER = {
    KvTier.HBM: 0,
    KvTier.DRAM: 1,
    KvTier.CXL: 2,
    KvTier.OPTANE: 3,
    KvTier.SSD: 4,
}


def tier_for_technology(technology: MemoryTechnology) -> KvTier:
    """The KV tier a host-memory technology belongs to.

    Memory Mode and FSDAX are Optane behind different interfaces, so
    they share Optane's rank; the technology's own bandwidth curves
    (via the solver) still price them differently.
    """
    if isinstance(technology, DramTechnology):
        return KvTier.DRAM
    if isinstance(technology, CxlMemoryTechnology):
        return KvTier.CXL
    if isinstance(
        technology, (OptaneTechnology, MemoryModeTechnology, FsdaxTechnology)
    ):
        return KvTier.OPTANE
    if isinstance(technology, SsdTechnology):
        return KvTier.SSD
    raise ConfigurationError(
        f"no KV tier mapping for memory technology "
        f"{type(technology).__name__}"
    )


@dataclass(frozen=True)
class TierBudget:
    """One tier's KV capacity in one engine configuration.

    ``kind`` routes pricing: ``"gpu"`` extents are read by the compute
    roofline itself (no transfer), ``"host"`` extents move over the
    host<->GPU PCIe path, ``"disk"`` extents over the (possibly
    bounce-buffered) storage path.
    """

    tier: KvTier
    name: str
    capacity_bytes: int
    kind: str  # "gpu" | "host" | "disk"

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "host", "disk"):
            raise ConfigurationError(
                f"tier {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.capacity_bytes < 0:
            raise ConfigurationError(
                f"tier {self.name!r}: capacity must be >= 0"
            )


@dataclass(frozen=True)
class KvTierTopology:
    """The tiers one engine configuration offers, fast to slow."""

    budgets: Tuple[TierBudget, ...]

    def __post_init__(self) -> None:
        if not self.budgets:
            raise ConfigurationError("a KV topology needs at least one tier")
        names = [budget.name for budget in self.budgets]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate tier names in KV topology: {names}"
            )
        orders = [budget.tier.order for budget in self.budgets]
        if orders != sorted(orders):
            raise ConfigurationError(
                "KV topology budgets must be ordered fast to slow"
            )

    @property
    def total_bytes(self) -> int:
        return sum(budget.capacity_bytes for budget in self.budgets)

    @property
    def fastest(self) -> TierBudget:
        return self.budgets[0]

    def budget(self, name: str) -> TierBudget:
        for budget in self.budgets:
            if budget.name == name:
                return budget
        raise ConfigurationError(
            f"no KV tier named {name!r}; have "
            f"{[b.name for b in self.budgets]}"
        )

    @classmethod
    def from_engine(cls, engine) -> "KvTierTopology":
        """Derive the KV tier budgets of one configured engine.

        * **HBM** — the GPU plan's pre-allocated KV share plus
          whatever HBM headroom the plan leaves free at the engine's
          reference shape.  (An approximation: the plan is computed at
          the reference batch, and serving shapes vary around it; the
          budget is a capacity *model*, not an allocator.)
        * **host** — the host region's capacity minus the CPU-tier
          weight bytes (post-compression).
        * **disk** (when the configuration has one) — the storage
          region's capacity minus the disk-tier weight bytes.
        """
        ratio = engine.policy.compression.ratio
        plan = engine.memory_plan
        hbm = plan.kv_bytes + max(0, plan.free_bytes)
        budgets = [
            TierBudget(
                tier=KvTier.HBM,
                name="HBM",
                capacity_bytes=max(0, hbm),
                kind="gpu",
            )
        ]
        host_region = engine.host.host_region
        host_weights = int(
            engine.placement_result.tier_total_bytes(DeviceKind.CPU) * ratio
        )
        budgets.append(
            TierBudget(
                tier=tier_for_technology(host_region.technology),
                name=host_region.name,
                capacity_bytes=max(
                    0, host_region.capacity_bytes - host_weights
                ),
                kind="host",
            )
        )
        disk_region = engine.host.disk_region
        if disk_region is not None:
            disk_weights = int(
                engine.placement_result.tier_total_bytes(DeviceKind.DISK)
                * ratio
            )
            budgets.append(
                TierBudget(
                    tier=tier_for_technology(disk_region.technology),
                    name=disk_region.name,
                    capacity_bytes=max(
                        0, disk_region.capacity_bytes - disk_weights
                    ),
                    kind="disk",
                )
            )
        return cls(budgets=tuple(budgets))
