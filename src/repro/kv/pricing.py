"""Pricing KV tier residency and migration through ``repro.pricing``.

Every second the KV subsystem adds to an iteration is computed by the
same :class:`~repro.interconnect.path.TransferPathSolver` instance the
engine's cost model uses (working-set configuration included), so KV
costs can never drift from the weight-staging and microbenchmark
arithmetic.  The solver comes from a pricing backend's
:class:`~repro.core.layercosts.LayerCostModel` for the run's
:class:`~repro.pricing.RunSpec` — ``repro.kv`` never builds its own
bandwidth model.

With a :class:`~repro.faults.injector.FaultInjector` attached,
migrations are scaled by the live degradation of the tiers involved
(via the RNG-free ``health`` query, so attaching KV management never
perturbs the injector's seeded retry stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.layercosts import LayerCostModel
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.models import DISK_TARGET, HOST_TARGET
from repro.kv.tiers import KvTierTopology, TierBudget


@dataclass
class KvPricer:
    """Prices tier-resident KV reads/writes and migrations."""

    model: LayerCostModel
    topology: KvTierTopology
    injector: Optional[FaultInjector] = None

    @property
    def solver(self):
        return self.model.solver

    # -- tier-resident traffic ----------------------------------------

    def read_time(self, budget: TierBudget, nbytes: float) -> float:
        """Seconds one decode pass spends pulling ``nbytes`` of KV
        from ``budget``'s tier to the GPU.

        GPU-resident KV is read by the kernels themselves (already in
        the compute roofline), so its transfer cost is zero.
        """
        if nbytes <= 0 or budget.kind == "gpu":
            return 0.0
        if budget.kind == "host":
            return self.solver.host_to_gpu_time(nbytes)
        return self.solver.disk_to_gpu_time(nbytes)

    def write_time(self, budget: TierBudget, nbytes: float) -> float:
        """Seconds to append ``nbytes`` of new KV into ``budget``."""
        if nbytes <= 0 or budget.kind == "gpu":
            return 0.0
        if budget.kind == "host":
            return self.solver.gpu_to_host_time(nbytes)
        return self.solver.gpu_to_disk_time(nbytes)

    # -- migration -----------------------------------------------------

    def migration_time(
        self,
        src: TierBudget,
        dst: TierBudget,
        nbytes: float,
        now: float = 0.0,
    ) -> float:
        """Seconds to move ``nbytes`` of KV from ``src`` to ``dst``.

        Nominal time comes from the solver path matching the (src,
        dst) tier kinds; under fault injection the live slowdown of
        the tiers involved is applied on top.
        """
        if nbytes <= 0 or src.name == dst.name:
            return 0.0
        nominal = self._nominal_migration(src, dst, nbytes)
        if self.injector is None or nominal <= 0.0:
            return nominal
        targets = self._targets(src, dst)
        slowdown = self.injector.health(targets, now).slowdown
        if slowdown <= 1.0:
            return nominal
        return nominal * slowdown

    def _nominal_migration(
        self, src: TierBudget, dst: TierBudget, nbytes: float
    ) -> float:
        solver = self.solver
        pair = (src.kind, dst.kind)
        if pair == ("gpu", "host"):
            return solver.gpu_to_host_time(nbytes)
        if pair == ("host", "gpu"):
            return solver.host_to_gpu_time(nbytes)
        if pair == ("gpu", "disk"):
            return solver.gpu_to_disk_time(nbytes)
        if pair == ("disk", "gpu"):
            return solver.disk_to_gpu_time(nbytes)
        if pair == ("host", "disk"):
            return solver.host_to_disk_time(nbytes)
        if pair == ("disk", "host"):
            return solver.disk_to_host_time(nbytes)
        if pair == ("host", "host"):
            return solver.host_to_host_time(nbytes)
        raise ConfigurationError(
            f"no migration path from {src.name!r} ({src.kind}) to "
            f"{dst.name!r} ({dst.kind})"
        )

    def _targets(
        self, src: TierBudget, dst: TierBudget
    ) -> Tuple[str, ...]:
        """Fault targets a migration between two tiers touches."""
        targets = []
        for budget in (src, dst):
            if budget.kind == "host":
                targets.extend((HOST_TARGET, budget.name))
            elif budget.kind == "disk":
                targets.extend((DISK_TARGET, budget.name))
        # De-duplicate preserving order.
        seen = set()
        out = []
        for target in targets:
            if target not in seen:
                seen.add(target)
                out.append(target)
        return tuple(out)
