"""``repro.plan`` — grid-backed capacity planning.

Answers the operator's inverse question: which (placement, host,
batch, arrival rate) configuration meets a TTFT/TBT/throughput QoS
target at the lowest GPU-seconds per generated token.  Built on the
vectorized :class:`~repro.pricing.LayerCostGrid`, so a whole batch
ladder is priced in one pass per stage per candidate; exposed as the
``repro-plan`` CLI.

See ``docs/planning.md`` for the model and its deliberate
simplifications.
"""

from repro.plan.planner import (
    DEFAULT_PLACEMENTS,
    CapacityPlan,
    CapacityPlanner,
    PlanCandidate,
    QosTarget,
    plan_capacity,
)

__all__ = [
    "DEFAULT_PLACEMENTS",
    "CapacityPlan",
    "CapacityPlanner",
    "PlanCandidate",
    "QosTarget",
    "plan_capacity",
]
