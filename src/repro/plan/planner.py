"""Grid-backed capacity planning for out-of-core serving deployments.

The serving simulator answers "what happens under this load at this
configuration"; the capacity planner answers the operator's inverse
question: *which* configuration — placement scheme, host memory,
batch size, and tolerable arrival rate — meets a TTFT/TBT/throughput
QoS target at the lowest cost per token.

The sweep is wide (placements × hosts × batch ladder × rates), and
every point needs prefill and decode iteration prices.  That is
exactly the shape :class:`~repro.pricing.LayerCostGrid` vectorizes:
one grid ``evaluate`` per (placement, host) candidate prices the
entire batch ladder at once — float-for-float equal to the scalar
:class:`~repro.pricing.AnalyticBackend` — instead of one scalar model
walk per (batch, stage) point.

The queueing term is deliberately simple and closed-form (utilization
``rho = rate x block_time / batch`` with an M/D/1-style waiting
factor ``rho / (1 - rho)``) so the planner stays deterministic and
instant; the open-loop simulator remains the authority for the
configurations the planner shortlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import OffloadEngine
from repro.core.metrics import Stage
from repro.core.qos import QosTarget
from repro.errors import ConfigurationError, ReproError
from repro.models.config import opt_config
from repro.pricing import AnalyticBackend

__all__ = [
    "CapacityPlan",
    "CapacityPlanner",
    "PlanCandidate",
    "QosTarget",
    "plan_capacity",
]

DEFAULT_PLACEMENTS = ("baseline", "helm", "allcpu")


@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated (placement, host, shards, batch, rate) point."""

    placement: str
    host: str
    batch_size: int
    rate_rps: float
    prefill_s: float
    tbt_s: float
    #: Time to serve one admitted block end to end: prefill plus the
    #: remaining decode iterations.
    block_time_s: float
    #: Queueing-corrected time to first token at ``rate_rps``.
    ttft_s: float
    #: Generated tokens per second at full occupancy.
    throughput_tps: float
    #: Offered load per decode slot (rho); >= 1 means saturated.
    utilization: float
    #: GPU-seconds per generated token — the planner's cost metric.
    cost_per_token_s: float
    feasible: bool
    infeasible_reason: str = ""
    #: Fleet degrees: identical replicas behind a router, and the
    #: tensor/pipeline partitioning of each replica's placement.
    replicas: int = 1
    tensor_parallel: int = 1
    pipeline_parallel: int = 1

    @property
    def shard_degree(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel

    def summary(self) -> Dict[str, object]:
        return {
            "placement": self.placement,
            "host": self.host,
            "batch_size": self.batch_size,
            "rate_rps": self.rate_rps,
            "replicas": self.replicas,
            "tensor_parallel": self.tensor_parallel,
            "pipeline_parallel": self.pipeline_parallel,
            "ttft_s": self.ttft_s,
            "tbt_s": self.tbt_s,
            "throughput_tps": self.throughput_tps,
            "utilization": self.utilization,
            "cost_per_token_s": self.cost_per_token_s,
            "feasible": self.feasible,
            "infeasible_reason": self.infeasible_reason,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's answer: cheapest feasible point plus the sweep."""

    target: QosTarget
    chosen: Optional[PlanCandidate]
    candidates: Tuple[PlanCandidate, ...]

    @property
    def meets_target(self) -> bool:
        return self.chosen is not None

    def feasible_candidates(self) -> Tuple[PlanCandidate, ...]:
        return tuple(c for c in self.candidates if c.feasible)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "meets_target": self.meets_target,
            "evaluated": len(self.candidates),
            "feasible": len(self.feasible_candidates()),
        }
        if self.chosen is not None:
            out["chosen"] = self.chosen.summary()
        return out


def _bucket(tokens: int, cap: int, step: int) -> int:
    """Round up to the bucket grid, clipped to ``cap`` (the serving
    cost model's bucketing, reproduced so planner prices hit the same
    cache keys)."""
    rounded = max(step, ((int(tokens) + step - 1) // step) * step)
    return min(rounded, cap)


def _batch_ladder(max_batch: int) -> List[int]:
    ladder = []
    batch = 1
    while batch < max_batch:
        ladder.append(batch)
        batch *= 2
    ladder.append(max_batch)
    return sorted(set(ladder))


def _sort_key(candidate: PlanCandidate) -> Tuple:
    """Deterministic ordering: cheapest first, stable tie-break."""
    return (
        candidate.cost_per_token_s,
        candidate.ttft_s,
        candidate.host,
        candidate.placement,
        candidate.batch_size,
        candidate.rate_rps,
        candidate.replicas,
        candidate.tensor_parallel,
        candidate.pipeline_parallel,
    )


def _check_target(
    target: QosTarget, ttft_s: float, tbt_s: float, throughput_tps: float
) -> str:
    """Empty string when the point meets every bound, else the reason."""
    if target.max_ttft_s is not None and ttft_s > target.max_ttft_s:
        return f"TTFT {ttft_s:.3f}s > {target.max_ttft_s:.3f}s"
    if target.max_tbt_s is not None and tbt_s > target.max_tbt_s:
        return f"TBT {tbt_s:.3f}s > {target.max_tbt_s:.3f}s"
    if (
        target.min_throughput_tps is not None
        and throughput_tps < target.min_throughput_tps
    ):
        return (
            f"throughput {throughput_tps:.3f} tok/s < "
            f"{target.min_throughput_tps:.3f}"
        )
    return ""


@dataclass(frozen=True)
class _StageLadder:
    """One priced (host, placement, shard degree) sweep cell."""

    host: str
    placement: str
    tensor_parallel: int
    pipeline_parallel: int
    #: Per-batch ``(batch, prefill_s, tbt_s)`` prices for this cell.
    priced: Tuple[Tuple[int, float, float], ...]


class CapacityPlanner:
    """Warm incremental planner over a fixed configuration scope.

    All the *expensive* planning work — engine construction, placement
    sharding, and the vectorized batch-ladder pricing — depends only
    on the configuration axes (model, hosts, placements, shard
    degrees, lengths), not on the QoS target or the offered load.
    ``CapacityPlanner`` does that work once at construction and keeps
    the priced ladders; :meth:`plan` is then pure arithmetic over
    them, cheap enough to call at every control interval of an online
    autoscaler (:mod:`repro.autoscale`) with fresh rates and replica
    ranges.

    :func:`plan_capacity` is the one-shot convenience wrapper; a plan
    produced through either path is bit-identical for the same
    arguments.
    """

    def __init__(
        self,
        model: str = "opt-175b",
        hosts: Sequence[str] = ("NVDRAM",),
        placements: Sequence[str] = DEFAULT_PLACEMENTS,
        compress_weights: bool = True,
        prompt_len: int = 128,
        gen_len: int = 21,
        bucket_tokens: int = 32,
        overlap: bool = True,
        max_batch_limit: int = 512,
        shard_degrees: Sequence[Tuple[int, int]] = ((1, 1),),
    ) -> None:
        if not hosts or not placements:
            raise ConfigurationError(
                "plan_capacity needs at least one host, placement, and rate"
            )
        if not shard_degrees:
            raise ConfigurationError(
                "plan_capacity needs at least one shard degree and one "
                "replica count"
            )
        for tp, pp in shard_degrees:
            if tp < 1 or pp < 1:
                raise ConfigurationError("shard degrees must be >= 1")
        if prompt_len < 1 or gen_len < 1:
            raise ConfigurationError(
                "prompt and generation lengths must be >= 1"
            )
        config = opt_config(model)
        # The serving cost model rejects generation lengths that leave
        # no room for a prompt; without the same check here the sweep
        # would silently price a clamped (zero-sized) prefill bucket.
        if config.max_position - gen_len < 1:
            raise ConfigurationError(
                f"{config.name}: gen_len {gen_len} leaves "
                f"no room for a prompt under max position "
                f"{config.max_position}; every prefill bucket "
                "would be non-positive"
            )
        self.model = model
        self.gen_len = gen_len
        self.prompt_len = prompt_len
        self.backend = AnalyticBackend()
        # Deterministic stage progress through the ambient telemetry:
        # gauges count sweep cells (no wall clock), so a long plan is
        # watchable with `repro-telemetry dash` yet bit-stable in
        # diffs.  Totals cover every (host, placement, shard degree)
        # cell — the shard axis multiplies the sweep, and the dash
        # must not report 100% while shard cells are still pricing.
        from repro.telemetry import current_telemetry

        progress = current_telemetry().scoped("progress")
        stages = sorted(set(hosts))
        cells_per_stage = len(set(placements)) * len(set(shard_degrees))
        progress.gauge("plan_stages_total").set(len(stages))
        progress.gauge("plan_cells_total").set(len(stages) * cells_per_stage)
        cells_done = 0
        ladders: List[_StageLadder] = []
        degrees = sorted(set(shard_degrees))
        for stage_index, host in enumerate(stages):
            progress.gauge("plan_stages_completed").set(stage_index)
            for placement in sorted(set(placements)):
                try:
                    engine = OffloadEngine(
                        model=model,
                        host=host,
                        placement=placement,
                        compress_weights=compress_weights,
                        batch_size=1,
                        prompt_len=prompt_len,
                        gen_len=gen_len,
                        pricing_backend="analytic",
                    )
                    max_batch = engine.max_batch_size(limit=max_batch_limit)
                except ReproError:
                    engine = None
                    max_batch = 0
                if engine is None or max_batch < 1:
                    cells_done += len(degrees)
                    progress.gauge("plan_cells_completed").set(cells_done)
                    continue
                max_position = engine.config.max_position
                decode_bucket = _bucket(
                    prompt_len + gen_len, max_position, bucket_tokens
                )
                prefill_bucket = _bucket(
                    prompt_len, max_position - gen_len, bucket_tokens
                )
                for tp, pp in degrees:
                    cells_done += 1
                    progress.gauge("plan_cells_completed").set(cells_done)
                    # Per-batch (prefill_s, tbt) prices for this degree.
                    priced: List[Tuple[int, float, float]] = []
                    if tp == 1 and pp == 1:
                        ladder = _batch_ladder(max_batch)
                        spec = engine.run_spec(
                            batch_size=1,
                            prompt_len=prompt_len,
                            overlap=overlap,
                            include_faults=False,
                        )
                        grid = self.backend.cost_grid(spec)
                        decode = grid.evaluate(
                            Stage.DECODE, ladder, [decode_bucket]
                        )
                        prefill = grid.evaluate(
                            Stage.PREFILL, ladder, [prefill_bucket]
                        )
                        decode_totals = decode.totals()
                        prefill_totals = prefill.totals()
                        for index, batch in enumerate(ladder):
                            priced.append(
                                (
                                    batch,
                                    float(prefill_totals[index, 0]),
                                    float(decode_totals[index, 0]),
                                )
                            )
                    else:
                        from repro.core.placement.sharding import (
                            ShardedPlacement,
                        )
                        from repro.fleet.costs import ShardedCostModel

                        try:
                            sharded = ShardedPlacement.plan(
                                engine.placement_result,
                                tensor_parallel=tp,
                                pipeline_parallel=pp,
                            )
                            costs = ShardedCostModel(
                                engine, sharded, overlap=overlap
                            )
                            shard_batch = costs.max_concurrency(
                                max_batch_limit
                            )
                        except ReproError:
                            continue
                        if shard_batch < 1:
                            continue
                        for batch in _batch_ladder(shard_batch):
                            priced.append(
                                (
                                    batch,
                                    costs.prefill_time(
                                        batch, prefill_bucket
                                    ),
                                    costs.decode_time(
                                        batch, decode_bucket
                                    ),
                                )
                            )
                    if priced:
                        ladders.append(
                            _StageLadder(
                                host=host,
                                placement=placement,
                                tensor_parallel=tp,
                                pipeline_parallel=pp,
                                priced=tuple(priced),
                            )
                        )
        progress.gauge("plan_stages_completed").set(len(stages))
        self._ladders: Tuple[_StageLadder, ...] = tuple(ladders)

    def plan(
        self,
        target: QosTarget,
        rates_rps: Sequence[float] = (0.01,),
        replica_counts: Sequence[int] = (1,),
    ) -> CapacityPlan:
        """Re-plan over the warm ladders at new rates/replica counts."""
        if not rates_rps:
            raise ConfigurationError(
                "plan_capacity needs at least one host, placement, and rate"
            )
        for rate in rates_rps:
            if rate <= 0:
                raise ConfigurationError("arrival rates must be positive")
        if not replica_counts:
            raise ConfigurationError(
                "plan_capacity needs at least one shard degree and one "
                "replica count"
            )
        for count in replica_counts:
            if count < 1:
                raise ConfigurationError("replica counts must be >= 1")
        gen_len = self.gen_len
        evaluated: List[PlanCandidate] = []
        for cell in self._ladders:
            degree = cell.tensor_parallel * cell.pipeline_parallel
            for batch, prefill_s, tbt in cell.priced:
                block_time = prefill_s + max(0, gen_len - 1) * tbt
                throughput = batch * gen_len / block_time
                # Shards are extra hardware; replicas scale both
                # numerator and denominator, so per-token cost is
                # replica-invariant.
                cost = degree * block_time / (batch * gen_len)
                for count in sorted(set(replica_counts)):
                    for rate in sorted(rates_rps):
                        utilization = rate * block_time / (batch * count)
                        fleet_tps = count * throughput
                        if utilization >= 1.0:
                            evaluated.append(
                                PlanCandidate(
                                    placement=cell.placement,
                                    host=cell.host,
                                    batch_size=batch,
                                    rate_rps=rate,
                                    prefill_s=prefill_s,
                                    tbt_s=tbt,
                                    block_time_s=block_time,
                                    ttft_s=float("inf"),
                                    throughput_tps=fleet_tps,
                                    utilization=utilization,
                                    cost_per_token_s=cost,
                                    feasible=False,
                                    infeasible_reason=(
                                        "saturated (rho = "
                                        f"{utilization:.2f})"
                                    ),
                                    replicas=count,
                                    tensor_parallel=cell.tensor_parallel,
                                    pipeline_parallel=cell.pipeline_parallel,
                                )
                            )
                            continue
                        waiting = (
                            utilization
                            / (1.0 - utilization)
                            * block_time
                            / 2.0
                        )
                        ttft = prefill_s + waiting
                        reason = _check_target(target, ttft, tbt, fleet_tps)
                        evaluated.append(
                            PlanCandidate(
                                placement=cell.placement,
                                host=cell.host,
                                batch_size=batch,
                                rate_rps=rate,
                                prefill_s=prefill_s,
                                tbt_s=tbt,
                                block_time_s=block_time,
                                ttft_s=ttft,
                                throughput_tps=fleet_tps,
                                utilization=utilization,
                                cost_per_token_s=cost,
                                feasible=not reason,
                                infeasible_reason=reason,
                                replicas=count,
                                tensor_parallel=cell.tensor_parallel,
                                pipeline_parallel=cell.pipeline_parallel,
                            )
                        )
        candidates = tuple(sorted(evaluated, key=_sort_key))
        feasible = [c for c in candidates if c.feasible]
        chosen = feasible[0] if feasible else None
        return CapacityPlan(
            target=target, chosen=chosen, candidates=candidates
        )


def plan_capacity(
    target: QosTarget,
    model: str = "opt-175b",
    hosts: Sequence[str] = ("NVDRAM",),
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    rates_rps: Sequence[float] = (0.01,),
    compress_weights: bool = True,
    prompt_len: int = 128,
    gen_len: int = 21,
    bucket_tokens: int = 32,
    overlap: bool = True,
    max_batch_limit: int = 512,
    shard_degrees: Sequence[Tuple[int, int]] = ((1, 1),),
    replica_counts: Sequence[int] = (1,),
) -> CapacityPlan:
    """Sweep configurations and pick the cheapest one meeting ``target``.

    For every (placement, host) pair the batch ladder is priced in
    one vectorized grid pass per stage; each (batch, rate) point then
    gets closed-form latency/throughput/utilization estimates:

    * ``tbt`` — one decode iteration at the steady-state context.
    * ``block_time`` — prefill plus the remaining decode iterations.
    * ``throughput`` — ``batch x gen_len / block_time``.
    * ``utilization`` — ``rate x block_time / batch``; at or beyond
      1.0 the queue grows without bound and the point is infeasible.
    * ``ttft`` — prefill plus an M/D/1-style waiting term
      ``rho / (1 - rho) x block_time / 2``.

    ``shard_degrees`` adds tensor/pipeline partitioning as a sweep
    axis: every ``(tp, pp)`` pair beyond ``(1, 1)`` prices the batch
    ladder through a :class:`~repro.fleet.ShardedCostModel` over the
    partitioned placement (allreduce and handoff included), and its
    GPU-seconds-per-token cost is multiplied by the degree — shards
    are extra hardware.  ``replica_counts`` scales the fleet the
    cheap way: replicas divide the offered rate (``rho = rate x
    block_time / (batch x replicas)``) and multiply throughput, at
    unchanged per-token cost.

    The chosen candidate minimizes GPU-seconds per generated token
    among feasible points, with a deterministic tie-break; ``chosen``
    is ``None`` when nothing meets the target.  Candidates that fail
    to build (e.g. a placement whose weights cannot fit, or a model
    too small for the requested shard degree) are skipped.

    One-shot wrapper over :class:`CapacityPlanner`; callers that
    re-plan at varying rates (the autoscaler) should hold a planner
    and call :meth:`CapacityPlanner.plan` to reuse the priced
    ladders.
    """
    if not hosts or not placements or not rates_rps:
        raise ConfigurationError(
            "plan_capacity needs at least one host, placement, and rate"
        )
    for rate in rates_rps:
        if rate <= 0:
            raise ConfigurationError("arrival rates must be positive")
    if not shard_degrees or not replica_counts:
        raise ConfigurationError(
            "plan_capacity needs at least one shard degree and one "
            "replica count"
        )
    for count in replica_counts:
        if count < 1:
            raise ConfigurationError("replica counts must be >= 1")
    planner = CapacityPlanner(
        model=model,
        hosts=hosts,
        placements=placements,
        compress_weights=compress_weights,
        prompt_len=prompt_len,
        gen_len=gen_len,
        bucket_tokens=bucket_tokens,
        overlap=overlap,
        max_batch_limit=max_batch_limit,
        shard_degrees=shard_degrees,
    )
    return planner.plan(
        target, rates_rps=rates_rps, replica_counts=replica_counts
    )
