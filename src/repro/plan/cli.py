"""``repro-plan`` — capacity planning from the shell.

Examples::

    repro-plan --max-tbt 2.0 --model opt-30b --host NVDRAM
    repro-plan --max-ttft 20 --max-tbt 1.5 --rates 0.005,0.01,0.02 \
        --hosts NVDRAM,FSDAX --placements helm,allcpu --json plan.json
    repro-plan --min-throughput 5 --model opt-175b --top 10
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.memory.hierarchy import HOST_CONFIG_LABELS
from repro.plan.planner import (
    DEFAULT_PLACEMENTS,
    CapacityPlan,
    QosTarget,
    plan_capacity,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description=(
            "Plan the cheapest out-of-core serving configuration "
            "(placement, host memory, batch, arrival rate) meeting a "
            "TTFT/TBT/throughput QoS target, priced through the "
            "vectorized analytic cost grid."
        ),
    )
    parser.add_argument("--model", default="opt-175b")
    parser.add_argument(
        "--hosts", default="NVDRAM",
        help="comma-separated host configs, from: "
        f"{', '.join(HOST_CONFIG_LABELS)}",
    )
    parser.add_argument(
        "--placements", default=",".join(DEFAULT_PLACEMENTS),
        help="comma-separated placement schemes (baseline, helm, allcpu)",
    )
    parser.add_argument(
        "--rates", default="0.01",
        help="comma-separated arrival rates to plan for, requests/s",
    )
    parser.add_argument(
        "--max-ttft", type=float, default=None,
        help="QoS bound: maximum time to first token, seconds",
    )
    parser.add_argument(
        "--max-tbt", type=float, default=None,
        help="QoS bound: maximum time between tokens, seconds",
    )
    parser.add_argument(
        "--min-throughput", type=float, default=None,
        help="QoS bound: minimum generated tokens/s",
    )
    parser.add_argument("--prompt-len", type=int, default=128)
    parser.add_argument("--gen-len", type=int, default=21)
    parser.add_argument(
        "--compress", action=argparse.BooleanOptionalAction, default=True,
        help="4-bit group-wise weight quantization (default: on)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=512,
        help="cap on the per-candidate batch ladder",
    )
    parser.add_argument(
        "--shards", default="1",
        help="comma-separated shard degrees to sweep, each TP or "
        "TPxPP (e.g. 1,2,2x2); degree 1 is the unsharded stack",
    )
    parser.add_argument(
        "--replicas", default="1",
        help="comma-separated fleet sizes to sweep (identical "
        "replicas behind a router)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="number of candidates to print (cheapest first)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the full plan as JSON"
    )
    return parser


def _split(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_shards(text: str) -> List[tuple]:
    """``"1,2,2x2"`` -> ``[(1, 1), (2, 1), (2, 2)]`` (TP or TPxPP)."""
    degrees = []
    for part in _split(text):
        tp, _, pp = part.partition("x")
        degrees.append((int(tp), int(pp) if pp else 1))
    return degrees


def _print_plan(plan: CapacityPlan, top: int) -> None:
    print(
        f"evaluated {len(plan.candidates)} candidate(s), "
        f"{len(plan.feasible_candidates())} feasible"
    )
    fleet_axes = any(
        c.replicas != 1 or c.shard_degree != 1 for c in plan.candidates
    )
    if plan.chosen is None:
        print("no configuration meets the target")
    else:
        chosen = plan.chosen
        fleet = ""
        if fleet_axes:
            fleet = (
                f", {chosen.replicas}x replicas of "
                f"tp{chosen.tensor_parallel}/pp{chosen.pipeline_parallel}"
            )
        print(
            f"chosen: {chosen.placement} on {chosen.host}, batch "
            f"{chosen.batch_size} @ {chosen.rate_rps} req/s{fleet} "
            f"({chosen.cost_per_token_s * 1e3:.2f} GPU-ms/token)"
        )
    rows = plan.candidates[: max(0, top)]
    if not rows:
        return
    fleet_head = f" {'fleet':>9}" if fleet_axes else ""
    print(
        f"  {'placement':<10} {'host':<10} {'batch':>5} {'rate':>7}"
        f"{fleet_head} "
        f"{'TTFT s':>8} {'TBT s':>7} {'tok/s':>8} {'rho':>5} "
        f"{'ms/tok':>7}  status"
    )
    for c in rows:
        ttft = "inf" if c.ttft_s == float("inf") else f"{c.ttft_s:.2f}"
        status = "ok" if c.feasible else c.infeasible_reason
        fleet_col = ""
        if fleet_axes:
            label = (
                f"{c.replicas}x tp{c.tensor_parallel}"
                f"pp{c.pipeline_parallel}"
            )
            fleet_col = f" {label:>9}"
        print(
            f"  {c.placement:<10} {c.host:<10} {c.batch_size:>5} "
            f"{c.rate_rps:>7.3f}{fleet_col} {ttft:>8} {c.tbt_s:>7.3f} "
            f"{c.throughput_tps:>8.3f} {c.utilization:>5.2f} "
            f"{c.cost_per_token_s * 1e3:>7.2f}  {status}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        target = QosTarget(
            max_ttft_s=args.max_ttft,
            max_tbt_s=args.max_tbt,
            min_throughput_tps=args.min_throughput,
        )
        plan = plan_capacity(
            target,
            model=args.model,
            hosts=_split(args.hosts),
            placements=_split(args.placements),
            rates_rps=[float(rate) for rate in _split(args.rates)],
            compress_weights=args.compress,
            prompt_len=args.prompt_len,
            gen_len=args.gen_len,
            max_batch_limit=args.max_batch,
            shard_degrees=_parse_shards(args.shards),
            replica_counts=[int(n) for n in _split(args.replicas)],
        )
        _print_plan(plan, args.top)
        if args.json:
            payload = {
                **plan.summary(),
                "candidates": [c.summary() for c in plan.candidates],
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=1)
            print(f"plan written to {args.json}")
        return 0 if plan.meets_target else 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
