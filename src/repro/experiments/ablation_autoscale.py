"""Ablation: planner-in-the-loop autoscaling vs static fleets.

``repro-plan`` answers "how many replicas does this load need"
offline; :mod:`repro.autoscale` puts that answer in the serving loop.
This ablation drives a 10x diurnal swing (0.4 -> 4.0 requests/s over
a 240 s period) through an interactive fleet and pins the trade the
controller is supposed to win:

* **Autoscale holds the SLO** — the controller re-plans every 15
  virtual seconds against a deliberately tight internal TTFT target
  (2 s; planning tighter than the reported SLO absorbs control lag),
  growing the fleet into the peak and draining it in the trough, and
  the measured interactive TTFT p99 stays within the 20 s SLO.
* **Every static size loses somewhere** — each fixed replica count
  either misses the SLO (undersized fleets queue up through the
  peak) or spends more GPU-seconds per generated token than the
  autoscaled fleet (oversized fleets idle through the trough).
* **It actually scales** — the run reaches more than one replica at
  peak and drains back down after it.
* **Determinism** — the same seed and trace replay to bit-identical
  decisions and request records.
* **Clamp inertness** — pinning ``min_replicas == max_replicas == N``
  reproduces the static ``N``-replica fleet's records exactly: an
  autoscaler that can never act changes nothing.

Set ``REPRO_QUICK=1`` (or ``repro-experiments run --quick``) to skip
the determinism replay and the clamp arm.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Tuple

from repro.analysis.reporting import Table
from repro.autoscale import AutoscalePolicy
from repro.core.qos import QosTarget
from repro.experiments.base import ExperimentResult
from repro.fleet import simulate_fleet
from repro.serve.arrivals import DiurnalProcess
from repro.serve.request import INTERACTIVE
from repro.workloads.lengths import LengthDistribution

MODEL = "opt-6.7b"
HOST = "CXL-ASIC"
PLACEMENT = "helm"
SEED = 7
NUM_REQUESTS = 600
PROMPT_LEN = 128
GEN_LEN = 16
MAX_BATCH = 4
BASE_RATE_RPS = 0.4
PEAK_RATE_RPS = 4.0
PERIOD_S = 240.0
#: The reported interactive SLO the arms are judged against.
SLO_TTFT_P99_S = 20.0
#: The controller's internal planning target — tighter than the SLO
#: so capacity leads the ramp instead of chasing it.
PLAN_TTFT_S = 2.0
STATIC_ARMS = (1, 2, 3, 4)

POLICY = AutoscalePolicy(
    interval_s=15.0,
    cooldown_s=15.0,
    min_replicas=1,
    max_replicas=4,
    scale_down_periods=2,
    headroom=1.5,
)


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _fleet(**overrides):
    kwargs = dict(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        arrival=DiurnalProcess(
            base_rate_rps=BASE_RATE_RPS,
            peak_rate_rps=PEAK_RATE_RPS,
            period_s=PERIOD_S,
        ),
        num_requests=NUM_REQUESTS,
        prompt_lengths=LengthDistribution.fixed(PROMPT_LEN),
        gen_lengths=LengthDistribution.fixed(GEN_LEN),
        class_mix=((INTERACTIVE, 1.0),),
        seed=SEED,
        max_batch=MAX_BATCH,
        replicas=1,
    )
    kwargs.update(overrides)
    return simulate_fleet(**kwargs)


def _autoscaled(policy: AutoscalePolicy = POLICY):
    return _fleet(
        autoscale=policy,
        autoscale_target=QosTarget(max_ttft_s=PLAN_TTFT_S),
    )


def _ttft_p99(result) -> float:
    ttfts = sorted(record.ttft_s for record in result.records)
    if not ttfts:
        return 0.0
    rank = min(len(ttfts) - 1, math.ceil(0.99 * len(ttfts)) - 1)
    return ttfts[rank]


def _static_cost(result, replicas: int) -> Tuple[float, float]:
    """(replica_seconds, gpu_seconds_per_token) for a fixed fleet."""
    records = result.records
    span = max(record.finished_s for record in records)
    tokens = sum(record.gen_len for record in records)
    return replicas * span, replicas * span / tokens


def run() -> ExperimentResult:
    quick = _quick()
    table = Table(
        title=(
            "Ablation: autoscaling vs static fleets under a 10x "
            f"diurnal swing ({MODEL}, {HOST}, {PLACEMENT}, "
            f"SLO: TTFT p99 <= {SLO_TTFT_P99_S:.0f} s)"
        ),
        columns=(
            "arm", "replicas", "ttft_p99_s", "meets_slo",
            "gpu_s_per_token", "completed", "shed",
        ),
    )
    data: Dict[str, object] = {
        "slo_ttft_p99_s": SLO_TTFT_P99_S,
        "plan_ttft_s": PLAN_TTFT_S,
    }

    auto = _autoscaled()
    auto_metrics = auto.metrics["autoscale"]
    auto_p99 = _ttft_p99(auto)
    auto_cost = auto_metrics["gpu_seconds_per_token"]
    shed = auto.metrics["shed_requests"]
    table.add_row(
        "autoscale",
        f"{auto_metrics['initial_replicas']}->"
        f"{auto_metrics['peak_replicas']}->"
        f"{auto_metrics['final_replicas']}",
        round(auto_p99, 3),
        auto_p99 <= SLO_TTFT_P99_S,
        round(auto_cost, 4),
        auto.metrics["completed"],
        shed,
    )
    data["autoscale"] = {
        "ttft_p99_s": auto_p99,
        "gpu_seconds_per_token": auto_cost,
        "replica_seconds": auto_metrics["replica_seconds"],
        "peak_replicas": auto_metrics["peak_replicas"],
        "final_replicas": auto_metrics["final_replicas"],
        "scaling_events": auto_metrics["scaling_events"],
        "decisions": len(auto_metrics["decisions"]),
        "completed": auto.metrics["completed"],
        "shed": shed,
    }

    static_beats_auto = False
    for replicas in STATIC_ARMS:
        static = _fleet(replicas=replicas)
        p99 = _ttft_p99(static)
        _, cost = _static_cost(static, replicas)
        meets = p99 <= SLO_TTFT_P99_S
        if meets and cost <= auto_cost:
            static_beats_auto = True
        table.add_row(
            f"static-{replicas}", replicas, round(p99, 3), meets,
            round(cost, 4), static.metrics["completed"],
            static.metrics["shed_requests"],
        )
        data[f"static_{replicas}"] = {
            "ttft_p99_s": p99,
            "gpu_seconds_per_token": cost,
            "meets_slo": meets,
        }

    checks: Dict[str, bool] = {
        "autoscale_meets_slo": auto_p99 <= SLO_TTFT_P99_S,
        # Every fixed size either misses the SLO or costs more
        # GPU-seconds per token than planner-driven scaling.
        "static_tradeoff": not static_beats_auto,
        "autoscale_scaled": (
            auto_metrics["peak_replicas"] > 1
            and auto_metrics["final_replicas"]
            < auto_metrics["peak_replicas"]
        ),
        "conserves_requests": (
            auto.metrics["completed"] + shed == NUM_REQUESTS
        ),
    }

    if not quick:
        replay = _autoscaled()
        checks["deterministic"] = (
            replay.records == auto.records
            and replay.metrics["autoscale"]["decisions"]
            == auto_metrics["decisions"]
        )
        # min == max == 2: the controller observes but can never act;
        # the records must match the static 2-replica fleet's exactly.
        clamped = _fleet(
            replicas=2,
            autoscale=AutoscalePolicy(
                interval_s=POLICY.interval_s,
                cooldown_s=POLICY.cooldown_s,
                min_replicas=2,
                max_replicas=2,
            ),
            autoscale_target=QosTarget(max_ttft_s=PLAN_TTFT_S),
        )
        static_two = _fleet(replicas=2)
        checks["clamp_inert"] = clamped.records == static_two.records

    data["checks"] = checks
    return ExperimentResult(
        name="ablation_autoscale",
        description=(
            "Planner-in-the-loop autoscaling vs static fleets under "
            "a diurnal swing"
        ),
        tables=[table],
        data=data,
    )
