"""Ablation: structural tier loss — KV rescue vs shed-only recovery.

The fault ablation (:mod:`repro.experiments.ablation_faults`) varies
how fast the hierarchy *moves*; this one changes its *shape* at
runtime.  A long-context interactive wave overcommits the KV cache
past the fast tiers onto the SSD storage tier while a batch trickle
rides along; mid-drain — when the fast tiers have freed headroom but
the wave's long tail still holds SSD-resident KV — the SSD dies
(:class:`~repro.faults.models.TierLoss`).  Two recovery arms are
compared:

* **rescue** — the scheduler emergency-migrates every authoritative
  extent off the lost tier into the surviving headroom, priced
  through the same solver as every other byte; requests keep their
  generation progress.
* **shed** — the baseline: requests whose KV lived on the lost tier
  are shed (reason ``"kv_lost"``) and retried by a well-behaved
  client with exponential backoff, redoing their 1536-token prefills
  from scratch.

The headline metric is **client-perceived TTFT**: time from a
request's *first* arrival to its first token, across shed/retry
attempts (the per-attempt TTFT the latency report shows hides the
retry penalty — the client who asked at ``t0`` does not care that the
third attempt was fast).  Expected shape:

* at zero chaos intensity the structural machinery is inert — metrics
  bit-identical to a run with no fault injection at all;
* the rescue arm preserves the interactive tenant's perceived p99
  TTFT through the loss (no interactive request is shed), at the cost
  of priced rescue migrations;
* the shed-only arm collapses perceived p99 TTFT by an order of
  magnitude and drops interactive SLO attainment;
* identical seeds and schedules replay identical runs, and a run with
  the invariant sanitizer attached is bit-identical to one without.

Set ``REPRO_QUICK=1`` (or ``repro-experiments run --quick``) to skip
the seeded chaos-schedule breadth sweep.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import Table
from repro.chaos import SanitizerHarness, generate_chaos_schedule
from repro.core.qos import QosTarget
from repro.experiments.base import ExperimentResult
from repro.experiments.common import pricing_backend
from repro.faults.models import DISK_TARGET, FaultSchedule, TierLoss
from repro.serve.arrivals import (
    PoissonProcess,
    TraceReplay,
    generate_requests,
)
from repro.serve.request import QosClass
from repro.serve.resilience import ResiliencePolicy
from repro.serve.simulator import simulate_serving
from repro.workloads.lengths import LengthDistribution

MODEL = "opt-175b"
HOST = "SSD"
PLACEMENT = "allcpu"
MAX_BATCH = 32
SEED = 7
FAULT_SEED = 13
#: Breadth sweep: seeded chaos schedules (full mode only).
CHAOS_SEEDS = (1, 2)

#: The SSD dies here — mid-drain, when the interactive wave's long
#: tail still holds SSD-resident KV but completions have opened
#: DRAM headroom for a rescue — and is replaced 30 min later
#: (it comes back empty).
LOSS_START_S = 2500.0
LOSS_DURATION_S = 1800.0

#: Long-context interactive wave: 60 chat sessions arriving over
#: ~5 min, 1536-token prompts, lognormal generation tails.  Out of
#: core, first tokens take minutes — the SLO bound is 300 s.
INTERACTIVE = QosClass(
    name="interactive", priority=0, target=QosTarget(max_ttft_s=300.0)
)
#: Background batch trickle, small prompts, only cares about hours.
BATCH = QosClass(
    name="batch",
    priority=1,
    target=QosTarget(max_tbt_s=3600.0),
    max_e2e_s=14400.0,
)
CLASS_MIX = ((INTERACTIVE, 0.5), (BATCH, 0.5))

WAVE_REQUESTS = 60
TRICKLE_REQUESTS = 40


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _specs() -> Tuple:
    """The two-tenant stream: interactive wave + batch trickle.

    The wave's KV (~7 GiB/request) overcommits HBM+DRAM and spills
    onto the SSD tier; the trickle's stays fast-resident.  Streams
    are sampled independently, merged by arrival, and renumbered.
    """
    wave = generate_requests(
        PoissonProcess(rate_rps=0.2),
        WAVE_REQUESTS,
        prompt_lengths=LengthDistribution.fixed(1536),
        gen_lengths=LengthDistribution.lognormal(median=24.0),
        class_mix=((INTERACTIVE, 1.0),),
        seed=11,
    )
    trickle = generate_requests(
        PoissonProcess(rate_rps=0.008),
        TRICKLE_REQUESTS,
        prompt_lengths=LengthDistribution.fixed(128),
        gen_lengths=LengthDistribution.fixed(16),
        class_mix=((BATCH, 1.0),),
        seed=12,
    )
    merged = sorted(wave + trickle, key=lambda spec: spec.arrival_s)
    return tuple(
        dataclasses.replace(spec, request_id=index)
        for index, spec in enumerate(merged)
    )


def _resilience(rescue: bool) -> ResiliencePolicy:
    return ResiliencePolicy(
        rescue_kv=rescue,
        queue_deadline_s=3600.0,
        retry_shed=True,
        retry_max_attempts=3,
        retry_backoff_s=60.0,
    )


def _loss_schedule() -> FaultSchedule:
    return FaultSchedule(
        faults=(
            TierLoss(
                target=DISK_TARGET,
                start_s=LOSS_START_S,
                duration_s=LOSS_DURATION_S,
            ),
        ),
        seed=FAULT_SEED,
    )


def _simulate(
    specs,
    faults: Optional[FaultSchedule],
    rescue: bool = True,
    sanitize=None,
):
    return simulate_serving(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        compress_weights=True,
        arrival=TraceReplay(specs=specs),
        num_requests=0,
        class_mix=CLASS_MIX,
        seed=SEED,
        max_batch=MAX_BATCH,
        pricing_backend=pricing_backend("analytic"),
        faults=faults,
        resilience=_resilience(rescue) if faults is not None else None,
        kv_policy="hotness",
        sanitize=sanitize if sanitize is not None else False,
    )


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _perceived_ttft(result, qos: str) -> Tuple[List[float], int]:
    """Per-request TTFT from *first* arrival across retry attempts.

    Returns the samples for completed requests plus the count of
    requests that never completed (retries exhausted).
    """
    first_arrival: Dict[int, float] = {}
    for shed in result.shed:
        if shed.qos_class != qos:
            continue
        first_arrival[shed.request_id] = min(
            first_arrival.get(shed.request_id, shed.arrival_s),
            shed.arrival_s,
        )
    samples: List[float] = []
    completed = set()
    for record in result.records:
        if record.qos_class != qos:
            continue
        completed.add(record.request_id)
        origin = min(
            first_arrival.get(record.request_id, record.arrival_s),
            record.arrival_s,
        )
        samples.append(record.arrival_s + record.ttft_s - origin)
    return samples, len(set(first_arrival) - completed)


def _flat(result) -> Dict[str, object]:
    metrics = result.metrics
    faults = metrics.faults
    interactive = metrics.per_class["interactive"]
    reasons: Dict[str, int] = {}
    for shed in result.shed:
        reasons[shed.reason] = reasons.get(shed.reason, 0) + 1
    perceived, lost_clients = _perceived_ttft(result, "interactive")
    return {
        "completed": metrics.num_requests,
        "shed": metrics.shed_requests,
        "shed_reasons": reasons,
        "tier_losses": faults.tier_losses,
        "rescued_requests": faults.rescued_requests,
        "client_retries": faults.client_retries,
        "timeouts": faults.timeouts,
        "aborted": faults.aborted,
        "goodput_rps": metrics.goodput_rps,
        "interactive_slo": interactive.slo_attainment,
        "interactive_shed": interactive.shed,
        "interactive_ttft_p99_s": interactive.ttft.p99_s,
        "perceived_ttft_p50_s": _percentile(perceived, 0.50),
        "perceived_ttft_p99_s": _percentile(perceived, 0.99),
        "perceived_ttft_max_s": max(perceived) if perceived else 0.0,
        "lost_clients": lost_clients,
        "kv_migrations": result.setup["kv"]["migrations"],
        "duration_s": metrics.duration_s,
    }


def _accounted(result, specs) -> bool:
    """Every request either completed or was permanently shed."""
    done = {record.request_id for record in result.records}
    shed = {record.request_id for record in result.shed}
    return {spec.request_id for spec in specs} == done | shed


def run() -> ExperimentResult:
    quick = _quick()
    specs = _specs()

    sweep = Table(
        title=(
            "Ablation: SSD tier loss mid-drain — KV rescue vs shed-only "
            "(OPT-175B, DRAM host + SSD storage tier, All-CPU, "
            "long-context interactive wave + batch trickle)"
        ),
        columns=(
            "scenario", "arm", "rescued", "shed", "retries",
            "inter_slo", "perceived_ttft_p99_s", "tier_losses",
            "goodput_rps",
        ),
    )
    data: Dict[str, object] = {}

    def record(key: str, scenario: str, arm: str, result) -> Dict:
        flat = _flat(result)
        data[key] = flat
        sweep.add_row(
            scenario,
            arm,
            flat["rescued_requests"],
            flat["shed"],
            flat["client_retries"],
            round(flat["interactive_slo"], 3),
            round(flat["perceived_ttft_p99_s"], 1),
            flat["tier_losses"],
            round(flat["goodput_rps"], 4),
        )
        return flat

    baseline_run = _simulate(specs, None)
    baseline = record("baseline", "none", "-", baseline_run)

    # Zero-intensity chaos: the generator yields an empty schedule and
    # attaching it must be inert, bit for bit.
    zero_schedule = generate_chaos_schedule(
        FAULT_SEED, span_s=3200.0, targets=(DISK_TARGET,), intensity=0.0
    )
    zero_run = _simulate(specs, zero_schedule)
    record("zero", "zero", "rescue", zero_run)
    zero_identical = (
        baseline_run.records == zero_run.records
        and baseline_run.metrics.summary() == zero_run.metrics.summary()
    )

    loss = _loss_schedule()
    rescue_run = _simulate(specs, loss, rescue=True)
    rescue = record("tier_loss/rescue", "ssd_loss", "rescue", rescue_run)
    shed_run = _simulate(specs, loss, rescue=False)
    shed = record("tier_loss/shed", "ssd_loss", "shed", shed_run)

    # Determinism: same seeds + schedule -> identical run.
    replay = _flat(_simulate(specs, loss, rescue=True))
    deterministic = replay == rescue

    # The invariant sanitizer never perturbs a run: the rescue arm
    # with the harness attached is bit-identical and violation-free.
    harness = SanitizerHarness(strict=True)
    sanitized_run = _simulate(specs, loss, rescue=True, sanitize=harness)
    sanitize_report = harness.report()
    data["sanitize"] = sanitize_report
    sanitized_identical = (
        sanitized_run.records == rescue_run.records
        and sanitized_run.metrics.summary() == rescue_run.metrics.summary()
        and not sanitize_report["violations"]
    )

    accounted = [
        _accounted(run_, specs)
        for run_ in (baseline_run, rescue_run, shed_run)
    ]
    if not quick:
        # Breadth: seeded structural chaos schedules (loss + shrink
        # drawn by the generator) replay deterministically and leave
        # every request accounted for.
        for chaos_seed in CHAOS_SEEDS:
            schedule = generate_chaos_schedule(
                chaos_seed,
                span_s=3200.0,
                targets=(DISK_TARGET,),
                intensity=1.0,
                structural_only=True,
            )
            chaos_run = _simulate(specs, schedule, rescue=True)
            flat = record(
                f"chaos/s{chaos_seed}", f"seed {chaos_seed}", "rescue",
                chaos_run,
            )
            accounted.append(_accounted(chaos_run, specs))
            replayed = _flat(_simulate(specs, schedule, rescue=True))
            deterministic = deterministic and replayed == flat

    data["checks"] = {
        "zero_chaos_identical": zero_identical,
        "deterministic_replay": deterministic,
        "sanitized_identical_and_clean": sanitized_identical,
        # Both arms saw the same structural event...
        "tier_loss_observed": (
            rescue["tier_losses"] >= 1 and shed["tier_losses"] >= 1
        ),
        # ...the rescue arm moved KV instead of stranding requests...
        "rescue_moves_kv": (
            rescue["rescued_requests"] > 0
            and rescue["shed_reasons"].get("kv_lost", 0) == 0
        ),
        "shed_only_strands": shed["shed_reasons"].get("kv_lost", 0) > 0,
        # ...and the client-perceived interactive tail tells the
        # story: rescue holds the baseline p99, shed-only collapses it.
        "rescue_preserves_perceived_ttft": (
            rescue["perceived_ttft_p99_s"]
            <= 1.25 * baseline["perceived_ttft_p99_s"]
            and shed["perceived_ttft_p99_s"]
            >= 2.0 * baseline["perceived_ttft_p99_s"]
        ),
        "rescue_preserves_interactive_slo": (
            rescue["interactive_slo"] > shed["interactive_slo"]
        ),
        "all_accounted": all(accounted),
        "no_aborts": not any(
            value.get("aborted")
            for value in data.values()
            if isinstance(value, dict) and "aborted" in value
        ),
    }
    return ExperimentResult(
        name="ablation_chaos",
        description=(
            "Structural tier loss: KV rescue vs shed-only recovery, "
            "client-perceived interactive TTFT"
        ),
        tables=[sweep],
        data=data,
    )
