"""Command-line interface for the experiment harness.

::

    repro-experiments list
    repro-experiments run all
    repro-experiments run fig11_helm fig12_allcpu
    repro-experiments run all --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _jsonable(value):
    """Best-effort conversion of experiment data to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Improving the "
            "Performance of Out-of-Core LLM Inference Using "
            "Heterogeneous Host Memory' (IISWC 2025)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "names",
        nargs="+",
        help="experiment names, or 'all'",
    )
    run_parser.add_argument(
        "--json",
        metavar="FILE",
        help="also dump every experiment's structured data to FILE",
    )
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps for smoke tests (sets REPRO_QUICK=1)",
    )
    run_parser.add_argument(
        "--telemetry-out",
        metavar="FILE",
        help="capture metrics/spans across the run and write the "
        "telemetry bundle as JSON, readable by repro-telemetry",
    )
    run_parser.add_argument(
        "--pricing-backend",
        default=None,
        metavar="BACKEND",
        help="iteration pricing backend for the sweep: analytic or "
        "event (default: each experiment's own — event for paper "
        "figures, analytic for serving; sets REPRO_PRICING_BACKEND)",
    )
    figures_parser = sub.add_parser(
        "figures", help="render the paper's figures as SVG"
    )
    figures_parser.add_argument("out_dir", help="output directory")
    figures_parser.add_argument(
        "--only",
        nargs="+",
        metavar="FIG",
        help="figure families to render (default: all)",
    )
    sub.add_parser(
        "scorecard",
        help="grade every published claim against a fresh run",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "figures":
        from repro.viz.figures import FIGURES, render_figure

        names = args.only if args.only else sorted(FIGURES)
        written = []
        for name in names:
            written.extend(render_figure(name, args.out_dir))
        for path in written:
            print(path)
        return 0

    if args.command == "scorecard":
        from repro.experiments.paper_values import (
            Grade,
            render_scorecard,
            scorecard,
        )

        results = scorecard()
        print(render_scorecard(results))
        divergent = sum(
            1 for result in results if result.grade is Grade.DIVERGENT
        )
        # Divergences are expected and documented; the exit code only
        # flags *undocumented* ones.
        undocumented = sum(
            1
            for result in results
            if result.grade is Grade.DIVERGENT and not result.claim.note
        )
        return 1 if undocumented else 0

    if getattr(args, "quick", False):
        import os

        os.environ["REPRO_QUICK"] = "1"
    if getattr(args, "pricing_backend", None):
        import os

        from repro.errors import ConfigurationError
        from repro.pricing import cost_backend

        try:
            cost_backend(args.pricing_backend)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        os.environ["REPRO_PRICING_BACKEND"] = args.pricing_backend
    names = sorted(EXPERIMENTS) if args.names == ["all"] else args.names
    telemetry = None
    if getattr(args, "telemetry_out", None):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.create(
            tool="repro-experiments", experiments=",".join(names)
        )
    # Sweep-progress gauges.  progress/ is the one namespace where
    # wall-clock readings are allowed (repro-telemetry diff skips it
    # by default), so a long `run all` is watchable live with
    # `repro-telemetry dash sweep.jsonl`.
    progress = telemetry.scoped("progress") if telemetry else None
    live_jsonl = (
        args.telemetry_out
        if telemetry is not None and args.telemetry_out.endswith(".jsonl")
        else None
    )
    if live_jsonl:
        # Truncate: the log is append-only *within* a sweep.
        open(live_jsonl, "w").close()
    sweep_started = time.time()
    failures = 0
    dump: Dict[str, object] = {}
    for index, name in enumerate(names):
        if progress is not None:
            progress.gauge("experiments_total").set(len(names))
            progress.gauge("experiments_completed").set(index)
            progress.gauge("experiments_failed").set(failures)
            progress.gauge("running", labels={"experiment": name}).set(1)
        started = time.time()
        try:
            result = _run_one(name, telemetry)
        except Exception as error:  # surface, keep going
            failures += 1
            print(f"### {name}: FAILED: {error}", file=sys.stderr)
            result = None
        if progress is not None:
            elapsed = time.time() - sweep_started
            progress.gauge("running", labels={"experiment": name}).set(0)
            progress.gauge("experiments_completed").set(index + 1)
            progress.gauge("experiments_failed").set(failures)
            progress.gauge("elapsed_s").set(elapsed)
            progress.gauge("experiments_per_s").set(
                (index + 1) / elapsed if elapsed > 0 else 0.0
            )
        if live_jsonl:
            from repro.telemetry.export import append_jsonl_snapshot

            append_jsonl_snapshot(telemetry.bundle(), live_jsonl)
        if result is None:
            continue
        print(result.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]\n")
        dump[name] = {
            "description": result.description,
            "data": _jsonable(result.data),
        }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(dump, handle, indent=1)
        print(f"[structured data written to {args.json}]")
    if telemetry is not None:
        if live_jsonl:
            print(
                f"[telemetry JSONL written to {live_jsonl} "
                "(tail with: repro-telemetry dash)]"
            )
        else:
            telemetry.save(args.telemetry_out)
            print(
                f"[telemetry bundle written to {args.telemetry_out}]"
            )
    return 1 if failures else 0


def _run_one(name: str, telemetry):
    """Run one experiment, with ``telemetry`` ambient when given.

    Experiments call :func:`repro.serve.simulate_serving` and
    :meth:`repro.core.OffloadEngine.run_timing` internally; making the
    bundle ambient captures their metrics without threading a
    parameter through every experiment body.
    """
    if telemetry is None:
        return run_experiment(name)
    from repro.telemetry import use_telemetry

    with use_telemetry(telemetry):
        return run_experiment(name)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
