"""Ablation: energy per generated token across memory configurations.

Quantifies the abstract's closing argument — that careful placement
lets high-capacity/slower memory substitute for DRAM, "improving
overall system energy efficiency".  Energy model and provenance in
:mod:`repro.analysis.energy`.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.energy import estimate_energy
from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN
from repro.experiments.fig12_allcpu import max_allcpu_batch


def _engine(host: str, placement: str, batch: int) -> OffloadEngine:
    return OffloadEngine(
        model="opt-175b", host=host, placement=placement,
        compress_weights=True, batch_size=batch,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )


def run() -> ExperimentResult:
    bmax = max_allcpu_batch()
    table = Table(
        title="Ablation: energy per token (OPT-175B, compressed)",
        columns=(
            "config", "placement", "batch",
            "J_per_token", "memory_static_J", "gpu_J", "transfer_J",
        ),
    )
    data: Dict[str, Dict] = {"max_batch": bmax}
    for host in ("DRAM", "NVDRAM", "MemoryMode"):
        for placement, batch in (
            ("baseline", 8),
            ("helm", 1),
            ("allcpu", bmax),
        ):
            engine = _engine(host, placement, batch)
            metrics = engine.run_timing()
            energy = estimate_energy(engine, metrics)
            transfer = energy.host_dynamic_j + energy.pcie_dynamic_j
            table.add_row(
                host, placement, batch,
                round(energy.joules_per_token, 2),
                round(energy.memory_static_j, 1),
                round(energy.gpu_j, 1),
                round(transfer, 1),
            )
            data[f"{host}/{placement}/b{batch}"] = energy.as_dict()

    nv = data[f"NVDRAM/allcpu/b{bmax}"]["joules_per_token"]
    dram = data[f"DRAM/allcpu/b{bmax}"]["joules_per_token"]
    data["checks"] = {
        # At the throughput-optimal point, the heterogeneous host's
        # lower standing power offsets its slower run — J/token lands
        # at (or below) parity with an all-DRAM host of equal
        # capacity, supporting the abstract's efficiency claim.
        "allcpu_nvdram_vs_equal_capacity_dram": nv / dram,
        "allcpu_nvdram_at_or_below_dram_parity": nv <= dram * 1.05,
        # Raising throughput (All-CPU) slashes J/token vs baseline b8.
        "throughput_cuts_energy": (
            nv < 0.5 * data["NVDRAM/baseline/b8"]["joules_per_token"]
        ),
    }
    return ExperimentResult(
        name="ablation_energy",
        description="Energy per token across memory configurations",
        tables=[table],
        data=data,
    )
