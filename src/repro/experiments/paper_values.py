"""The paper's published values, as a machine-checkable registry.

EXPERIMENTS.md narrates the reproduction; this module *computes* it.
Every quantitative claim in the evaluation section is recorded with
its published value and a tolerance band, and :func:`scorecard` runs
the corresponding experiments and grades each claim:

* ``MATCH``     — measured value inside the band;
* ``CLOSE``     — inside twice the band (right shape, small drift);
* ``DIVERGENT`` — outside; every such claim carries a ``note``
  explaining why (all four known divergences are documented in
  EXPERIMENTS.md).

Regenerate the scorecard with::

    repro-experiments scorecard
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.errors import ExperimentError
from repro.experiments.registry import run_experiment


class Grade(enum.Enum):
    MATCH = "MATCH"
    CLOSE = "CLOSE"
    DIVERGENT = "DIVERGENT"


@dataclass(frozen=True)
class PaperClaim:
    """One published number and where our measurement of it lives."""

    claim_id: str
    description: str
    experiment: str
    #: Path into the experiment's ``data`` dict.
    key_path: Tuple[str, ...]
    paper_value: float
    #: Half-width of the acceptance band (absolute units of the value).
    tolerance: float
    note: str = ""

    def locate(self, data: Dict) -> float:
        value = data
        for key in self.key_path:
            try:
                value = value[key]
            except (KeyError, TypeError):
                raise ExperimentError(
                    f"claim {self.claim_id}: path {self.key_path} missing "
                    f"from experiment {self.experiment!r}"
                ) from None
        return float(value)

    def grade(self, measured: float) -> Grade:
        delta = abs(measured - self.paper_value)
        if delta <= self.tolerance:
            return Grade.MATCH
        if delta <= 2 * self.tolerance:
            return Grade.CLOSE
        return Grade.DIVERGENT


@dataclass(frozen=True)
class ClaimResult:
    claim: PaperClaim
    measured: float
    grade: Grade


_C = PaperClaim

#: Every quantitative claim of the evaluation section.
PAPER_CLAIMS: Tuple[PaperClaim, ...] = (
    # --- Figure 3 -------------------------------------------------------
    _C("fig3.nvdram_plateau", "NVDRAM h2g plateau (GB/s)",
       "fig3_bandwidth", ("checks", "nvdram_h2g_at_4g"), 19.91, 0.5),
    _C("fig3.nvdram_32g", "NVDRAM h2g at 32 GB (GB/s)",
       "fig3_bandwidth", ("checks", "nvdram_h2g_at_32g"), 15.52, 0.3),
    _C("fig3.h2g_drop_small", "NVDRAM h2g drop vs DRAM, small buffers",
       "fig3_bandwidth", ("checks", "nvdram_h2g_drop_small"), 0.20, 0.03),
    _C("fig3.h2g_drop_32g", "NVDRAM h2g drop at 32 GB",
       "fig3_bandwidth", ("checks", "nvdram_h2g_drop_32g"), 0.37, 0.04),
    _C("fig3.g2h_peak", "NVDRAM g2h peak (GB/s)",
       "fig3_bandwidth", ("checks", "nvdram_g2h_peak"), 3.26, 0.15),
    _C("fig3.g2h_drop", "NVDRAM g2h drop vs DRAM",
       "fig3_bandwidth", ("checks", "nvdram_g2h_drop"), 0.88, 0.02),
    # --- Figure 4 -------------------------------------------------------
    _C("fig4.30b_ttft_b1", "OPT-30B NVDRAM TTFT increase, b=1 (%)",
       "fig4_llm_perf", ("checks", "30b_nvdram_ttft_increase_b1"),
       33.03, 5.0),
    _C("fig4.30b_ttft_b32", "OPT-30B NVDRAM TTFT increase, b=32 (%)",
       "fig4_llm_perf", ("checks", "30b_nvdram_ttft_increase_b32"),
       15.05, 4.0),
    _C("fig4.30b_tbt_b1", "OPT-30B NVDRAM TBT increase, b=1 (%)",
       "fig4_llm_perf", ("checks", "30b_nvdram_tbt_increase_b1"),
       33.03, 5.0),
    _C("fig4.30b_tbt_b32", "OPT-30B NVDRAM TBT increase, b=32 (%)",
       "fig4_llm_perf", ("checks", "30b_nvdram_tbt_increase_b32"),
       30.55, 6.0),
    _C("fig4.30b_tput_drop", "OPT-30B NVDRAM throughput drop, b=32 (%)",
       "fig4_llm_perf", ("checks", "30b_nvdram_tput_drop_b32"),
       22.68, 5.0),
    _C("fig4.30b_ttft_scaling", "OPT-30B DRAM TTFT growth b1->32 (%)",
       "fig4_llm_perf", ("checks", "30b_dram_ttft_scaling"), 32.41, 6.0),
    _C("fig4.fsdax_vs_ssd", "FSDAX TTFT improvement over SSD (%)",
       "fig4_llm_perf", ("checks", "175b_fsdax_ttft_improvement_b1"),
       33.46, 4.0),
    _C("fig4.mm_vs_nvdram", "MM TTFT improvement over NVDRAM, 175B (%)",
       "fig4_llm_perf", ("checks", "175b_mm_ttft_improvement_b1"),
       7.67, 2.5),
    _C("fig4.mm_tput_b8", "MM throughput improvement, b=8 (%)",
       "fig4_llm_perf", ("checks", "175b_mm_tput_improvement_b8"),
       7.98, 3.0),
    # --- Figure 5 -------------------------------------------------------
    _C("fig5.dram_vs_nvdram", "All-DRAM transfer improvement vs NVDIMM (%)",
       "fig5_overlap",
       ("checks", "175b_dram_vs_nvdram_transfer_improvement"), 32.78, 3.0),
    _C("fig5.dram_vs_mm", "All-DRAM transfer improvement vs MM (%)",
       "fig5_overlap",
       ("checks", "175b_dram_vs_mm_transfer_improvement"), 22.41, 4.0,
       note="our MM miss model is slightly more pessimistic"),
    _C("fig5.prefill_scaling", "OPT-30B prefill compute growth b1->32 (x)",
       "fig5_overlap", ("checks", "30b_prefill_compute_scaling"),
       15.0, 4.0),
    # --- Figure 6 -------------------------------------------------------
    _C("fig6.nvdram_reduction", "Compression transfer reduction, NVDIMM (%)",
       "fig6_compression", ("checks", "nvdram_transfer_reduction"),
       72.0, 4.0),
    _C("fig6.mm_reduction", "Compression transfer reduction, MM (%)",
       "fig6_compression", ("checks", "mm_transfer_reduction"), 74.0, 4.0),
    _C("fig6.nvdram_gap", "Compressed NVDIMM gap to DRAM ideal (%)",
       "fig6_compression", ("checks", "nvdram_gap_to_dram"), 25.0, 8.0,
       note="our compressed working set decays the AIT slightly more"),
    _C("fig6.mm_gap", "Compressed MM gap to DRAM ideal (%)",
       "fig6_compression", ("checks", "mm_gap_to_dram"), 6.0, 4.0,
       note="the 81 GB compressed model fits our modelled MM cache, so "
            "the gap collapses to 0"),
    _C("fig6.inflation", "Compute inflation under compression (x, in "
       "the paper's 2.5-13 band)",
       "fig6_compression", ("checks", "nvdram_compute_inflation"),
       7.75, 5.25),
    # --- Figure 7 -------------------------------------------------------
    _C("fig7.achieved_cpu", "Achieved CPU share, (0,80,20) policy (%)",
       "fig7_placement", ("achieved_nvdram_mm", "cpu"), 91.7, 0.3),
    _C("fig7.achieved_gpu", "Achieved GPU share, (0,80,20) policy (%)",
       "fig7_placement", ("achieved_nvdram_mm", "gpu"), 8.3, 0.3),
    _C("fig7.achieved_disk", "Achieved disk share, (65,15,20) policy (%)",
       "fig7_placement", ("achieved_ssd_fsdax", "disk"), 58.6, 0.6),
    _C("fig7.mha_gpu", "Baseline MHA GPU share (fraction)",
       "fig7_placement", ("achieved_nvdram_mm", "mha_gpu_share"),
       0.25, 0.01),
    # --- Figure 11 ------------------------------------------------------
    _C("fig11.ffn_cut", "HeLM FFN transfer reduction (%)",
       "fig11_helm", ("checks", "ffn_transfer_reduction"), 49.33, 4.0),
    _C("fig11.mha_rise", "HeLM MHA transfer increase (%)",
       "fig11_helm", ("checks", "mha_transfer_increase"), 32.55, 5.0),
    _C("fig11.nvdram_ttft", "HeLM NVDRAM TTFT improvement (%)",
       "fig11_helm", ("checks", "nvdram_ttft_improvement"), 27.20, 5.0),
    _C("fig11.nvdram_tbt", "HeLM NVDRAM TBT improvement (%)",
       "fig11_helm", ("checks", "nvdram_tbt_improvement"), 27.44, 5.0),
    _C("fig11.mm_ttft", "HeLM MemoryMode TTFT improvement (%)",
       "fig11_helm", ("checks", "mm_ttft_improvement"), 31.90, 6.0),
    _C("fig11.gap_to_dram", "HeLM NVDRAM TBT gap to DRAM (%)",
       "fig11_helm", ("checks", "nvdram_tbt_gap_to_dram"), 8.91, 3.0,
       note="measured against HeLM-on-DRAM; our NVDRAM read rate under "
            "a compressed working set sits slightly lower (see "
            "EXPERIMENTS.md divergence 2)"),
    # --- Figure 12 ------------------------------------------------------
    _C("fig12.tput_gain", "All-CPU throughput gain vs baseline b8 (x)",
       "fig12_allcpu", ("checks", "nvdram_throughput_gain"), 5.0, 0.8),
    _C("fig12.max_batch", "All-CPU maximum batch",
       "fig12_allcpu", ("max_batch",), 44.0, 3.0),
    _C("fig12.b8_cost", "All-CPU TBT cost at b=8 (%)",
       "fig12_allcpu", ("checks", "allcpu_b8_tbt_cost"), 1.0, 2.0),
    _C("fig12.gap_to_dram", "All-CPU NVDRAM throughput gap to DRAM (%)",
       "fig12_allcpu", ("checks", "nvdram_gap_to_dram"), 6.0, 5.0,
       note="same bandwidth trade-off as fig11.gap_to_dram"),
    # --- Table IV -------------------------------------------------------
    _C("t4.base_decode_mha", "baseline b1 decode MHA-compute/FFN-load",
       "table4_ratios",
       ("baseline/b1/decode/NVDRAM", "mha_compute/ffn_load"), 0.36, 0.07),
    _C("t4.base_decode_ffn", "baseline b1 decode FFN-compute/MHA-load",
       "table4_ratios",
       ("baseline/b1/decode/NVDRAM", "ffn_compute/mha_load"), 1.85, 0.30),
    _C("t4.base_b8_prefill_mha", "baseline b8 prefill MHA ratio",
       "table4_ratios",
       ("baseline/b8/prefill/NVDRAM", "mha_compute/ffn_load"), 0.52, 0.10),
    _C("t4.base_b8_prefill_ffn", "baseline b8 prefill FFN ratio",
       "table4_ratios",
       ("baseline/b8/prefill/NVDRAM", "ffn_compute/mha_load"), 3.07, 0.50,
       note="the calibrated prefill GEMM rate slightly undercuts the "
            "b8 compute side"),
    _C("t4.helm_decode_mha", "HeLM b1 decode MHA-compute/FFN-load",
       "table4_ratios",
       ("helm/b1/decode/NVDRAM", "mha_compute/ffn_load"), 0.71, 0.12),
    _C("t4.helm_decode_ffn", "HeLM b1 decode FFN-compute/MHA-load",
       "table4_ratios",
       ("helm/b1/decode/NVDRAM", "ffn_compute/mha_load"), 1.40, 0.18),
    _C("t4.fpga_decode_mha", "baseline b1 decode, CXL-FPGA",
       "table4_ratios",
       ("baseline/b1/decode/CXL-FPGA", "mha_compute/ffn_load"), 0.10, 0.03),
    _C("t4.asic_decode_ffn", "baseline b1 decode FFN ratio, CXL-ASIC",
       "table4_ratios",
       ("baseline/b1/decode/CXL-ASIC", "ffn_compute/mha_load"), 2.88, 0.5),
    _C("t4.allcpu_decode_ffn", "All-CPU bmax decode FFN ratio",
       "table4_ratios",
       ("allcpu/bmax/decode/NVDRAM", "ffn_compute/mha_load"), 1.33, 0.15),
    _C("t4.allcpu_prefill_mha", "All-CPU bmax prefill MHA ratio",
       "table4_ratios",
       ("allcpu/bmax/prefill/NVDRAM", "mha_compute/ffn_load"), 1.25, 0.20),
    _C("t4.allcpu_prefill_ffn", "All-CPU bmax prefill FFN ratio",
       "table4_ratios",
       ("allcpu/bmax/prefill/NVDRAM", "ffn_compute/mha_load"), 4.82, 0.50),
    # --- Figure 13 ------------------------------------------------------
    _C("fig13.fpga_helm", "HeLM TBT improvement, CXL-FPGA (%)",
       "fig13_cxl", ("checks", "fpga_helm_tbt_improvement"), 27.0, 4.0),
    _C("fig13.asic_helm", "HeLM TBT improvement, CXL-ASIC (%)",
       "fig13_cxl", ("checks", "asic_helm_tbt_improvement"), 21.0, 5.0),
    _C("fig13.fpga_gain", "All-CPU gain, CXL-FPGA (x)",
       "fig13_cxl", ("checks", "fpga_allcpu_gain"), 4.74, 0.8),
    _C("fig13.asic_gain", "All-CPU gain, CXL-ASIC (x)",
       "fig13_cxl", ("checks", "asic_allcpu_gain"), 5.04, 0.8),
    _C("fig13.fpga_b8_drop", "All-CPU b8 throughput drop, CXL-FPGA (%)",
       "fig13_cxl", ("checks", "fpga_allcpu_b8_drop"), 8.35, 2.0),
)


def scorecard(
    claims: Sequence[PaperClaim] = PAPER_CLAIMS,
) -> List[ClaimResult]:
    """Evaluate every claim against freshly-run experiments."""
    cache: Dict[str, Dict] = {}
    results: List[ClaimResult] = []
    for claim in claims:
        if claim.experiment not in cache:
            cache[claim.experiment] = run_experiment(claim.experiment).data
        measured = claim.locate(cache[claim.experiment])
        results.append(
            ClaimResult(
                claim=claim, measured=measured, grade=claim.grade(measured)
            )
        )
    return results


def render_scorecard(results: Optional[List[ClaimResult]] = None) -> str:
    """The reproduction scorecard as an aligned text table."""
    if results is None:
        results = scorecard()
    table = Table(
        title="Reproduction scorecard (paper vs measured)",
        columns=("claim", "paper", "measured", "grade", "note"),
    )
    for result in results:
        table.add_row(
            result.claim.claim_id,
            result.claim.paper_value,
            round(result.measured, 3),
            result.grade.value,
            result.claim.note[:60],
        )
    counts = {grade: 0 for grade in Grade}
    for result in results:
        counts[result.grade] += 1
    footer = (
        f"\n{counts[Grade.MATCH]} MATCH / {counts[Grade.CLOSE]} CLOSE / "
        f"{counts[Grade.DIVERGENT]} DIVERGENT of {len(results)} claims"
    )
    return table.render() + footer
