"""Ablation: fleet routing — prefix affinity vs load- and order-based.

The serve stack behind :func:`repro.serve.simulate_serving` is one
engine; real deployments run several identical replicas behind a
router.  This ablation pins down two properties of the
:mod:`repro.fleet` refactor:

* **Inertness** — a fleet of one replica at shard degree 1 is the old
  stack, bit for bit: summary, request records, and telemetry
  snapshot all compare equal against ``simulate_serving``.
* **Routing matters under prefix locality** — a skewed multi-tenant
  MMPP stream whose tenants share long prompt prefixes (2048-token
  prompts, 1792 of them a shared template) is served by four replicas
  with small per-replica prefix caches.  Round-robin spreads every
  tenant across all replicas, so the caches thrash and every prefill
  pays the full prompt; prefix affinity pins tenants to replicas,
  keeps the caches hot, and prefills mostly suffixes — which shows up
  directly in the p99 time-to-first-token.

The workload is intentionally in the regime where prompt length moves
the iteration price: at batch 16 a 2048-token prefill costs ~6x a
256-token one on the CXL-ASIC host, so cache hits buy real time (out
of core at batch 1 everything is weight-transfer-bound and routing
would be invisible).

A tensor-parallel arm (full mode only) runs the same stream through
``tp=2`` sharded replicas to exercise the sharded pricing path end to
end inside a fleet.

Set ``REPRO_QUICK=1`` (or ``repro-experiments run --quick``) to skip
the sharded arm and the determinism replay.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.fleet import simulate_fleet
from repro.serve.simulator import simulate_serving
from repro.telemetry import Telemetry
from repro.workloads.lengths import LengthDistribution

MODEL = "opt-6.7b"
HOST = "CXL-ASIC"
PLACEMENT = "helm"
SEED = 42
REPLICAS = 4
MAX_BATCH = 16
NUM_REQUESTS = 80
PROMPT_LEN = 2048
PREFIX_LEN = 1792
GEN_LEN = 16
PREFIX_GROUPS = 8
PREFIX_SKEW = 1.2
PREFIX_CACHE = 2
RATE_RPS = 0.8
BURST_RATE_RPS = 4.0

ROUTERS = ("round-robin", "least-loaded", "prefix-affinity")


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _fleet(router: str, **overrides):
    kwargs = dict(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        arrival="bursty",
        rate_rps=RATE_RPS,
        burst_rate_rps=BURST_RATE_RPS,
        num_requests=NUM_REQUESTS,
        prompt_lengths=LengthDistribution.fixed(PROMPT_LEN),
        gen_lengths=LengthDistribution.fixed(GEN_LEN),
        seed=SEED,
        max_batch=MAX_BATCH,
        replicas=REPLICAS,
        router=router,
        prefix_groups=PREFIX_GROUPS,
        prefix_len=PREFIX_LEN,
        prefix_skew=PREFIX_SKEW,
        prefix_cache_size=PREFIX_CACHE,
    )
    kwargs.update(overrides)
    return simulate_fleet(**kwargs)


def _flat(result) -> Dict[str, object]:
    summary = result.summary()
    hits = misses = 0
    for replica in result.replicas:
        cache = replica.result.setup.get("prefix_cache")
        if cache:
            hits += cache["hits"]
            misses += cache["misses"]
    total = hits + misses
    return {
        "router": summary["router"],
        "completed": summary["completed"],
        "shed": summary["shed_requests"],
        "routed": summary["per_replica_routed"],
        "hit_rate": hits / total if total else 0.0,
        "ttft_p50_s": summary["ttft_p50_s"],
        "ttft_p99_s": summary["ttft_p99_s"],
        "e2e_p99_s": summary["e2e_p99_s"],
        "goodput_rps": summary["goodput_rps"],
    }


def _identity_check() -> bool:
    """A 1-replica, degree-1 fleet is ``simulate_serving``, bit for bit."""
    kwargs = dict(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        arrival="poisson",
        rate_rps=0.5,
        num_requests=20,
        seed=3,
        max_batch=8,
    )
    solo_telemetry = Telemetry.create()
    fleet_telemetry = Telemetry.create()
    solo = simulate_serving(telemetry=solo_telemetry, **kwargs)
    fleet = simulate_fleet(
        telemetry=fleet_telemetry, replicas=1, **kwargs
    )
    replica = fleet.replicas[0].result
    return (
        solo.summary() == replica.summary()
        and solo.records == replica.records
        and solo.shed == replica.shed
        and solo_telemetry.registry.snapshot()
        == fleet_telemetry.registry.snapshot()
    )


def run() -> ExperimentResult:
    quick = _quick()

    sweep = Table(
        title=(
            "Ablation: fleet routing under shared-prefix locality "
            f"(OPT-6.7B, {HOST}, {PLACEMENT}, {REPLICAS} replicas, "
            f"bursty MMPP, {PREFIX_GROUPS} skewed tenants, "
            f"{PREFIX_LEN}/{PROMPT_LEN} shared prefix)"
        ),
        columns=(
            "router", "completed", "hit_rate", "ttft_p50_s",
            "ttft_p99_s", "goodput_rps",
        ),
    )
    data: Dict[str, object] = {}

    arms: Dict[str, Dict[str, object]] = {}
    for router in ROUTERS:
        flat = _flat(_fleet(router))
        arms[router] = flat
        data[router] = flat
        sweep.add_row(
            router,
            flat["completed"],
            round(flat["hit_rate"], 3),
            round(flat["ttft_p50_s"], 3),
            round(flat["ttft_p99_s"], 3),
            round(flat["goodput_rps"], 4),
        )

    deterministic = True
    if not quick:
        replay = _flat(_fleet("prefix-affinity"))
        deterministic = replay == arms["prefix-affinity"]

    sharded_ok = True
    if not quick:
        sharded = _fleet(
            "round-robin",
            replicas=2,
            tensor_parallel=2,
            num_requests=24,
        )
        flat = _flat(sharded)
        data["tp2"] = flat
        sharded_ok = (
            flat["completed"] + flat["shed"] == 24
            and sharded.setup["tensor_parallel"] == 2
        )

    round_robin = arms["round-robin"]
    affinity = arms["prefix-affinity"]
    data["checks"] = {
        "single_replica_bit_identical": _identity_check(),
        # Every arm serves the whole stream (conservation).
        "requests_conserved": all(
            flat["completed"] + flat["shed"] == NUM_REQUESTS
            and sum(flat["routed"]) == NUM_REQUESTS
            for flat in arms.values()
        ),
        # Affinity keeps the caches hot where round-robin thrashes...
        "affinity_keeps_caches_hot": (
            affinity["hit_rate"] > round_robin["hit_rate"] + 0.2
        ),
        # ...and that locality shows up in the headline tail metric.
        "affinity_beats_round_robin_p99_ttft": (
            affinity["ttft_p99_s"] < round_robin["ttft_p99_s"]
        ),
        "deterministic_replay": deterministic,
        "sharded_fleet_serves": sharded_ok,
    }
    return ExperimentResult(
        name="ablation_fleet",
        description=(
            "Fleet serving: prefix-affinity routing vs round-robin and "
            "least-loaded under multi-tenant shared-prefix locality"
        ),
        tables=[sweep],
        data=data,
    )
