"""Ablation: FlexGen's zig-zag block (``num_gpu_batches``).

FlexGen's throughput trick beyond raw batch size: compute several
micro-batches back-to-back per layer so each weight transfer is
amortized over more tokens.  This sweep holds the *effective* batch
roughly constant while shifting work from "one wide batch" to "many
micro-batches", and also shows pure amortization at a fixed
micro-batch.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.policy import HOST_GPU_POLICY
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN


def _run(batch: int, gpu_batches: int):
    policy = HOST_GPU_POLICY.with_compression(True).with_gpu_batches(
        gpu_batches
    )
    engine = OffloadEngine(
        model="opt-175b", host="NVDRAM", placement="allcpu",
        policy=policy, batch_size=batch,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )
    return engine.run_timing()


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Ablation: zig-zag block size "
            "(OPT-175B, All-CPU, NVDRAM, compressed)"
        ),
        columns=(
            "gpu_batch", "num_gpu_batches", "effective_batch",
            "tbt_s", "tput_tok_s",
        ),
    )
    data: Dict[str, Dict] = {}
    for batch, blocks in (
        (8, 1), (4, 2), (2, 4), (1, 8),       # constant effective batch 8
        (8, 2), (8, 4),                        # amortization beyond it
    ):
        metrics = _run(batch, blocks)
        table.add_row(
            batch, blocks, batch * blocks,
            round(metrics.tbt_s, 4),
            round(metrics.throughput_tps, 4),
        )
        data[f"b{batch}x{blocks}"] = metrics.summary()

    data["checks"] = {
        # Same effective batch, same decode cost (decode is transfer
        # bound; blocking neither helps nor hurts much there).
        "constant_effective_batch_tbt_spread": (
            max(
                data[key]["tbt_s"]
                for key in ("b8x1", "b4x2", "b2x4", "b1x8")
            )
            / min(
                data[key]["tbt_s"]
                for key in ("b8x1", "b4x2", "b2x4", "b1x8")
            )
        ),
        # More blocks at the same micro-batch raise throughput.
        "blocking_raises_throughput": (
            data["b8x4"]["throughput_tps"] > data["b8x1"]["throughput_tps"]
        ),
    }
    return ExperimentResult(
        name="ablation_gpu_batches",
        description="Zig-zag block (micro-batch) sweep",
        tables=[table],
        data=data,
    )
