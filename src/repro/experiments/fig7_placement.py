"""Figure 7: per-layer load latency sawtooth and achieved distributions."""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.distribution import distribution_table
from repro.analysis.reporting import Table
from repro.core.placement.baseline import BaselinePlacement
from repro.devices.device import DeviceKind
from repro.core.policy import DISK_POLICY, HOST_GPU_POLICY
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.models.config import opt_config
from repro.models.weights import LayerKind

#: The paper plots layers 1..70 of 194.
SAWTOOTH_LAYERS = 70
FIG7_HOSTS = ("SSD", "FSDAX", "NVDRAM", "MemoryMode")


def run() -> ExperimentResult:
    tables: List[Table] = []
    data: Dict[str, object] = {}

    # (a) Per-layer weight load latency, compressed, all configs.
    sawtooth = Table(
        title="Fig 7a: per-layer weight load latency (ms), compressed",
        columns=("layer", "kind") + tuple(FIG7_HOSTS),
    )
    per_host: Dict[str, List[float]] = {}
    kinds: List[str] = []
    for host in FIG7_HOSTS:
        _, metrics = run_engine("opt-175b", host, batch_size=1, compress=True)
        loads = metrics.per_layer_transfer(token_index=0)
        per_host[host] = [load * 1e3 for _, _, load in loads]
        kinds = [kind.value for _, kind, _ in loads]
    for layer_index in range(1, SAWTOOTH_LAYERS + 1):
        sawtooth.add_row(
            layer_index,
            kinds[layer_index],
            *(round(per_host[host][layer_index], 3) for host in FIG7_HOSTS),
        )
    tables.append(sawtooth)
    data["sawtooth_ms"] = {
        host: per_host[host][1 : SAWTOOTH_LAYERS + 1] for host in FIG7_HOSTS
    }
    data["sawtooth_kinds"] = kinds[1 : SAWTOOTH_LAYERS + 1]

    # (b)/(c) Achieved weight distributions for the two policies.
    config = opt_config("opt-175b")
    algorithm = BaselinePlacement()
    for name, policy, title in (
        (
            "ssd_fsdax",
            DISK_POLICY,
            "Fig 7b: weight distribution, SSD/FSDAX policy (65, 15, 20)",
        ),
        (
            "nvdram_mm",
            HOST_GPU_POLICY,
            "Fig 7c: weight distribution, NVDRAM/MemoryMode policy (0, 80, 20)",
        ),
    ):
        placement = algorithm.place_model(config, policy)
        dist = Table(title=title, columns=("layer_kind", "gpu", "cpu", "disk"))
        for row in distribution_table(placement):
            dist.add_row(
                row["kind"],
                round(row["gpu"], 4),
                round(row["cpu"], 4),
                round(row["disk"], 4),
            )
        tables.append(dist)
        disk, cpu, gpu = placement.achieved_percentages()
        data[f"achieved_{name}"] = {
            "disk": disk,
            "cpu": cpu,
            "gpu": gpu,
            "ffn_gpu_share": placement.kind_distribution(LayerKind.FFN)[
                DeviceKind.GPU
            ],
            "mha_gpu_share": placement.kind_distribution(LayerKind.MHA)[
                DeviceKind.GPU
            ],
        }

    return ExperimentResult(
        name="fig7_placement",
        description="Per-layer load latency and achieved distributions (Fig. 7)",
        tables=tables,
        data=data,
    )
