"""``python -m repro.experiments`` entry point."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
