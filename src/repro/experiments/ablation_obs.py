"""Ablation: streaming burn-rate alerts vs post-hoc SLO analysis.

The SLO monitor (:mod:`repro.obs`) evaluates multi-window burn rates
at scheduler boundaries, so a latency regression raises an alert
*while the run degrades*.  The alternative — what the serve report
and ``build_metrics`` do — is post-hoc: percentiles over the finished
records, available only after the fact.  This ablation injects a
mid-run degradation and measures the detection gap in virtual time:

* A **healthy phase** of evenly spaced requests the engine keeps up
  with (TTFT ≈ prefill time, far under the objective threshold).
* A **degraded wave** arriving faster than the service rate from
  ``WAVE_START_S`` on: the queue builds, and TTFT climbs through the
  threshold request by request.

Three timestamps tell the story, all on the same virtual clock:

* ``onset_s`` — when the wave starts (ground truth);
* ``alert_s`` — when the burn-rate alert first fires (streaming);
* ``posthoc_s`` — the first completion time at which the *cumulative*
  TTFT p99 over all records so far exceeds the threshold, i.e. the
  earliest moment an after-the-fact percentile scan could have seen
  the violation.

Expected shape: ``onset_s < alert_s < posthoc_s`` — the windowed
detector reacts to the first bad completions while the cumulative
p99 still remembers the long healthy prefix.  The run is also
executed without any observer attached, and its records must be
bit-identical: observation never perturbs scheduling.

Set ``REPRO_QUICK=1`` (or ``repro-experiments run --quick``) to
shrink both phases.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import pricing_backend
from repro.obs import SloObjective, SloSpec, WindowConfig
from repro.serve.arrivals import TraceReplay
from repro.serve.request import RequestSpec
from repro.serve.simulator import simulate_serving

MODEL = "opt-175b"
HOST = "NVDRAM"
PLACEMENT = "helm"
SEED = 5

#: Objective: 99% of requests see first token within this bound.
TTFT_THRESHOLD_S = 120.0
TARGET = 0.99

#: Healthy phase: one request per period, service time well under it.
#: Kept above 100 samples so the report's interpolated p99 is anchored
#: strictly below the maximum — one outlier does not move it, which is
#: exactly why post-hoc percentiles lag streaming burn rates.
HEALTHY_REQUESTS = 120
HEALTHY_PERIOD_S = 150.0
#: Degraded wave: arrivals faster than the service rate.
WAVE_REQUESTS = 30
WAVE_PERIOD_S = 15.0

QUICK_WAVE = 10  #: --quick shrinks the wave (healthy phase stays).


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _specs() -> Tuple[RequestSpec, ...]:
    healthy = HEALTHY_REQUESTS
    wave = QUICK_WAVE if _quick() else WAVE_REQUESTS
    wave_start = healthy * HEALTHY_PERIOD_S
    specs: List[RequestSpec] = []
    for index in range(healthy):
        specs.append(
            RequestSpec(
                request_id=index,
                arrival_s=index * HEALTHY_PERIOD_S,
                prompt_len=128,
                gen_len=16,
            )
        )
    for index in range(wave):
        specs.append(
            RequestSpec(
                request_id=healthy + index,
                arrival_s=wave_start + index * WAVE_PERIOD_S,
                prompt_len=512,
                gen_len=16,
            )
        )
    return tuple(specs)


def _spec() -> SloSpec:
    return SloSpec(
        objectives=(
            SloObjective(
                name="ttft-fast",
                qos="*",
                metric="ttft",
                target=TARGET,
                threshold_s=TTFT_THRESHOLD_S,
            ),
        ),
        window=WindowConfig(width_s=60.0, windows=16),
    )


def _simulate(specs, slo=None):
    return simulate_serving(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        compress_weights=True,
        arrival=TraceReplay(specs=specs),
        num_requests=0,
        seed=SEED,
        pricing_backend=pricing_backend("analytic"),
        slo=slo,
    )


def _posthoc_detection_s(records) -> float:
    """First completion time where the cumulative TTFT p99 exceeds
    the threshold — the earliest a post-hoc percentile scan over
    everything finished so far would have shown the violation.

    Computed exactly as the serve report does
    (:class:`repro.serve.metrics.LatencyStats` uses
    ``numpy.percentile`` with linear interpolation).
    """
    import numpy as np

    samples: List[float] = []
    for record in sorted(records, key=lambda r: r.finished_s):
        samples.append(record.ttft_s)
        if float(np.percentile(samples, 99.0)) > TTFT_THRESHOLD_S:
            return record.finished_s
    return float("inf")


def run() -> ExperimentResult:
    specs = _specs()
    spec = _spec()
    onset_s = next(
        s.arrival_s for s in specs if s.prompt_len == 512
    )

    observed = _simulate(specs, slo=spec)
    plain = _simulate(specs, slo=None)

    report = observed.setup["slo"]
    alert_s = report["first_alert_s"]
    posthoc_s = _posthoc_detection_s(observed.records)
    objective = report["objectives"][0]

    table = Table(
        title=(
            "Ablation: streaming burn-rate alert vs post-hoc p99 "
            f"(OPT-175B, {HOST}, {PLACEMENT}; TTFT <= "
            f"{TTFT_THRESHOLD_S:.0f} s for {TARGET:.0%})"
        ),
        columns=("event", "virtual_time_s", "lead_vs_posthoc_s"),
    )
    table.add_row("degradation onset", round(onset_s, 1), "-")
    table.add_row(
        "burn-rate alert",
        round(alert_s, 1) if alert_s is not None else "never",
        round(posthoc_s - alert_s, 1) if alert_s is not None else "-",
    )
    table.add_row("post-hoc p99 crosses", round(posthoc_s, 1), 0.0)
    table.add_row(
        "run ends (report avail.)",
        round(observed.metrics.duration_s, 1),
        round(observed.metrics.duration_s - posthoc_s, 1),
    )

    data: Dict[str, object] = {
        "onset_s": onset_s,
        "alert_s": alert_s,
        "posthoc_s": posthoc_s,
        "run_s": observed.metrics.duration_s,
        "alert_lead_s": (
            posthoc_s - alert_s if alert_s is not None else None
        ),
        "objective": objective,
        "alerts": report["alerts"],
        "checks": {
            # The wave actually broke the objective...
            "objective_violated": not objective["met"],
            # ...the streaming detector saw it...
            "alert_fired": alert_s is not None,
            # ...after the onset (no false positive in the healthy
            # phase) and before the cumulative p99 shows it.
            "alert_after_onset": (
                alert_s is not None and alert_s >= onset_s
            ),
            "alert_leads_posthoc": (
                alert_s is not None and alert_s < posthoc_s
            ),
            # Observation never perturbs scheduling: the unobserved
            # run's records are bit-identical.
            "observer_inert": plain.records == observed.records
            and plain.metrics.summary() == observed.metrics.summary(),
        },
    }
    return ExperimentResult(
        name="ablation_obs",
        description=(
            "Streaming SLO burn-rate alert fires before the post-hoc "
            "p99 violation is visible"
        ),
        tables=[table],
        data=data,
    )
