"""Figure 3: host/GPU memory-copy bandwidth sweep."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.bench.nvbandwidth import BandwidthSample, bandwidth_sweep
from repro.experiments.base import ExperimentResult
from repro.units import GB, MIB


def _series_key(sample: BandwidthSample) -> str:
    return sample.region_name


def run() -> ExperimentResult:
    samples = bandwidth_sweep()
    tables = []
    data: Dict[str, object] = {"samples": []}
    for direction, title in (
        ("h2g", "Fig 3a: Host to GPU bandwidth (GB/s)"),
        ("g2h", "Fig 3b: GPU to host bandwidth (GB/s)"),
    ):
        subset = [s for s in samples if s.direction == direction]
        regions = sorted({_series_key(s) for s in subset})
        sizes = sorted({s.buffer_bytes for s in subset})
        table = Table(
            title=title,
            columns=("buffer_MiB",) + tuple(regions),
        )
        lookup = {
            (s.buffer_bytes, _series_key(s)): s.gb_per_s for s in subset
        }
        for size in sizes:
            table.add_row(
                int(size / MIB),
                *(round(lookup[(size, region)], 2) for region in regions),
            )
        tables.append(table)

    for sample in samples:
        data["samples"].append(
            {
                "config": sample.config_label,
                "region": sample.region_name,
                "node": sample.numa_node,
                "direction": sample.direction,
                "buffer_bytes": sample.buffer_bytes,
                "gb_per_s": sample.gb_per_s,
            }
        )

    # Headline checks from Section IV-A.
    def bw(region: str, direction: str, size: int) -> float:
        for sample in samples:
            if (
                sample.region_name == region
                and sample.direction == direction
                and sample.buffer_bytes == size
            ):
                return sample.gb_per_s
        raise KeyError((region, direction, size))

    four_gb = 4096 * MIB
    thirty_two_gb = 32768 * MIB
    one_gb = 1024 * MIB
    data["checks"] = {
        "nvdram_h2g_at_4g": bw("NVDRAM-0", "h2g", four_gb),
        "nvdram_h2g_at_32g": bw("NVDRAM-0", "h2g", thirty_two_gb),
        "dram_h2g_at_4g": bw("DRAM-0", "h2g", four_gb),
        "nvdram_g2h_peak": max(
            s.gb_per_s
            for s in samples
            if s.region_name == "NVDRAM-1" and s.direction == "g2h"
        ),
        "dram_g2h_at_1g": bw("DRAM-0", "g2h", one_gb),
        "nvdram_h2g_drop_small": 1
        - bw("NVDRAM-0", "h2g", four_gb) / bw("DRAM-0", "h2g", four_gb),
        "nvdram_h2g_drop_32g": 1
        - bw("NVDRAM-0", "h2g", thirty_two_gb)
        / bw("DRAM-0", "h2g", thirty_two_gb),
        "nvdram_g2h_drop": 1
        - bw("NVDRAM-1", "g2h", one_gb) / bw("DRAM-0", "g2h", one_gb),
    }
    return ExperimentResult(
        name="fig3_bandwidth",
        description="Host/GPU memory copy bandwidth (Fig. 3)",
        tables=tables,
        data=data,
    )
