"""Figure 8: MHA/FFN compute vs the *other* kind's weight transfer.

Fig. 8 shows why FlexGen's placement is imbalanced: MHA's (shorter)
compute overlaps the transfer of the (larger, GPU-less) FFN weights,
and vice versa, during OPT-175B prefill with compression.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.models.weights import LayerKind


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Fig 8: overlap of MHA/FFN compute with FFN/MHA transfer, "
            "OPT-175B prefill, compressed, NVDRAM"
        ),
        columns=(
            "batch", "mha_compute_ms", "ffn_load_ms",
            "ffn_compute_ms", "mha_load_ms",
        ),
    )
    data: Dict[str, Dict] = {}
    for batch in (1, 8):
        _, metrics = run_engine(
            "opt-175b", "NVDRAM", batch_size=batch, compress=True
        )
        row = {
            "mha_compute_ms": metrics.avg_compute_s(
                stage=Stage.PREFILL, kind=LayerKind.MHA
            )
            * 1e3,
            "ffn_load_ms": metrics.avg_transfer_s(
                stage=Stage.PREFILL, kind=LayerKind.FFN
            )
            * 1e3,
            "ffn_compute_ms": metrics.avg_compute_s(
                stage=Stage.PREFILL, kind=LayerKind.FFN
            )
            * 1e3,
            "mha_load_ms": metrics.avg_transfer_s(
                stage=Stage.PREFILL, kind=LayerKind.MHA
            )
            * 1e3,
        }
        table.add_row(
            batch,
            *(round(row[key], 3) for key in (
                "mha_compute_ms", "ffn_load_ms",
                "ffn_compute_ms", "mha_load_ms",
            )),
        )
        data[f"b{batch}"] = row
    data["checks"] = {
        # The asymmetry the paper calls out: MHA compute is shorter
        # than FFN compute, yet overlapped with the larger transfer.
        "b1_ffn_load_exceeds_mha_load": (
            data["b1"]["ffn_load_ms"] / data["b1"]["mha_load_ms"]
        ),
        "b1_mha_compute_below_ffn_compute": (
            data["b1"]["mha_compute_ms"] / data["b1"]["ffn_compute_ms"]
        ),
    }
    return ExperimentResult(
        name="fig8_mha_ffn",
        description="MHA/FFN compute vs opposite-kind transfer (Fig. 8)",
        tables=[table],
        data=data,
    )
