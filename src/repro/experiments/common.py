"""Shared helpers for experiment modules."""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.core.engine import OffloadEngine
from repro.core.metrics import GenerationMetrics
from repro.core.policy import Policy

#: The paper's workload shape (Section III-B).
PROMPT_LEN = 128
GEN_LEN = 21

_CACHE: Dict[Tuple, Tuple[OffloadEngine, GenerationMetrics]] = {}


def pricing_backend(default: str = "event") -> str:
    """The pricing backend for this experiment run.

    ``repro-experiments run --pricing-backend X`` exports
    ``REPRO_PRICING_BACKEND`` so every experiment in the sweep prices
    through the same backend; paper figures default to the
    authoritative event backend, serving sweeps to analytic.
    """
    return os.environ.get("REPRO_PRICING_BACKEND", default)


def run_engine(
    model: str,
    host: str,
    placement: str = "baseline",
    batch_size: int = 1,
    compress: bool = False,
    policy: Optional[Policy] = None,
) -> Tuple[OffloadEngine, GenerationMetrics]:
    """Build and run one timing configuration, memoized per process."""
    key = (model, host, placement, batch_size, compress, policy)
    if key not in _CACHE:
        engine = OffloadEngine(
            model=model,
            host=host,
            placement=placement,
            policy=policy,
            compress_weights=compress,
            batch_size=batch_size,
            prompt_len=PROMPT_LEN,
            gen_len=GEN_LEN,
            pricing_backend=pricing_backend("event"),
        )
        _CACHE[key] = (engine, engine.run_timing())
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()
