"""Figure 12: All-CPU placement — latency, throughput, overlap."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN, run_engine
from repro.models.weights import LayerKind

FIG12_HOSTS = ("NVDRAM", "MemoryMode", "DRAM")


def max_allcpu_batch(host: str = "NVDRAM") -> int:
    """The All-CPU maximum batch (the paper's 44) on this platform."""
    engine = OffloadEngine(
        model="opt-175b",
        host=host,
        placement="allcpu",
        compress_weights=True,
        batch_size=1,
        prompt_len=PROMPT_LEN,
        gen_len=GEN_LEN,
    )
    return engine.max_batch_size()


def run() -> ExperimentResult:
    big_batch = max_allcpu_batch()
    perf = Table(
        title="Fig 12a-c: TTFT/TBT/throughput, OPT-175B compressed",
        columns=(
            "config", "placement", "batch", "ttft_s", "tbt_s", "tput_tok_s",
        ),
    )
    data: Dict[str, object] = {"max_batch": big_batch}
    for host in FIG12_HOSTS:
        for placement, batches in (
            ("baseline", (1, 8)),
            ("allcpu", (1, 8, big_batch)),
        ):
            for batch in batches:
                _, metrics = run_engine(
                    "opt-175b", host, placement, batch_size=batch,
                    compress=True,
                )
                perf.add_row(
                    host, placement, batch,
                    round(metrics.ttft_s, 4),
                    round(metrics.tbt_s, 4),
                    round(metrics.throughput_tps, 4),
                )
                data[f"{host}/{placement}/b{batch}"] = metrics.summary()

    overlap = Table(
        title=(
            "Fig 12d-e: overlap, baseline b8 vs All-CPU "
            f"b{big_batch} (NVDRAM compressed)"
        ),
        columns=(
            "placement", "batch", "stage",
            "mha_load_ms", "ffn_load_ms", "mha_compute_ms", "ffn_compute_ms",
        ),
    )
    for placement, batch in (("baseline", 8), ("allcpu", big_batch)):
        _, metrics = run_engine(
            "opt-175b", "NVDRAM", placement, batch_size=batch, compress=True
        )
        for stage in (Stage.PREFILL, Stage.DECODE):
            overlap.add_row(
                placement, batch, stage.value,
                round(metrics.avg_transfer_s(stage, LayerKind.MHA) * 1e3, 3),
                round(metrics.avg_transfer_s(stage, LayerKind.FFN) * 1e3, 3),
                round(metrics.avg_compute_s(stage, LayerKind.MHA) * 1e3, 3),
                round(metrics.avg_compute_s(stage, LayerKind.FFN) * 1e3, 3),
            )

    def tput(host: str, placement: str, batch: int) -> float:
        return data[f"{host}/{placement}/b{batch}"]["throughput_tps"]

    data["checks"] = {
        # Section V-C: ~5x throughput from baseline b8 to All-CPU bmax.
        "nvdram_throughput_gain": tput("NVDRAM", "allcpu", big_batch)
        / tput("NVDRAM", "baseline", 8),
        # All-CPU NVDRAM within ~6% of All-CPU DRAM at bmax.
        "nvdram_gap_to_dram": (
            1
            - tput("NVDRAM", "allcpu", big_batch)
            / tput("DRAM", "allcpu", big_batch)
        )
        * 100.0,
        # All-CPU vs baseline at batch 8: ~1% latency cost, ~5% gain.
        "allcpu_b8_tbt_cost": (
            data["NVDRAM/allcpu/b8"]["tbt_s"]
            / data["NVDRAM/baseline/b8"]["tbt_s"]
            - 1
        )
        * 100.0,
        # MemoryMode at bmax performs roughly at par with DRAM.
        "mm_vs_dram_at_bmax": (
            tput("MemoryMode", "allcpu", big_batch)
            / tput("DRAM", "allcpu", big_batch)
        ),
    }
    return ExperimentResult(
        name="fig12_allcpu",
        description="All-CPU placement impact (Fig. 12)",
        tables=[perf, overlap],
        data=data,
    )
