"""Figure 11: HeLM's impact on overlap and latency."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.models.weights import LayerKind

FIG11_HOSTS = ("NVDRAM", "MemoryMode", "DRAM")


def run() -> ExperimentResult:
    overlap = Table(
        title=(
            "Fig 11a: decode overlap, OPT-175B batch 1 compressed "
            "(baseline vs HeLM, NVDRAM)"
        ),
        columns=(
            "placement", "mha_load_ms", "ffn_load_ms",
            "mha_compute_ms", "ffn_compute_ms",
        ),
    )
    latency = Table(
        title="Fig 11b: TTFT and TBT, OPT-175B batch 1 compressed",
        columns=("config", "placement", "ttft_s", "tbt_s"),
    )
    data: Dict[str, Dict] = {}
    for placement in ("baseline", "helm"):
        _, metrics = run_engine(
            "opt-175b", "NVDRAM", placement, batch_size=1, compress=True
        )
        overlap.add_row(
            placement,
            round(
                metrics.avg_transfer_s(Stage.DECODE, LayerKind.MHA) * 1e3, 3
            ),
            round(
                metrics.avg_transfer_s(Stage.DECODE, LayerKind.FFN) * 1e3, 3
            ),
            round(
                metrics.avg_compute_s(Stage.DECODE, LayerKind.MHA) * 1e3, 3
            ),
            round(
                metrics.avg_compute_s(Stage.DECODE, LayerKind.FFN) * 1e3, 3
            ),
        )
    for host in FIG11_HOSTS:
        for placement in ("baseline", "helm"):
            _, metrics = run_engine(
                "opt-175b", host, placement, batch_size=1, compress=True
            )
            latency.add_row(
                host,
                placement,
                round(metrics.ttft_s, 4),
                round(metrics.tbt_s, 4),
            )
            data[f"{host}/{placement}"] = metrics.summary()

    def improvement(host: str, metric: str) -> float:
        base = data[f"{host}/baseline"][metric]
        helm = data[f"{host}/helm"][metric]
        return (base - helm) / base * 100.0

    def gap_to_dram(host: str, metric: str) -> float:
        helm = data[f"{host}/helm"][metric]
        dram = data["DRAM/helm"][metric]
        return (helm - dram) / dram * 100.0

    # HeLM's per-kind transfer deltas (Section V-B: -49.33% FFN,
    # +32.55% MHA).
    _, base_m = run_engine(
        "opt-175b", "NVDRAM", "baseline", batch_size=1, compress=True
    )
    _, helm_m = run_engine(
        "opt-175b", "NVDRAM", "helm", batch_size=1, compress=True
    )
    ffn_base = base_m.avg_transfer_s(Stage.DECODE, LayerKind.FFN)
    ffn_helm = helm_m.avg_transfer_s(Stage.DECODE, LayerKind.FFN)
    mha_base = base_m.avg_transfer_s(Stage.DECODE, LayerKind.MHA)
    mha_helm = helm_m.avg_transfer_s(Stage.DECODE, LayerKind.MHA)

    data["checks"] = {
        "nvdram_ttft_improvement": improvement("NVDRAM", "ttft_s"),
        "nvdram_tbt_improvement": improvement("NVDRAM", "tbt_s"),
        "mm_ttft_improvement": improvement("MemoryMode", "ttft_s"),
        "mm_tbt_improvement": improvement("MemoryMode", "tbt_s"),
        "nvdram_ttft_gap_to_dram": gap_to_dram("NVDRAM", "ttft_s"),
        "nvdram_tbt_gap_to_dram": gap_to_dram("NVDRAM", "tbt_s"),
        "mm_ttft_gap_to_dram": gap_to_dram("MemoryMode", "ttft_s"),
        "ffn_transfer_reduction": (1 - ffn_helm / ffn_base) * 100.0,
        "mha_transfer_increase": (mha_helm / mha_base - 1) * 100.0,
    }
    return ExperimentResult(
        name="fig11_helm",
        description="HeLM overlap and latency impact (Fig. 11)",
        tables=[overlap, latency],
        data=data,
    )
