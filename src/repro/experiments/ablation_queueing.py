"""Ablation: open-loop latency under load per placement scheme.

Restates the paper's latency/throughput trade-off the way a serving
operator sees it: at a given Poisson arrival rate, which placement
keeps tail latency down?  HeLM at batch 1 gives the lowest unloaded
latency but saturates early (capacity ≈ 1/total_time requests/s);
All-CPU at the maximum batch rides out ~30x higher arrival rates at a
bounded P95.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.queueing import engine_queueing
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN
from repro.experiments.fig12_allcpu import max_allcpu_batch

ARRIVAL_RATES = (0.005, 0.02, 0.1, 0.3)


def _engine(placement: str, batch: int) -> OffloadEngine:
    return OffloadEngine(
        model="opt-175b", host="NVDRAM", placement=placement,
        compress_weights=True, batch_size=batch,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )


def run() -> ExperimentResult:
    bmax = max_allcpu_batch()
    configs = (
        ("helm", 1),
        ("baseline", 8),
        ("allcpu", bmax),
    )
    table = Table(
        title=(
            "Ablation: open-loop latency under Poisson load "
            "(OPT-175B, NVDRAM, compressed)"
        ),
        columns=(
            "placement", "batch", "arrival_rps",
            "p50_s", "p95_s", "p99_s", "utilization", "saturated",
        ),
    )
    data: Dict[str, Dict] = {"max_batch": bmax}
    for placement, batch in configs:
        engine = _engine(placement, batch)
        for rate in ARRIVAL_RATES:
            result = engine_queueing(
                engine, arrival_rate_rps=rate, num_requests=1200
            )
            table.add_row(
                placement, batch, rate,
                round(result.p50_latency_s, 2),
                round(result.p95_latency_s, 2),
                round(result.p99_latency_s, 2),
                round(result.utilization, 3),
                result.saturated,
            )
            data[f"{placement}/b{batch}/r{rate}"] = result.summary()

    data["checks"] = {
        # At a trickle, HeLM's small batch is the latency winner.
        "helm_wins_at_low_load": (
            data[f"helm/b1/r{ARRIVAL_RATES[0]}"]["p50_latency_s"]
            < data[f"allcpu/b{bmax}/r{ARRIVAL_RATES[0]}"]["p50_latency_s"]
        ),
        # At high load, only the big batch survives.
        "only_allcpu_survives_high_load": (
            data[f"allcpu/b{bmax}/r{ARRIVAL_RATES[-1]}"]["saturated"]
            is False
            and data[f"helm/b1/r{ARRIVAL_RATES[-1]}"]["saturated"] is True
        ),
    }
    return ExperimentResult(
        name="ablation_queueing",
        description="Open-loop latency under load per placement",
        tables=[table],
        data=data,
    )
