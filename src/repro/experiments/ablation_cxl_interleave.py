"""Ablation: interleaving multiple CXL expanders.

The paper projects single-device CXL configurations (Table III).  A
deployment can stripe pages across several expanders to aggregate
bandwidth; this ablation shows how many CXL-FPGA or CXL-ASIC devices
it takes for each placement scheme to reach the paper's Optane and
DRAM operating points.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN, run_engine
from repro.memory.cxl import CXL_ASIC, CXL_FPGA, CxlInterleavedTechnology
from repro.memory.hierarchy import HostMemoryConfig, HostRegion


def interleaved_host(spec, devices: int) -> HostMemoryConfig:
    technology = CxlInterleavedTechnology(spec, devices)
    region = HostRegion(name=technology.name, technology=technology, node=0)
    return HostMemoryConfig(
        label=f"{spec.name}x{devices}",
        description=f"{devices} interleaved {spec.name} expanders",
        regions={"host": region},
        host_region_name="host",
    )


def _tbt(spec, devices: int, placement: str) -> float:
    engine = OffloadEngine(
        model="opt-175b",
        host=interleaved_host(spec, devices),
        placement=placement,
        compress_weights=True,
        batch_size=1,
        prompt_len=PROMPT_LEN,
        gen_len=GEN_LEN,
    )
    return engine.run_timing().tbt_s


def run() -> ExperimentResult:
    table = Table(
        title="Ablation: interleaved CXL expanders (OPT-175B, compressed, b=1)",
        columns=("device", "count", "baseline_tbt_s", "helm_tbt_s"),
    )
    data: Dict[str, Dict] = {}
    for spec in (CXL_FPGA, CXL_ASIC):
        for devices in (1, 2, 4):
            base = _tbt(spec, devices, "baseline")
            helm = _tbt(spec, devices, "helm")
            table.add_row(spec.name, devices, round(base, 4), round(helm, 4))
            data[f"{spec.name}/x{devices}"] = {
                "baseline_tbt_s": base,
                "helm_tbt_s": helm,
            }

    _, nvdram = run_engine(
        "opt-175b", "NVDRAM", "baseline", batch_size=1, compress=True
    )
    data["nvdram_baseline_tbt_s"] = nvdram.tbt_s
    data["checks"] = {
        # Four FPGA expanders (~18.5 GB/s aggregate) reach the Optane
        # operating point.
        "fpga_x4_reaches_nvdram": (
            data["CXL-FPGA/x4"]["baseline_tbt_s"] <= nvdram.tbt_s * 1.15
        ),
        # Interleaving monotonically helps.
        "fpga_monotone": (
            data["CXL-FPGA/x1"]["baseline_tbt_s"]
            > data["CXL-FPGA/x2"]["baseline_tbt_s"]
            > data["CXL-FPGA/x4"]["baseline_tbt_s"]
        ),
        # Once the link is fast enough, PCIe caps further gains.
        "asic_saturates": (
            data["CXL-ASIC/x4"]["baseline_tbt_s"]
            > 0.9 * data["CXL-ASIC/x2"]["baseline_tbt_s"]
        ),
    }
    return ExperimentResult(
        name="ablation_cxl_interleave",
        description="Interleaved CXL expander scaling",
        tables=[table],
        data=data,
    )
