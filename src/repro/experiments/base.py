"""Common result container for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import Table


@dataclass
class ExperimentResult:
    """Rendered tables plus machine-readable data for one artifact."""

    name: str
    description: str
    tables: List[Table] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        header = f"### {self.name}: {self.description}"
        body = "\n\n".join(table.render() for table in self.tables)
        return f"{header}\n\n{body}" if body else header
