"""Ablation: the auto-balanced placement (the paper's future work).

Solves per-kind GPU shares from the platform model (host bandwidth,
overlapped compute times, GPU weight budget) and compares the result
against the hand-tuned HeLM and the FlexGen baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.batching import gpu_memory_plan
from repro.core.engine import OffloadEngine
from repro.core.metrics import Stage
from repro.core.placement.auto import AutoBalancedPlacement
from repro.devices.gpu import A100_SPEC
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN, run_engine
from repro.interconnect.path import TransferPathSolver
from repro.memory.hierarchy import host_config
from repro.models.config import opt_config
from repro.models.weights import LayerKind
from repro.units import GB


def solve_auto(host_label: str = "NVDRAM", batch_size: int = 1):
    """Instantiate the auto placement from measured platform inputs."""
    config = opt_config("opt-175b")
    # Measure what the solver would deliver for layer-sized chunks.
    host = host_config(host_label)
    host.set_host_working_set(int(90 * GB))  # compressed all-host scale
    solver = TransferPathSolver(config=host)
    host_bw = solver.host_to_gpu_bandwidth(0.3 * GB)
    # Compute times from a baseline run (any placement: compute is
    # placement-independent).
    _, metrics = run_engine(
        "opt-175b", host_label, "baseline", batch_size=batch_size,
        compress=True,
    )
    mha_compute = metrics.avg_compute_s(Stage.DECODE, LayerKind.MHA)
    ffn_compute = metrics.avg_compute_s(Stage.DECODE, LayerKind.FFN)
    # GPU budget: what remains after KV/staging/scratch at this batch.
    engine, _ = run_engine(
        "opt-175b", host_label, "allcpu", batch_size=batch_size,
        compress=True,
    )
    plan = gpu_memory_plan(
        engine.placement_result, engine.policy, batch_size,
        PROMPT_LEN, GEN_LEN, A100_SPEC,
    )
    ratio = engine.policy.compression.ratio
    budget_fp16 = int(
        (A100_SPEC.usable_bytes - plan.staging_bytes - plan.dequant_bytes
         - plan.kv_bytes - plan.hidden_bytes)
        / ratio
    )
    return AutoBalancedPlacement.solve(
        config,
        host_bandwidth=host_bw,
        mha_compute_s=mha_compute,
        ffn_compute_s=ffn_compute,
        onwire_ratio=ratio,
        gpu_weight_budget=budget_fp16,
    )


def run() -> ExperimentResult:
    auto = solve_auto()
    table = Table(
        title="Ablation: auto-balanced placement vs HeLM vs baseline "
              "(OPT-175B, NVDRAM, compressed, batch 1)",
        columns=("placement", "mha_gpu_pct", "ffn_gpu_pct", "ttft_s", "tbt_s"),
    )
    data: Dict[str, object] = {
        "solved_mha_gpu_percent": auto.mha_gpu_percent,
        "solved_ffn_gpu_percent": auto.ffn_gpu_percent,
    }
    for name, engine_args in (
        ("baseline", {"placement": "baseline"}),
        ("helm", {"placement": "helm"}),
        ("auto", {"placement": auto}),
    ):
        engine = OffloadEngine(
            model="opt-175b", host="NVDRAM", compress_weights=True,
            batch_size=1, prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
            **engine_args,
        )
        metrics = engine.run_timing()
        if name == "auto":
            mha_pct, ffn_pct = (
                round(auto.mha_gpu_percent, 1),
                round(auto.ffn_gpu_percent, 1),
            )
        elif name == "helm":
            mha_pct, ffn_pct = 10.0, 30.0
        else:
            mha_pct, ffn_pct = "-", "-"
        table.add_row(
            name, mha_pct, ffn_pct,
            round(metrics.ttft_s, 4), round(metrics.tbt_s, 4),
        )
        data[name] = metrics.summary()

    data["checks"] = {
        "auto_beats_baseline": data["auto"]["tbt_s"] < data["baseline"]["tbt_s"],
        "auto_within_5pct_of_helm": (
            data["auto"]["tbt_s"] <= data["helm"]["tbt_s"] * 1.05
        ),
    }
    return ExperimentResult(
        name="ablation_auto_placement",
        description="Auto-balanced placement (paper future work)",
        tables=[table],
        data=data,
    )
