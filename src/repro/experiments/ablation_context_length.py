"""Ablation: prompt-length sensitivity.

The paper fixes prompts at 128 tokens (Section III-B).  This sweep
varies the prompt length at a fixed batch, tracing when OPT-175B's
prefill finally turns compute-bound and how the KV cache squeezes the
maximum batch.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult

PROMPTS = (64, 128, 256, 512, 1024)


def _engine(prompt_len: int, batch: int = 8) -> OffloadEngine:
    return OffloadEngine(
        model="opt-175b", host="NVDRAM", placement="allcpu",
        compress_weights=True, batch_size=batch,
        prompt_len=prompt_len, gen_len=21,
    )


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Ablation: prompt length (OPT-175B, All-CPU, NVDRAM, "
            "compressed, b=min(8, max))"
        ),
        columns=(
            "prompt_len", "ttft_s", "tbt_s",
            "prefill_compute_ms", "prefill_transfer_ms", "max_batch",
        ),
    )
    data: Dict[str, Dict] = {}
    for prompt_len in PROMPTS:
        max_batch = _engine(prompt_len, batch=1).max_batch_size()
        engine = _engine(prompt_len, batch=min(8, max_batch))
        metrics = engine.run_timing()
        compute = metrics.avg_compute_s(Stage.PREFILL) * 1e3
        transfer = metrics.avg_transfer_s(Stage.PREFILL) * 1e3
        table.add_row(
            prompt_len,
            round(metrics.ttft_s, 4),
            round(metrics.tbt_s, 4),
            round(compute, 3),
            round(transfer, 3),
            max_batch,
        )
        data[f"p{prompt_len}"] = {
            "ttft_s": metrics.ttft_s,
            "tbt_s": metrics.tbt_s,
            "prefill_compute_ms": compute,
            "prefill_transfer_ms": transfer,
            "max_batch": max_batch,
        }

    data["checks"] = {
        # Long prompts flip prefill from memory- to compute-bound.
        "prefill_turns_compute_bound": (
            data["p1024"]["prefill_compute_ms"]
            > data["p1024"]["prefill_transfer_ms"]
        ),
        "short_prefill_memory_bound": (
            data["p64"]["prefill_compute_ms"]
            < data["p64"]["prefill_transfer_ms"]
        ),
        # The KV cache eats the batch budget linearly-ish.
        "max_batch_shrinks": (
            data["p1024"]["max_batch"] < data["p128"]["max_batch"] / 3
        ),
        # Decode cost is prompt-length insensitive at these scales.
        "tbt_flat": (
            data["p1024"]["tbt_s"] / data["p64"]["tbt_s"] < 1.15
        ),
    }
    return ExperimentResult(
        name="ablation_context_length",
        description="Prompt-length sensitivity",
        tables=[table],
        data=data,
    )
