"""Ablation: sweep the per-kind GPU shares HeLM hard-codes.

HeLM fixes (MHA 10%, FFN 30%) GPU shares.  This sweep varies the FFN
share (the load-bearing choice — it decides how much of the large FFN
transfer is removed) and, separately, the MHA share, showing that the
paper's hand-picked point sits at the flat bottom of the latency
curve for this platform.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.placement.auto import AutoBalancedPlacement
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN

FFN_SWEEP = (0, 10, 20, 30, 40, 50, 60)
MHA_SWEEP = (0, 5, 10, 20, 30)


def _tbt(mha_percent: float, ffn_percent: float) -> float:
    engine = OffloadEngine(
        model="opt-175b",
        host="NVDRAM",
        placement=AutoBalancedPlacement(
            mha_gpu_percent=mha_percent, ffn_gpu_percent=ffn_percent
        ),
        compress_weights=True,
        batch_size=1,
        prompt_len=PROMPT_LEN,
        gen_len=GEN_LEN,
    )
    return engine.run_timing().tbt_s


def run() -> ExperimentResult:
    ffn_table = Table(
        title="Ablation: TBT vs FFN GPU share (MHA fixed at 10%)",
        columns=("ffn_gpu_percent", "tbt_s"),
    )
    mha_table = Table(
        title="Ablation: TBT vs MHA GPU share (FFN fixed at 30%)",
        columns=("mha_gpu_percent", "tbt_s"),
    )
    data: Dict[str, Dict] = {"ffn_sweep": {}, "mha_sweep": {}}
    for ffn in FFN_SWEEP:
        tbt = _tbt(10, ffn)
        ffn_table.add_row(ffn, round(tbt, 4))
        data["ffn_sweep"][ffn] = tbt
    for mha in MHA_SWEEP:
        tbt = _tbt(mha, 30)
        mha_table.add_row(mha, round(tbt, 4))
        data["mha_sweep"][mha] = tbt

    best_ffn = min(data["ffn_sweep"], key=data["ffn_sweep"].get)
    data["checks"] = {
        "best_ffn_share": best_ffn,
        "helm_point_within_2pct_of_best": (
            data["ffn_sweep"][30]
            <= min(data["ffn_sweep"].values()) * 1.02
        ),
    }
    return ExperimentResult(
        name="ablation_helm_sweep",
        description="Sensitivity of HeLM's hand-picked GPU shares",
        tables=[ffn_table, mha_table],
        data=data,
    )
