"""Figure 6: compute/communication overlap with 4-bit compression."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine

FIG6_HOSTS = ("NVDRAM", "MemoryMode", "DRAM")


def run() -> ExperimentResult:
    table = Table(
        title="Fig 6: overlap with compression, OPT-175B",
        columns=(
            "config", "compressed", "stage",
            "avg_transfer_ms", "avg_compute_ms",
        ),
    )
    data: Dict[str, Dict] = {}
    for host in FIG6_HOSTS:
        for compress in (False, True):
            _, metrics = run_engine(
                "opt-175b", host, batch_size=1, compress=compress
            )
            suffix = "(c)" if compress else ""
            for stage in (Stage.PREFILL, Stage.DECODE):
                transfer = metrics.avg_transfer_s(stage=stage) * 1e3
                compute = metrics.avg_compute_s(stage=stage) * 1e3
                table.add_row(
                    f"{host}{suffix}", compress, stage.value,
                    round(transfer, 3), round(compute, 3),
                )
                data[f"{host}/{'c' if compress else 'fp16'}/{stage.value}"] = {
                    "avg_transfer_ms": transfer,
                    "avg_compute_ms": compute,
                }

    def transfer(host: str, compressed: str) -> float:
        return data[f"{host}/{compressed}/decode"]["avg_transfer_ms"]

    def compute(host: str, compressed: str) -> float:
        return data[f"{host}/{compressed}/decode"]["avg_compute_ms"]

    data["checks"] = {
        # Section IV-B: compression reduces weight transfer time by
        # 72% / 74% for NVDIMM / MemoryMode ...
        "nvdram_transfer_reduction": (
            1 - transfer("NVDRAM", "c") / transfer("NVDRAM", "fp16")
        )
        * 100.0,
        "mm_transfer_reduction": (
            1 - transfer("MemoryMode", "c") / transfer("MemoryMode", "fp16")
        )
        * 100.0,
        # ... bringing it within 25% / 6% of the DRAM ideal ...
        "nvdram_gap_to_dram": (
            transfer("NVDRAM", "c") / transfer("DRAM", "c") - 1
        )
        * 100.0,
        "mm_gap_to_dram": (
            transfer("MemoryMode", "c") / transfer("DRAM", "c") - 1
        )
        * 100.0,
        # ... while compute increases 2.5x-13x.
        "nvdram_compute_inflation": compute("NVDRAM", "c")
        / compute("NVDRAM", "fp16"),
        "mm_compute_inflation": compute("MemoryMode", "c")
        / compute("MemoryMode", "fp16"),
    }
    return ExperimentResult(
        name="fig6_compression",
        description="Compression trade-off (Fig. 6)",
        tables=[table],
        data=data,
    )
