"""Table IV: compute/communication overlap ratios across policies and
memory configurations (all with compression)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.overlap import overlap_ratios
from repro.analysis.projection import project_cxl
from repro.analysis.reporting import Table
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.experiments.fig12_allcpu import max_allcpu_batch

#: (policy, batch) rows of Table IV; All-CPU's batch is the platform's
#: maximum, resolved at run time.
TABLE4_ROWS: Tuple[Tuple[str, object], ...] = (
    ("baseline", 1),
    ("baseline", 8),
    ("helm", 1),
    ("helm", 8),
    ("allcpu", "max"),
)

CONFIGS = ("NVDRAM", "CXL-FPGA", "CXL-ASIC")


def run() -> ExperimentResult:
    big_batch = max_allcpu_batch()
    table = Table(
        title="Table IV: overlap ratios (compressed)",
        columns=(
            "policy", "batch", "stage",
            "mha_c/ffn_l NVDRAM", "mha_c/ffn_l CXL-FPGA", "mha_c/ffn_l CXL-ASIC",
            "ffn_c/mha_l NVDRAM", "ffn_c/mha_l CXL-FPGA", "ffn_c/mha_l CXL-ASIC",
        ),
    )
    data: Dict[str, Dict] = {}
    for placement, batch_spec in TABLE4_ROWS:
        batch = big_batch if batch_spec == "max" else int(batch_spec)
        ratios: Dict[str, Dict[Stage, object]] = {}
        for config_label in CONFIGS:
            if config_label == "NVDRAM":
                _, metrics = run_engine(
                    "opt-175b", "NVDRAM", placement,
                    batch_size=batch, compress=True,
                )
                ratios[config_label] = {
                    stage: overlap_ratios(metrics, stage)
                    for stage in (Stage.PREFILL, Stage.DECODE)
                }
            else:
                projection = project_cxl(
                    config_label, placement=placement, batch_size=batch
                )
                ratios[config_label] = {
                    Stage.PREFILL: projection.prefill_ratios,
                    Stage.DECODE: projection.decode_ratios,
                }
        for stage in (Stage.PREFILL, Stage.DECODE):
            table.add_row(
                placement,
                batch,
                stage.value,
                *(
                    round(ratios[c][stage].mha_compute_over_ffn_load, 2)
                    for c in CONFIGS
                ),
                *(
                    round(ratios[c][stage].ffn_compute_over_mha_load, 2)
                    for c in CONFIGS
                ),
            )
            for config_label in CONFIGS:
                key = f"{placement}/b{batch}/{stage.value}/{config_label}"
                data[key] = ratios[config_label][stage].as_dict()
                if batch_spec == "max":
                    # Stable alias independent of the resolved batch.
                    alias = f"{placement}/bmax/{stage.value}/{config_label}"
                    data[alias] = data[key]
    data["max_batch"] = big_batch
    return ExperimentResult(
        name="table4_ratios",
        description="Compute/communication overlap ratios (Table IV)",
        tables=[table],
        data=data,
    )
