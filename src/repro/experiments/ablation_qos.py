"""Ablation: the QoS planner (the paper's closing suggestion, made
concrete).

Section VII: "weight placement algorithms that can automatically make
latency/throughput tradeoffs based on desired quality of service
requirements".  This experiment feeds a spread of service-level
targets to :func:`repro.core.qos.plan_for_qos` and records which
placement/batch it selects — tight latency bounds select HeLM at small
batches, throughput floors select All-CPU at large batches, and the
planner refuses (best-effort) when a target is physically impossible
on the platform.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.qos import QosTarget, plan_for_qos
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN

TARGETS = (
    ("tbt <= 6s", QosTarget(max_tbt_s=6.0)),
    ("tbt <= 4.5s", QosTarget(max_tbt_s=4.5)),
    ("tbt <= 2s (impossible)", QosTarget(max_tbt_s=2.0)),
    ("tput >= 2 tok/s", QosTarget(min_throughput_tps=2.0)),
    ("tput >= 5 tok/s", QosTarget(min_throughput_tps=5.0)),
    (
        "tbt <= 6.5s AND tput >= 5",
        QosTarget(max_tbt_s=6.5, min_throughput_tps=5.0),
    ),
)


def run() -> ExperimentResult:
    table = Table(
        title="Ablation: QoS planning (OPT-175B, NVDRAM, compressed)",
        columns=(
            "target", "met", "placement", "batch", "tbt_s", "tput_tok_s",
        ),
    )
    data: Dict[str, Dict] = {}
    for label, target in TARGETS:
        plan = plan_for_qos(
            target,
            model="opt-175b",
            host="NVDRAM",
            compress_weights=True,
            prompt_len=PROMPT_LEN,
            gen_len=GEN_LEN,
        )
        chosen = plan.chosen
        table.add_row(
            label,
            plan.meets_target,
            chosen.placement,
            chosen.batch_size,
            round(chosen.metrics.tbt_s, 4),
            round(chosen.metrics.throughput_tps, 4),
        )
        data[label] = plan.summary()

    data["checks"] = {
        # A tight latency bound selects the latency-optimized scheme.
        "tight_latency_selects_helm": (
            data["tbt <= 4.5s"]["placement"] == "helm"
        ),
        # A throughput floor selects All-CPU at a large batch.
        "throughput_selects_allcpu": (
            data["tput >= 5 tok/s"]["placement"] == "allcpu"
            and data["tput >= 5 tok/s"]["batch_size"] >= 32
        ),
        # Impossible targets are reported, not silently mis-served.
        "impossible_target_flagged": (
            data["tbt <= 2s (impossible)"]["meets_target"] is False
        ),
        # Combined bounds still resolve (All-CPU's TBT stays flat, so
        # both can hold at once).
        "combined_target_met": (
            data["tbt <= 6.5s AND tput >= 5"]["meets_target"] is True
        ),
    }
    return ExperimentResult(
        name="ablation_qos",
        description="QoS-driven placement/batch planning (Section VII)",
        tables=[table],
        data=data,
    )
