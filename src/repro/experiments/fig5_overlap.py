"""Figure 5: compute/communication overlap during prefill and decode."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.metrics import Stage
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine

FIG5_MATRIX = (
    ("opt-30b", ("DRAM", "NVDRAM", "MemoryMode"), (1, 32)),
    ("opt-175b", ("SSD", "FSDAX", "NVDRAM", "MemoryMode"), (1, 8)),
)


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Fig 5: average per-layer weight transfer (bars) vs compute "
            "(line), by stage"
        ),
        columns=(
            "model", "config", "batch", "stage",
            "avg_transfer_ms", "avg_compute_ms",
        ),
    )
    data: Dict[str, Dict] = {}
    for model, hosts, batches in FIG5_MATRIX:
        for host in hosts:
            for batch in batches:
                _, metrics = run_engine(model, host, batch_size=batch)
                for stage in (Stage.PREFILL, Stage.DECODE):
                    transfer = metrics.avg_transfer_s(stage=stage) * 1e3
                    compute = metrics.avg_compute_s(stage=stage) * 1e3
                    table.add_row(
                        model, host, batch, stage.value,
                        round(transfer, 3), round(compute, 3),
                    )
                    data[f"{model}/{host}/b{batch}/{stage.value}"] = {
                        "avg_transfer_ms": transfer,
                        "avg_compute_ms": compute,
                    }
        # The paper's "ideal weight transfer time on an all-DRAM
        # system" line (dashed in Fig. 5b/5d).
        for batch in batches:
            _, dram_metrics = run_engine(model, "DRAM", batch_size=batch)
            for stage in (Stage.PREFILL, Stage.DECODE):
                data[f"{model}/DRAM-ideal/b{batch}/{stage.value}"] = {
                    "avg_transfer_ms": dram_metrics.avg_transfer_s(stage=stage)
                    * 1e3,
                }

    nv = data["opt-175b/NVDRAM/b1/decode"]["avg_transfer_ms"]
    mm = data["opt-175b/MemoryMode/b1/decode"]["avg_transfer_ms"]
    ideal = data["opt-175b/DRAM-ideal/b1/decode"]["avg_transfer_ms"]
    data["checks"] = {
        # Section IV-B: an all-DRAM system improves average weight
        # transfer by 32.78% / 22.41% over NVDIMM / MemoryMode.
        "175b_dram_vs_nvdram_transfer_improvement": (nv - ideal) / nv * 100.0,
        "175b_dram_vs_mm_transfer_improvement": (mm - ideal) / mm * 100.0,
        # OPT-30B prefill compute grows ~15x from batch 1 to 32.
        "30b_prefill_compute_scaling": (
            data["opt-30b/DRAM/b32/prefill"]["avg_compute_ms"]
            / data["opt-30b/DRAM/b1/prefill"]["avg_compute_ms"]
        ),
    }
    return ExperimentResult(
        name="fig5_overlap",
        description="Compute/communication overlap (Fig. 5)",
        tables=[table],
        data=data,
    )
