"""Table III: the projected CXL configurations."""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.memory.cxl import CXL_DEVICES


def run() -> ExperimentResult:
    table = Table(
        title="Table III: CXL configurations",
        columns=("name", "memory_technology", "bandwidth_GBps"),
    )
    data = {}
    for spec in CXL_DEVICES:
        table.add_row(
            spec.name, spec.memory_technology, round(spec.bandwidth / 1e9, 2)
        )
        data[spec.name] = {
            "memory_technology": spec.memory_technology,
            "bandwidth_gbps": spec.bandwidth / 1e9,
        }
    return ExperimentResult(
        name="table3_cxl",
        description="CXL configurations (Table III)",
        tables=[table],
        data=data,
    )
