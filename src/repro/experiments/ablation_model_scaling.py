"""Ablation: placement gains across OPT model sizes.

The paper evaluates OPT-30B and OPT-175B; this sweep runs the whole
family on the Optane host, showing where out-of-core execution
becomes mandatory and how HeLM's advantage scales with the FFN/MHA
transfer imbalance it exploits.  All models use the paper's OPT-175B
policy (0, 80, 20) so the placement effect is isolated — with
compression, the small family members would otherwise fit entirely on
the GPU (Section IV-B notes exactly this for OPT-30B).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN
from repro.models.config import opt_config
from repro.units import GIB

MODELS = ("opt-6.7b", "opt-13b", "opt-30b", "opt-66b", "opt-175b")


def _run(model: str, placement: str):
    from repro.core.policy import HOST_GPU_POLICY

    engine = OffloadEngine(
        model=model, host="NVDRAM", placement=placement,
        policy=HOST_GPU_POLICY, compress_weights=True, batch_size=1,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )
    return engine, engine.run_timing()


def run() -> ExperimentResult:
    table = Table(
        title="Ablation: model-size scaling (NVDRAM, compressed, b=1)",
        columns=(
            "model", "weights_GiB", "baseline_tbt_s", "helm_tbt_s",
            "helm_gain_pct",
        ),
    )
    data: Dict[str, Dict] = {}
    for model in MODELS:
        config = opt_config(model)
        _, base = _run(model, "baseline")
        _, helm = _run(model, "helm")
        gain = (base.tbt_s - helm.tbt_s) / base.tbt_s * 100.0
        table.add_row(
            model,
            round(config.weight_bytes / GIB, 1),
            round(base.tbt_s, 4),
            round(helm.tbt_s, 4),
            round(gain, 2),
        )
        data[model] = {
            "weights_gib": config.weight_bytes / GIB,
            "baseline_tbt_s": base.tbt_s,
            "helm_tbt_s": helm.tbt_s,
            "helm_gain_pct": gain,
        }

    data["checks"] = {
        # Latency grows with model size under a fixed host bandwidth.
        "tbt_monotone_in_size": all(
            data[a]["baseline_tbt_s"] < data[b]["baseline_tbt_s"]
            for a, b in zip(MODELS, MODELS[1:])
        ),
        # HeLM helps across the whole family.
        "helm_helps_everywhere": all(
            data[model]["helm_gain_pct"] > 10 for model in MODELS
        ),
    }
    return ExperimentResult(
        name="ablation_model_scaling",
        description="Placement gains across OPT model sizes",
        tables=[table],
        data=data,
    )
