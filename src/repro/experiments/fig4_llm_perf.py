"""Figure 4: TTFT / TBT / throughput across models and configurations."""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine

#: (model, host labels, batch sizes) per Fig. 4: batch 1 plus the
#: maximum permissible batch (32 for OPT-30B, 8 for OPT-175B).
FIG4_MATRIX = (
    ("opt-30b", ("DRAM", "NVDRAM", "MemoryMode"), (1, 32)),
    ("opt-175b", ("SSD", "FSDAX", "NVDRAM", "MemoryMode"), (1, 8)),
)


def run() -> ExperimentResult:
    table = Table(
        title="Fig 4: TTFT, TBT, and throughput",
        columns=(
            "model", "config", "batch", "ttft_s", "tbt_s", "tput_tok_s",
        ),
    )
    data: Dict[str, Dict] = {}
    for model, hosts, batches in FIG4_MATRIX:
        for host in hosts:
            for batch in batches:
                _, metrics = run_engine(model, host, batch_size=batch)
                table.add_row(
                    model,
                    host,
                    batch,
                    round(metrics.ttft_s, 4),
                    round(metrics.tbt_s, 4),
                    round(metrics.throughput_tps, 4),
                )
                data[f"{model}/{host}/b{batch}"] = metrics.summary()

    def delta(metric: str, model: str, a: str, b: str, batch: int) -> float:
        """Relative increase of config ``a`` over ``b`` in percent."""
        va = data[f"{model}/{a}/b{batch}"][metric]
        vb = data[f"{model}/{b}/b{batch}"][metric]
        return (va - vb) / vb * 100.0

    data["checks"] = {
        # Section IV-B headline deltas (paper values in comments of
        # EXPERIMENTS.md).
        "30b_nvdram_ttft_increase_b1": delta(
            "ttft_s", "opt-30b", "NVDRAM", "DRAM", 1
        ),
        "30b_nvdram_ttft_increase_b32": delta(
            "ttft_s", "opt-30b", "NVDRAM", "DRAM", 32
        ),
        "30b_nvdram_tbt_increase_b1": delta(
            "tbt_s", "opt-30b", "NVDRAM", "DRAM", 1
        ),
        "30b_nvdram_tbt_increase_b32": delta(
            "tbt_s", "opt-30b", "NVDRAM", "DRAM", 32
        ),
        "30b_nvdram_tput_drop_b32": -delta(
            "throughput_tps", "opt-30b", "NVDRAM", "DRAM", 32
        ),
        "175b_fsdax_ttft_improvement_b1": -delta(
            "ttft_s", "opt-175b", "FSDAX", "SSD", 1
        ),
        "175b_mm_ttft_improvement_b1": -delta(
            "ttft_s", "opt-175b", "MemoryMode", "NVDRAM", 1
        ),
        "175b_mm_tput_improvement_b8": delta(
            "throughput_tps", "opt-175b", "MemoryMode", "NVDRAM", 8
        ),
        "30b_dram_ttft_scaling": (
            data["opt-30b/DRAM/b32"]["ttft_s"]
            / data["opt-30b/DRAM/b1"]["ttft_s"]
            - 1.0
        )
        * 100.0,
    }
    return ExperimentResult(
        name="fig4_llm_perf",
        description="LLM performance across memory configurations (Fig. 4)",
        tables=[table],
        data=data,
    )
