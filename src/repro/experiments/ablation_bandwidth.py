"""Ablation: placement gains across a host-bandwidth continuum.

Fig. 13 projects onto two CXL points; this sweep generalizes it to a
range of flat host-memory bandwidths, exposing where HeLM's benefit
saturates (once transfers hide fully behind compute) and where
All-CPU's batch advantage overwhelms bandwidth (everywhere).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN
from repro.memory.hierarchy import HostMemoryConfig, HostRegion
from repro.memory.technology import BandwidthCurve, MemoryTechnology
from repro.units import GB, GIB

BANDWIDTH_SWEEP_GBPS = (2, 4, 8, 16, 24, 32)


def flat_host(gbps: float) -> HostMemoryConfig:
    """A synthetic host whose memory runs at a flat ``gbps`` GB/s."""
    technology = MemoryTechnology(
        name=f"flat-{gbps}GBps",
        capacity_bytes=1024 * GIB,
        read_curve=BandwidthCurve.flat(gbps * GB),
        write_curve=BandwidthCurve.flat(gbps * GB),
    )
    region = HostRegion(name=f"FLAT-{gbps}", technology=technology, node=0)
    return HostMemoryConfig(
        label=f"FLAT-{gbps}",
        description=f"synthetic flat {gbps} GB/s host memory",
        regions={"host": region},
        host_region_name="host",
    )


def _run(gbps: float, placement: str, batch: int):
    engine = OffloadEngine(
        model="opt-175b",
        host=flat_host(gbps),
        placement=placement,
        compress_weights=True,
        batch_size=batch,
        prompt_len=PROMPT_LEN,
        gen_len=GEN_LEN,
    )
    return engine.run_timing()


def run() -> ExperimentResult:
    table = Table(
        title="Ablation: TBT and throughput vs host bandwidth (OPT-175B, compressed)",
        columns=(
            "host_GBps", "baseline_tbt_s", "helm_tbt_s",
            "helm_improvement_pct", "allcpu_bmax", "allcpu_tput",
        ),
    )
    data: Dict[str, Dict] = {}
    for gbps in BANDWIDTH_SWEEP_GBPS:
        base = _run(gbps, "baseline", 1)
        helm = _run(gbps, "helm", 1)
        allcpu_engine = OffloadEngine(
            model="opt-175b", host=flat_host(gbps), placement="allcpu",
            compress_weights=True, batch_size=1,
            prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
        )
        bmax = allcpu_engine.max_batch_size()
        allcpu = _run(gbps, "allcpu", bmax)
        improvement = (base.tbt_s - helm.tbt_s) / base.tbt_s * 100.0
        table.add_row(
            gbps,
            round(base.tbt_s, 4),
            round(helm.tbt_s, 4),
            round(improvement, 2),
            bmax,
            round(allcpu.throughput_tps, 4),
        )
        data[f"{gbps}"] = {
            "baseline_tbt_s": base.tbt_s,
            "helm_tbt_s": helm.tbt_s,
            "helm_improvement_pct": improvement,
            "allcpu_bmax": bmax,
            "allcpu_tput": allcpu.throughput_tps,
        }
    data["checks"] = {
        # HeLM should help at every bandwidth point (Section V-D's
        # claim that the findings hold across the CXL spectrum).
        "helm_helps_everywhere": all(
            entry["helm_improvement_pct"] > 0
            for key, entry in data.items()
            if key != "checks"
        ),
    }
    return ExperimentResult(
        name="ablation_bandwidth",
        description="Placement gains across a host-bandwidth continuum",
        tables=[table],
        data=data,
    )
