"""Figure 10: HeLM's achieved weight distribution."""

from __future__ import annotations

from repro.analysis.distribution import distribution_table
from repro.analysis.reporting import Table
from repro.core.placement.helm import HelmPlacement
from repro.core.policy import HOST_GPU_POLICY
from repro.devices.device import DeviceKind
from repro.experiments.base import ExperimentResult
from repro.models.config import opt_config
from repro.models.weights import LayerKind


def run() -> ExperimentResult:
    config = opt_config("opt-175b")
    policy = HOST_GPU_POLICY.with_compression(True)
    placement = HelmPlacement().place_model(config, policy)

    table = Table(
        title="Fig 10: HeLM weight distribution, OPT-175B",
        columns=("layer_kind", "gpu", "cpu", "disk"),
    )
    for row in distribution_table(placement):
        table.add_row(
            row["kind"],
            round(row["gpu"], 4),
            round(row["cpu"], 4),
            round(row["disk"], 4),
        )

    mha = placement.kind_distribution(LayerKind.MHA)
    ffn = placement.kind_distribution(LayerKind.FFN)
    disk, cpu, gpu = placement.achieved_percentages()
    data = {
        "mha_gpu_share": mha[DeviceKind.GPU],
        "ffn_gpu_share": ffn[DeviceKind.GPU],
        "achieved": {"disk": disk, "cpu": cpu, "gpu": gpu},
        # Section V-B: the first FC matrix of every FFN layer sits on
        # the GPU while all four MHA projection matrices stream.
        "ffn_fc1_on_gpu": all(
            placement.tier_of(layer.index, "w_fc1") is DeviceKind.GPU
            for layer in placement.layers
            if layer.kind is LayerKind.FFN
        ),
        "mha_matrices_on_cpu": all(
            placement.tier_of(layer.index, name) is DeviceKind.CPU
            for layer in placement.layers
            if layer.kind is LayerKind.MHA
            for name in ("w_q", "w_k", "w_v", "w_out")
        ),
    }
    return ExperimentResult(
        name="fig10_helm_dist",
        description="HeLM weight distribution (Fig. 10)",
        tables=[table],
        data=data,
    )
