"""Experiment harness: one module per paper table/figure.

Run everything::

    python -m repro.experiments run all

or one artifact::

    python -m repro.experiments run fig11_helm
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["ExperimentResult", "EXPERIMENTS", "get_experiment", "run_experiment"]
