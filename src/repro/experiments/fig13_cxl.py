"""Figure 13: projected HeLM and All-CPU gains on CXL systems."""

from __future__ import annotations

from typing import Dict

from repro.analysis.projection import project_cxl
from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.experiments.fig12_allcpu import max_allcpu_batch

CXL_CONFIGS = ("CXL-FPGA", "CXL-ASIC")


def _metrics(config_label: str, placement: str, batch: int):
    if config_label == "NVDRAM":
        _, metrics = run_engine(
            "opt-175b", "NVDRAM", placement, batch_size=batch, compress=True
        )
        return metrics
    return project_cxl(
        config_label, placement=placement, batch_size=batch
    ).metrics


def run() -> ExperimentResult:
    big_batch = max_allcpu_batch()
    helm_table = Table(
        title="Fig 13a: projected HeLM TTFT/TBT (batch 1, compressed)",
        columns=(
            "config", "placement", "ttft_s", "tbt_s",
        ),
    )
    tput_table = Table(
        title="Fig 13b: projected All-CPU throughput (compressed)",
        columns=("config", "placement", "batch", "tput_tok_s"),
    )
    data: Dict[str, object] = {"max_batch": big_batch}

    for config_label in ("NVDRAM",) + CXL_CONFIGS:
        for placement in ("baseline", "helm"):
            metrics = _metrics(config_label, placement, 1)
            helm_table.add_row(
                config_label, placement,
                round(metrics.ttft_s, 4), round(metrics.tbt_s, 4),
            )
            data[f"latency/{config_label}/{placement}"] = metrics.summary()
        for placement, batch in (
            ("baseline", 8),
            ("allcpu", 8),
            ("allcpu", big_batch),
        ):
            metrics = _metrics(config_label, placement, batch)
            tput_table.add_row(
                config_label, placement, batch,
                round(metrics.throughput_tps, 4),
            )
            data[f"tput/{config_label}/{placement}/b{batch}"] = (
                metrics.throughput_tps
            )

    def helm_improvement(config_label: str, metric: str) -> float:
        base = data[f"latency/{config_label}/baseline"][metric]
        helm = data[f"latency/{config_label}/helm"][metric]
        return (base - helm) / base * 100.0

    def allcpu_gain(config_label: str) -> float:
        return (
            data[f"tput/{config_label}/allcpu/b{big_batch}"]
            / data[f"tput/{config_label}/baseline/b8"]
        )

    data["checks"] = {
        # Section V-D: HeLM improves TTFT/TBT by ~27% (CXL-FPGA) and
        # ~21% (CXL-ASIC).
        "fpga_helm_tbt_improvement": helm_improvement("CXL-FPGA", "tbt_s"),
        "asic_helm_tbt_improvement": helm_improvement("CXL-ASIC", "tbt_s"),
        # All-CPU at bmax vs baseline b8: 4.74x / 5.04x.
        "fpga_allcpu_gain": allcpu_gain("CXL-FPGA"),
        "asic_allcpu_gain": allcpu_gain("CXL-ASIC"),
        # CXL-FPGA loses throughput moving to All-CPU at batch 8.
        "fpga_allcpu_b8_drop": (
            1
            - data["tput/CXL-FPGA/allcpu/b8"]
            / data["tput/CXL-FPGA/baseline/b8"]
        )
        * 100.0,
    }
    return ExperimentResult(
        name="fig13_cxl",
        description="CXL performance projections (Fig. 13)",
        tables=[helm_table, tput_table],
        data=data,
    )
