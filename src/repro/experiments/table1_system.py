"""Table I: the evaluation platform's configuration."""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.devices.gpu import A100_SPEC, GpuComputeModel
from repro.experiments.base import ExperimentResult
from repro.interconnect.pcie import A100_PCIE
from repro.memory import calibration as cal


def run() -> ExperimentResult:
    table = Table(
        title="Table I: System configuration (simulated)",
        columns=("component", "parameter", "value"),
    )
    table.add_row("CPU", "model", "Dual-socket Intel Xeon Gold 6330 (Ice Lake)")
    table.add_row("CPU", "memory controllers/socket", 4)
    table.add_row(
        "CPU", "DRAM/socket", f"{cal.DRAM_CAPACITY_PER_SOCKET / 2**30:.0f} GiB DDR4-2933"
    )
    table.add_row(
        "CPU",
        "Optane/socket",
        f"{cal.OPTANE_CAPACITY_PER_SOCKET / 2**30:.0f} GiB (200 series)",
    )
    table.add_row(
        "CPU", "DRAM socket bandwidth", f"{cal.DRAM_SOCKET_BW / 1e9:.1f} GB/s"
    )
    table.add_row("GPU", "model", A100_SPEC.name)
    table.add_row("GPU", "HBM2", f"{A100_SPEC.hbm_bytes / 2**20:.0f} MiB")
    table.add_row(
        "GPU", "HBM bandwidth", f"{A100_SPEC.hbm_bandwidth / 1e9:.0f} GB/s"
    )
    table.add_row(
        "GPU",
        "PCIe",
        f"Gen {A100_PCIE.generation} x{A100_PCIE.lanes} "
        f"({A100_PCIE.theoretical / 1e9:.1f} GB/s theoretical)",
    )
    compute = GpuComputeModel()
    table.add_row(
        "GPU",
        "effective GEMM rate",
        f"{compute.effective_flops / 1e12:.0f} TFLOP/s",
    )
    table.add_row(
        "GPU",
        "effective HBM rate",
        f"{compute.effective_hbm_bandwidth / 1e9:.0f} GB/s",
    )
    return ExperimentResult(
        name="table1_system",
        description="System configuration (Table I)",
        tables=[table],
        data={
            "pcie_h2d_gbps": A100_PCIE.h2d_bandwidth / 1e9,
            "pcie_d2h_gbps": A100_PCIE.d2h_bandwidth / 1e9,
            "dram_socket_gbps": cal.DRAM_SOCKET_BW / 1e9,
        },
    )
