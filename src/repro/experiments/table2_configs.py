"""Table II: the model/memory configurations under evaluation."""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.memory.hierarchy import host_config
from repro.models.config import opt_config
from repro.models.weights import model_weight_bytes

#: (model, config labels) exactly as Table II lists them.
TABLE2_ROWS = (
    ("opt-30b", ("DRAM", "NVDRAM", "MemoryMode")),
    ("opt-175b", ("SSD", "FSDAX", "NVDRAM", "MemoryMode")),
)


def run() -> ExperimentResult:
    table = Table(
        title="Table II: LLM model/memory configurations",
        columns=(
            "model",
            "decoders",
            "layers",
            "weights_GiB",
            "label",
            "description",
        ),
    )
    data = {}
    for model_name, labels in TABLE2_ROWS:
        config = opt_config(model_name)
        weights_gib = model_weight_bytes(config) / 2**30
        for label in labels:
            host = host_config(label)
            table.add_row(
                config.name,
                config.num_decoder_blocks,
                config.num_layers,
                round(weights_gib, 2),
                label,
                host.description,
            )
        data[model_name] = {
            "decoders": config.num_decoder_blocks,
            "layers": config.num_layers,
            "weights_gib": weights_gib,
            "labels": list(labels),
        }
    return ExperimentResult(
        name="table2_configs",
        description="Model/memory configurations (Table II)",
        tables=[table],
        data=data,
    )
