"""Ablation: KV-cache placement, quantization, and CPU attention.

The paper keeps the KV cache on the GPU and points at cache
quantization/offloading as composable follow-ups (Section VI: "These
approaches can be combined with our work to further increase batch
sizes").  This ablation quantifies that design space on our platform:

* offloading cache shares to host memory (with and without FlexGen's
  CPU-attention delegation), and
* 4-bit cache quantization, which shrinks the footprint ~3.6x and
  lifts the All-CPU maximum batch accordingly.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.policy import HOST_GPU_POLICY
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN


def _engine(policy, batch):
    return OffloadEngine(
        model="opt-175b", host="NVDRAM", placement="allcpu",
        policy=policy, batch_size=batch,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )


def run() -> ExperimentResult:
    base_policy = HOST_GPU_POLICY.with_compression(True)
    variants = (
        ("kv on GPU (paper)", base_policy),
        ("kv 50% on host", base_policy.with_kv(gpu_percent=50)),
        ("kv 100% on host", base_policy.with_kv(gpu_percent=0)),
        (
            "kv on host + CPU attention",
            base_policy.with_kv(gpu_percent=0, cpu_attention=True),
        ),
        ("kv int4 on GPU", base_policy.with_kv(compress=True)),
        (
            "kv int4 on host + CPU attn",
            base_policy.with_kv(
                gpu_percent=0, compress=True, cpu_attention=True
            ),
        ),
    )
    table = Table(
        title=(
            "Ablation: KV-cache placement/quantization "
            "(OPT-175B, All-CPU weights, NVDRAM)"
        ),
        columns=("variant", "max_batch", "tbt_s@8", "tput@max"),
    )
    data: Dict[str, Dict] = {}
    for name, policy in variants:
        probe = _engine(policy, 1)
        bmax = probe.max_batch_size()
        at8 = _engine(policy, 8).run_timing()
        at_max = _engine(policy, bmax).run_timing()
        table.add_row(
            name, bmax, round(at8.tbt_s, 4),
            round(at_max.throughput_tps, 4),
        )
        data[name] = {
            "max_batch": bmax,
            "tbt_s_b8": at8.tbt_s,
            "tput_at_max": at_max.throughput_tps,
        }
    data["checks"] = {
        # Quantizing the cache multiplies the feasible batch ~3-4x.
        "kv_quant_batch_multiplier": (
            data["kv int4 on GPU"]["max_batch"]
            / data["kv on GPU (paper)"]["max_batch"]
        ),
        # Offloading the cache costs TBT (context streams per layer).
        "offload_tbt_penalty": (
            data["kv 100% on host"]["tbt_s_b8"]
            / data["kv on GPU (paper)"]["tbt_s_b8"]
        ),
        # On an *Optane* host, CPU attention reads the cache at Optane
        # speed — roughly what the PCIe path delivers — so it roughly
        # ties plain offloading here (it wins on DRAM hosts).
        "cpu_attention_within_15pct": (
            data["kv on host + CPU attention"]["tput_at_max"]
            >= 0.85 * data["kv 100% on host"]["tput_at_max"]
        ),
        # The combined recipe lifts throughput well past the paper's
        # GPU-resident-cache ceiling.
        "combined_beats_paper_config": (
            data["kv int4 on host + CPU attn"]["tput_at_max"]
            > 2.0 * data["kv on GPU (paper)"]["tput_at_max"]
        ),
    }
    return ExperimentResult(
        name="ablation_kv_offload",
        description="KV-cache placement, quantization, CPU attention",
        tables=[table],
        data=data,
    )
