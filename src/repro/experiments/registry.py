"""Registry mapping experiment names to their runners."""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult

#: name -> module path (lazy-imported so listing is cheap).
EXPERIMENTS: Dict[str, str] = {
    "table1_system": "repro.experiments.table1_system",
    "table2_configs": "repro.experiments.table2_configs",
    "fig3_bandwidth": "repro.experiments.fig3_bandwidth",
    "fig4_llm_perf": "repro.experiments.fig4_llm_perf",
    "fig5_overlap": "repro.experiments.fig5_overlap",
    "fig6_compression": "repro.experiments.fig6_compression",
    "fig7_placement": "repro.experiments.fig7_placement",
    "fig8_mha_ffn": "repro.experiments.fig8_mha_ffn",
    "fig9_helm_weights": "repro.experiments.fig9_helm_weights",
    "fig10_helm_dist": "repro.experiments.fig10_helm_dist",
    "fig11_helm": "repro.experiments.fig11_helm",
    "fig12_allcpu": "repro.experiments.fig12_allcpu",
    "table3_cxl": "repro.experiments.table3_cxl",
    "table4_ratios": "repro.experiments.table4_ratios",
    "fig13_cxl": "repro.experiments.fig13_cxl",
    "ablation_helm_sweep": "repro.experiments.ablation_helm_sweep",
    "ablation_bandwidth": "repro.experiments.ablation_bandwidth",
    "ablation_batch_frontier": "repro.experiments.ablation_batch_frontier",
    "ablation_auto_placement": "repro.experiments.ablation_auto_placement",
    "ablation_kv_offload": "repro.experiments.ablation_kv_offload",
    "ablation_gpu_batches": "repro.experiments.ablation_gpu_batches",
    "ablation_energy": "repro.experiments.ablation_energy",
    "ablation_cxl_interleave": "repro.experiments.ablation_cxl_interleave",
    "ablation_model_scaling": "repro.experiments.ablation_model_scaling",
    "ablation_context_length": "repro.experiments.ablation_context_length",
    "ablation_overlap": "repro.experiments.ablation_overlap",
    "ablation_qos": "repro.experiments.ablation_qos",
    "ablation_schedule_order": "repro.experiments.ablation_schedule_order",
    "ablation_queueing": "repro.experiments.ablation_queueing",
    "ablation_serving": "repro.experiments.ablation_serving",
    "ablation_faults": "repro.experiments.ablation_faults",
    "ablation_kv": "repro.experiments.ablation_kv",
    "ablation_chaos": "repro.experiments.ablation_chaos",
    "ablation_fleet": "repro.experiments.ablation_fleet",
    "ablation_obs": "repro.experiments.ablation_obs",
    "ablation_autoscale": "repro.experiments.ablation_autoscale",
}


def get_experiment(name: str) -> Callable[[], ExperimentResult]:
    try:
        module_path = EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
    module = importlib.import_module(module_path)
    return module.run


def run_experiment(name: str) -> ExperimentResult:
    return get_experiment(name)()
