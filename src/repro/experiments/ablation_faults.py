"""Ablation: fault injection and graceful degradation under load.

The serving ablations assume the memory tiers deliver their nominal
bandwidth forever.  Real heterogeneous hosts do not: SSDs pause for
garbage collection, Optane media wears, CXL links flap.  This
experiment sweeps the intensity of a periodic host-tier degradation
(a GC-pause-like window that multiplies transfer times) against the
two headline placements and measures what an *operator* cares about —
goodput and per-class SLO attainment — with the resilience playbook
(shed batch-tier load, shrink the admitted batch, re-plan placement
against the degraded bandwidth map) on and off.

Expected shape:

* at zero intensity the fault machinery is inert: metrics are
  identical to a fault-free run, bit for bit;
* as intensity climbs, the no-resilience baseline drags every tenant
  down together, while the resilient scheduler sacrifices batch-tier
  requests to keep the interactive tier inside its SLO;
* identical seeds and schedules reproduce identical runs.

Set ``REPRO_QUICK=1`` (or pass ``repro-experiments run --quick``) for
a smaller sweep suitable for CI smoke tests.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.analysis.reporting import Table
from repro.core.qos import QosTarget
from repro.experiments.base import ExperimentResult
from repro.experiments.common import pricing_backend
from repro.faults.models import (
    DegradationWindow,
    FaultSchedule,
    TransientFaults,
)
from repro.serve.request import QosClass
from repro.serve.resilience import NO_RESILIENCE
from repro.serve.simulator import simulate_serving

PLACEMENTS = ("helm", "allcpu")
#: Host-tier slowdown factors swept (1.0 = no fault).
INTENSITIES = (1.0, 4.0, 16.0)
NUM_REQUESTS = 200
#: Arrival rate and admission cap per placement, chosen so both run
#: at roughly 70% of nominal capacity (HeLM admits one sequence at
#: ~4 s/iteration; All-CPU is capped at 8 concurrent sequences at
#: ~5.5 s/iteration).
LOAD = {"helm": (0.008, None), "allcpu": (0.05, 8)}
SEED = 7
FAULT_SEED = 13

#: Platform-scale tenant tiers: out-of-core OPT-175B first tokens
#: take seconds nominally, so the interactive bound is 120 s — met
#: easily when healthy, blown when a degraded tier backs up the
#: admission queue.  Batch tenants only care about finishing within
#: the hour.
INTERACTIVE = QosClass(
    name="interactive", priority=0, target=QosTarget(max_ttft_s=120.0)
)
BATCH = QosClass(
    name="batch",
    priority=1,
    target=QosTarget(max_tbt_s=3600.0),
    max_e2e_s=3600.0,
)
CLASS_MIX = ((INTERACTIVE, 0.4), (BATCH, 0.6))


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _schedule(slowdown: float) -> Optional[FaultSchedule]:
    """A GC-pause-like degradation window plus rare transients."""
    if slowdown <= 1.0:
        return None
    return FaultSchedule(
        faults=(
            DegradationWindow(
                target="host",
                slowdown=slowdown,
                start_s=600.0,
                duration_s=400.0,
            ),
            TransientFaults(target="host", probability=0.01),
        ),
        seed=FAULT_SEED,
    )


def _simulate(
    placement: str,
    slowdown: float,
    resilient: bool,
    num_requests: int,
):
    rate, max_batch = LOAD[placement]
    return simulate_serving(
        model="opt-175b",
        host="NVDRAM",
        placement=placement,
        compress_weights=True,
        arrival="poisson",
        rate_rps=rate,
        num_requests=num_requests,
        class_mix=CLASS_MIX,
        seed=SEED,
        max_batch=max_batch,
        pricing_backend=pricing_backend("analytic"),
        faults=_schedule(slowdown),
        resilience=None if resilient else NO_RESILIENCE,
    )


def _flat(result) -> Dict[str, object]:
    metrics = result.metrics
    per_class = metrics.per_class
    return {
        "goodput_rps": metrics.goodput_rps,
        "slo_attainment": metrics.slo_attainment,
        "interactive_slo": per_class["interactive"].slo_attainment,
        "batch_slo": per_class["batch"].slo_attainment,
        "interactive_ttft_p95_s": per_class["interactive"].ttft.p95_s,
        "batch_ttft_p95_s": per_class["batch"].ttft.p95_s,
        "shed": metrics.shed_requests,
        "shed_interactive": per_class["interactive"].shed,
        "replans": metrics.faults.replans,
        "degradation_events": metrics.faults.degradation_events,
        "degraded_iterations": metrics.faults.degraded_iterations,
        "retried_iterations": metrics.faults.retried_iterations,
        "aborted": metrics.faults.aborted,
        "duration_s": metrics.duration_s,
        "ttft_p99_s": metrics.ttft.p99_s,
    }


def run() -> ExperimentResult:
    quick = _quick()
    intensities: Tuple[float, ...] = (
        (1.0, 8.0) if quick else INTENSITIES
    )
    # Quick mode keeps the placement with KV slots to contend for —
    # that is where the resilience playbook has room to act.
    placements = ("allcpu",) if quick else PLACEMENTS
    num_requests = 80 if quick else NUM_REQUESTS

    sweep = Table(
        title=(
            "Ablation: fault intensity vs goodput and SLO attainment "
            "(OPT-175B, NVDRAM, Poisson arrivals at ~70% capacity, "
            "40% interactive / 60% batch)"
        ),
        columns=(
            "placement", "slowdown", "resilience", "goodput_rps",
            "inter_slo", "batch_slo", "inter_ttft_p95_s", "shed",
            "replans", "degraded_iters",
        ),
    )
    data: Dict[str, object] = {}
    for placement in placements:
        for slowdown in intensities:
            for resilient in (True, False):
                result = _simulate(
                    placement, slowdown, resilient, num_requests
                )
                flat = _flat(result)
                mode = "on" if resilient else "off"
                data[f"{placement}/x{slowdown:g}/{mode}"] = flat
                sweep.add_row(
                    placement,
                    f"{slowdown:g}x",
                    mode,
                    round(flat["goodput_rps"], 4),
                    round(flat["interactive_slo"], 3),
                    round(flat["batch_slo"], 3),
                    round(flat["interactive_ttft_p95_s"], 2),
                    flat["shed"],
                    flat["replans"],
                    flat["degraded_iterations"],
                )

    # Zero-intensity fault machinery must be inert: byte-identical
    # metrics to a run with no fault injection at all.
    rate, max_batch = LOAD[placements[0]]
    baseline = simulate_serving(
        model="opt-175b",
        host="NVDRAM",
        placement=placements[0],
        compress_weights=True,
        arrival="poisson",
        rate_rps=rate,
        num_requests=num_requests,
        class_mix=CLASS_MIX,
        seed=SEED,
        max_batch=max_batch,
        pricing_backend=pricing_backend("analytic"),
    )
    zero = _simulate(placements[0], 1.0, True, num_requests)
    zero_identical = (
        baseline.records == zero.records
        and baseline.metrics.duration_s == zero.metrics.duration_s
        and baseline.metrics.ttft.p99_s == zero.metrics.ttft.p99_s
    )

    # Determinism: same seeds + schedule -> identical run.
    top = max(intensities)
    replay = _simulate(placements[0], top, True, num_requests)
    deterministic = (
        _flat(replay) == data[f"{placements[0]}/x{top:g}/on"]
    )

    worst = {
        placement: (
            data[f"{placement}/x{top:g}/on"],
            data[f"{placement}/x{top:g}/off"],
        )
        for placement in placements
    }
    data["checks"] = {
        "zero_intensity_identical": zero_identical,
        "deterministic_replay": deterministic,
        # The resilience win: with shedding + eviction + re-planning,
        # the interactive tier's SLO attainment at the worst intensity
        # is never below the price-it-but-do-nothing baseline, and
        # strictly beats it where there are KV slots to contend for
        # (HeLM admits a single sequence, so at the worst intensity
        # the one affected request is lost either way).
        "resilience_preserves_interactive_slo": all(
            on["interactive_slo"] >= off["interactive_slo"]
            for on, off in worst.values()
        )
        and any(
            on["interactive_slo"] > off["interactive_slo"]
            for on, off in worst.values()
        ),
        # Shedding spares the interactive tier entirely.
        "shedding_spares_interactive": all(
            data[key]["shed_interactive"] == 0
            for key in data
            if isinstance(data[key], dict) and "shed_interactive" in data[key]
        ),
        # Degradation windows end: no run escalates to an abort.
        "no_aborts": all(
            not value["aborted"]
            for value in data.values()
            if isinstance(value, dict) and "aborted" in value
        ),
    }
    return ExperimentResult(
        name="ablation_faults",
        description=(
            "Fault injection: degraded-tier intensity vs goodput/SLO, "
            "resilience on vs off"
        ),
        tables=[sweep],
        data=data,
    )
