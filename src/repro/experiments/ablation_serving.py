"""Ablation: open-loop *online* serving per placement scheme.

The request-level counterpart of ``ablation_queueing``: instead of
treating a whole closed-loop batch as one opaque service time, the
continuous-batching simulator admits requests into the running decode
batch at iteration boundaries, gated by each placement's KV admission
limit.  The paper's maximum-batch frontier (HeLM keeps weights in HBM
and admits few sequences; All-CPU frees HBM for KV and admits many)
becomes a throughput/latency frontier under load:

* at a trickle, HeLM's resident weights win first-token latency;
* as the arrival rate climbs, HeLM saturates while All-CPU keeps
  absorbing load — it sustains a strictly higher arrival rate.

A second table exercises multi-tenant QoS under contention: with an
interactive + batch tenant mix on one saturating stream, priority
admission keeps the interactive tail TTFT below the batch tenants'.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import pricing_backend
from repro.serve.request import BATCH, INTERACTIVE
from repro.serve.simulator import simulate_serving

#: Arrival sweep: HeLM (capacity ~1/88 req/s here) saturates from the
#: second rate on; All-CPU and the baseline ride out the first three.
ARRIVAL_RATES = (0.002, 0.02, 0.2, 1.0)
PLACEMENTS = ("baseline", "helm", "allcpu")
NUM_REQUESTS = 150
SEED = 7


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _simulate(placement: str, rate: float, num_requests: int, class_mix=None):
    kwargs = {"class_mix": class_mix} if class_mix else {}
    return simulate_serving(
        model="opt-175b",
        host="NVDRAM",
        placement=placement,
        compress_weights=True,
        arrival="poisson",
        rate_rps=rate,
        num_requests=num_requests,
        seed=SEED,
        pricing_backend=pricing_backend("analytic"),
        **kwargs,
    )


def _max_sustained_rate(
    data: Dict[str, Dict], placement: str, rates: Sequence[float]
) -> Optional[float]:
    """Highest swept rate the placement served without saturating."""
    sustained = [
        rate
        for rate in rates
        if not data[f"{placement}/r{rate}"]["saturated"]
    ]
    return max(sustained) if sustained else None


def run() -> ExperimentResult:
    quick = _quick()
    # The quick sweep keeps the endpoints that drive the checks: the
    # trickle where HeLM's resident weights win TTFT and the rate
    # where HeLM has saturated but All-CPU still absorbs load.
    rates: Tuple[float, ...] = (
        (ARRIVAL_RATES[0], ARRIVAL_RATES[2]) if quick else ARRIVAL_RATES
    )
    num_requests = 60 if quick else NUM_REQUESTS
    sweep = Table(
        title=(
            "Ablation: online serving under Poisson load "
            "(OPT-175B, NVDRAM, compressed, continuous batching)"
        ),
        columns=(
            "placement", "max_batch", "arrival_rps", "ttft_p50_s",
            "ttft_p99_s", "tbt_p99_s", "e2e_p99_s", "goodput_rps",
            "util", "saturated",
        ),
    )
    data: Dict[str, Dict] = {}
    for placement in PLACEMENTS:
        for rate in rates:
            result = _simulate(placement, rate, num_requests)
            metrics = result.metrics
            sweep.add_row(
                placement,
                result.setup["max_batch"],
                rate,
                round(metrics.ttft.p50_s, 2),
                round(metrics.ttft.p99_s, 2),
                round(metrics.tbt.p99_s, 2),
                round(metrics.e2e.p99_s, 2),
                round(metrics.goodput_rps, 4),
                round(metrics.utilization, 3),
                metrics.saturated,
            )
            flat = {
                key: value
                for key, value in metrics.summary().items()
                if not isinstance(value, dict)
            }
            flat["max_batch"] = result.setup["max_batch"]
            data[f"{placement}/r{rate}"] = flat

    # Multi-tenant QoS under contention on the big-batch placement.
    qos = Table(
        title=(
            "QoS classes under contention (All-CPU, Poisson 0.5 req/s, "
            "70% interactive / 30% batch)"
        ),
        columns=(
            "class", "completed", "ttft_p50_s", "ttft_p95_s",
            "tbt_p95_s", "slo_attainment",
        ),
    )
    contended = _simulate(
        "allcpu", 0.5, num_requests,
        class_mix=((INTERACTIVE, 0.7), (BATCH, 0.3)),
    )
    for name, report in sorted(contended.metrics.per_class.items()):
        qos.add_row(
            name,
            report.completed,
            round(report.ttft.p50_s, 2),
            round(report.ttft.p95_s, 2),
            round(report.tbt.p95_s, 2),
            round(report.slo_attainment, 3),
        )
        data[f"qos/{name}"] = report.summary()

    low = rates[0]
    helm_rate = _max_sustained_rate(data, "helm", rates)
    allcpu_rate = _max_sustained_rate(data, "allcpu", rates)
    data["max_sustained_rps"] = {
        placement: _max_sustained_rate(data, placement, rates)
        for placement in PLACEMENTS
    }
    data["checks"] = {
        # The paper's latency/throughput trade under open-loop load:
        # HeLM wins first-token latency when unloaded ...
        "helm_wins_p50_ttft_at_low_load": (
            data[f"helm/r{low}"]["ttft_p50_s"]
            < data[f"allcpu/r{low}"]["ttft_p50_s"]
        ),
        # ... while All-CPU sustains a strictly higher arrival rate.
        "allcpu_outlasts_helm": (
            helm_rate is None
            or (allcpu_rate is not None and allcpu_rate > helm_rate)
        ),
        # Priority admission: interactive tail TTFT <= batch tenants'.
        "interactive_ttft_leq_batch": (
            data["qos/interactive"]["ttft_p95_s"]
            <= data["qos/batch"]["ttft_p95_s"]
        ),
    }
    return ExperimentResult(
        name="ablation_serving",
        description="Online serving (continuous batching) per placement",
        tables=[sweep, qos],
        data=data,
    )
