"""Ablation: the value of Listing 1's compute/transfer overlap.

FlexGen's zig-zag schedule exists to hide weight transfers behind
compute.  This ablation runs the same placements with overlap
disabled (load layer ``j+1`` only after computing layer ``j``) and
measures how much of the transfer each placement actually hides —
HeLM's entire point is making this overlap effective.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN
from repro.pricing import build_executor


def _tbt(host: str, placement: str, overlap: bool) -> float:
    engine = OffloadEngine(
        model="opt-175b", host=host, placement=placement,
        compress_weights=True, batch_size=1,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )
    executor = build_executor(engine.run_spec(overlap=overlap))
    return executor.run().tbt_s


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Ablation: zig-zag overlap on/off "
            "(OPT-175B, compressed, batch 1)"
        ),
        columns=(
            "config", "placement", "overlap_tbt_s", "serial_tbt_s",
            "hidden_pct",
        ),
    )
    data: Dict[str, Dict] = {}
    for host in ("NVDRAM", "DRAM"):
        for placement in ("baseline", "helm", "allcpu"):
            fast = _tbt(host, placement, overlap=True)
            slow = _tbt(host, placement, overlap=False)
            hidden = (slow - fast) / slow * 100.0
            table.add_row(
                host, placement,
                round(fast, 4), round(slow, 4), round(hidden, 2),
            )
            data[f"{host}/{placement}"] = {
                "overlap_tbt_s": fast,
                "serial_tbt_s": slow,
                "hidden_pct": hidden,
            }

    data["checks"] = {
        # Overlap always helps.
        "overlap_always_helps": all(
            entry["hidden_pct"] > 0
            for key, entry in data.items()
            if key != "checks"
        ),
        # HeLM hides a larger share than the baseline — the balanced
        # pipeline is precisely what overlap rewards.
        "helm_hides_more_than_baseline": (
            data["NVDRAM/helm"]["hidden_pct"]
            > data["NVDRAM/baseline"]["hidden_pct"]
        ),
    }
    return ExperimentResult(
        name="ablation_overlap",
        description="Value of the zig-zag compute/transfer overlap",
        tables=[table],
        data=data,
    )
