"""Ablation: zig-zag block order vs row-major generation.

FlexGen's schedule processes all micro-batches of a block through one
layer before moving on (Listing 1 with ``num_gpu_batches``), so each
weight transfer is amortized over the whole block.  The row-major
alternative — finish one micro-batch's entire generation, then the
next — re-streams every weight once per micro-batch.  For a
transfer-bound model the block order wins by nearly the block factor;
this ablation measures exactly that.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.engine import OffloadEngine
from repro.core.policy import HOST_GPU_POLICY
from repro.experiments.base import ExperimentResult
from repro.experiments.common import GEN_LEN, PROMPT_LEN

MICRO_BATCH = 4
BLOCKS = (1, 2, 4, 8)


def _engine(blocks: int) -> OffloadEngine:
    policy = HOST_GPU_POLICY.with_compression(True).with_gpu_batches(blocks)
    return OffloadEngine(
        model="opt-175b", host="NVDRAM", placement="allcpu",
        policy=policy, batch_size=MICRO_BATCH,
        prompt_len=PROMPT_LEN, gen_len=GEN_LEN,
    )


def run() -> ExperimentResult:
    table = Table(
        title=(
            "Ablation: zig-zag block vs row-major order "
            f"(OPT-175B, All-CPU, NVDRAM, micro-batch {MICRO_BATCH})"
        ),
        columns=(
            "blocks", "effective_batch",
            "block_total_s", "row_major_total_s", "speedup",
        ),
    )
    data: Dict[str, Dict] = {}
    single = _engine(1).run_timing()
    for blocks in BLOCKS:
        block_metrics = _engine(blocks).run_timing()
        block_total = block_metrics.total_s
        # Row-major: the same work as `blocks` sequential single-block
        # runs — every weight re-streamed per micro-batch.
        row_major_total = blocks * single.total_s
        speedup = row_major_total / block_total
        table.add_row(
            blocks,
            blocks * MICRO_BATCH,
            round(block_total, 3),
            round(row_major_total, 3),
            round(speedup, 3),
        )
        data[f"x{blocks}"] = {
            "block_total_s": block_total,
            "row_major_total_s": row_major_total,
            "speedup": speedup,
        }

    data["checks"] = {
        # Blocking always wins for this transfer-bound model...
        "block_order_wins": all(
            data[f"x{blocks}"]["speedup"] >= 1.0 for blocks in BLOCKS
        ),
        # ...and by most of the block factor at 8 blocks (compute and
        # per-micro-batch HBM re-reads keep it below the ideal 8x).
        "x8_speedup": data["x8"]["speedup"],
        "x8_speedup_substantial": data["x8"]["speedup"] > 4.0,
    }
    return ExperimentResult(
        name="ablation_schedule_order",
        description="Zig-zag block order vs row-major generation",
        tables=[table],
        data=data,
    )
