"""Figure 9: HeLM's per-weight breakdown across host and GPU.

Fig. 9 annotates every weight of an OPT-175B decoder block with its
uncompressed/compressed size and where HeLM places it.  This
experiment regenerates those annotations from the weight inventory
and the HeLM assignment.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.core.placement.helm import HelmPlacement
from repro.core.policy import HOST_GPU_POLICY
from repro.experiments.base import ExperimentResult
from repro.models.config import opt_config
from repro.models.weights import LayerKind
from repro.quant.spec import INT4_GROUPWISE
from repro.units import MIB


def run() -> ExperimentResult:
    config = opt_config("opt-175b")
    policy = HOST_GPU_POLICY.with_compression(True)
    placement = HelmPlacement().place_model(config, policy)

    table = Table(
        title="Fig 9: HeLM per-weight placement, one OPT-175B decoder block",
        columns=(
            "layer", "weight", "shape",
            "fp16_MiB", "int4_MiB", "tier",
        ),
    )
    data: Dict[str, Dict] = {}
    for layer in placement.layers:
        if layer.kind is LayerKind.MHA:
            pass
        elif layer.kind is LayerKind.FFN:
            pass
        else:
            continue
        for spec in layer.weights:
            tier = placement.tier_of(layer.index, spec.name)
            table.add_row(
                layer.kind.value,
                spec.name,
                "x".join(str(dim) for dim in spec.shape),
                round(spec.size / MIB, 3),
                round(INT4_GROUPWISE.compressed_bytes(spec.size) / MIB, 3),
                tier.value,
            )
            data[f"{layer.kind.value}/{spec.name}"] = {
                "fp16_bytes": spec.size,
                "int4_bytes": INT4_GROUPWISE.compressed_bytes(spec.size),
                "tier": tier.value,
            }
        # One block is representative: HeLM assigns every block alike.
        if layer.kind is LayerKind.FFN:
            break

    data["checks"] = {
        # Fig 9's structure: fc1 on GPU, fc2 on host, all four MHA
        # projections on host, every vector on GPU.
        "fc1_gpu": data["ffn/w_fc1"]["tier"] == "gpu",
        "fc2_cpu": data["ffn/w_fc2"]["tier"] == "cpu",
        "projections_cpu": all(
            data[f"mha/{name}"]["tier"] == "cpu"
            for name in ("w_q", "w_k", "w_v", "w_out")
        ),
        "vectors_gpu": all(
            entry["tier"] == "gpu"
            for key, entry in data.items()
            if key != "checks" and (
                "/b_" in key or "/ln_" in key
            )
        ),
        # Fig 9's headline numbers: a projection matrix is 288 MiB
        # fp16 / ~81 MiB int4; an FC matrix is 1152 MiB / ~324 MiB.
        "w_q_fp16_mib": data["mha/w_q"]["fp16_bytes"] / MIB,
        "fc1_fp16_mib": data["ffn/w_fc1"]["fp16_bytes"] / MIB,
    }
    return ExperimentResult(
        name="fig9_helm_weights",
        description="HeLM per-weight placement breakdown (Fig. 9)",
        tables=[table],
        data=data,
    )
