"""Ablation: KV placement policies over the host-memory tiers.

``repro.kv`` turns the serving simulator's KV admission from a static
GPU-plan percentage split into a real per-(request, layer-range) tier
map over HBM / DRAM / NVDIMM / CXL / SSD.  This ablation pits the two
policy families against each other on the configuration where the
split matters most: OPT-175B under the HeLM placement, whose
GPU-resident weight shares leave almost no HBM for KV — the static
split therefore admits one sequence at a time and fully serializes a
long-context bursty (MMPP) trace.

The dynamic ``hotness`` policy overcommits admission into the host
tiers at *equal* tier capacity: surplus sequences keep their KV in
DRAM/NVDIMM and pay that tier's read bandwidth on every decode
iteration (priced through the same ``TransferPathSolver`` as every
other byte in the repo), while LRU demotion and passive promotion
shuttle the hot set into whatever HBM frees up.  Concurrency slashes
queueing delay — p99 TTFT and E2E drop severalfold — while the
honestly-priced slow-tier reads raise TBT: the paper's
latency/capacity trade, now visible inside a single placement.

The ``static`` row doubles as a live golden: its metrics must be
bit-identical to a run without ``repro.kv`` wired in at all.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import pricing_backend
from repro.kv import HotnessKvPolicy
from repro.serve.simulator import simulate_serving
from repro.workloads.lengths import LengthDistribution

MODEL = "opt-175b"
HOST = "NVDRAM"
PLACEMENT = "helm"
RATE_RPS = 0.05
NUM_REQUESTS = 60
PROMPT_MEDIAN = 1024
GEN_LEN = 16
#: HeLM's GPU plan admits a single sequence; the dynamic policies
#: overcommit eightfold into the host tiers.
OVERCOMMIT = 8.0
SEED = 11


def _quick() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def _policies():
    return (
        ("static", "static"),
        ("hotness", HotnessKvPolicy(overcommit=OVERCOMMIT)),
        (
            "hotness-inclusive",
            HotnessKvPolicy(
                name="hotness-inclusive",
                inclusive=True,
                overcommit=OVERCOMMIT,
            ),
        ),
    )


def _simulate(kv_policy, num_requests: int, gen_len: int):
    return simulate_serving(
        model=MODEL,
        host=HOST,
        placement=PLACEMENT,
        compress_weights=True,
        arrival="bursty",
        rate_rps=RATE_RPS,
        num_requests=num_requests,
        seed=SEED,
        prompt_lengths=LengthDistribution.lognormal(median=PROMPT_MEDIAN),
        gen_lengths=LengthDistribution.fixed(gen_len),
        pricing_backend=pricing_backend("analytic"),
        kv_policy=kv_policy,
    )


def run() -> ExperimentResult:
    quick = _quick()
    num_requests = 16 if quick else NUM_REQUESTS
    gen_len = 8 if quick else GEN_LEN

    table = Table(
        title=(
            "Ablation: KV placement policy on a long-context MMPP trace "
            f"({MODEL.upper()}, {HOST}, {PLACEMENT}, lognormal prompts "
            f"median {PROMPT_MEDIAN}, equal tier capacity)"
        ),
        columns=(
            "policy", "admitted_batch", "ttft_p50_s", "ttft_p99_s",
            "tbt_p99_s", "e2e_p99_s", "goodput_rps", "migrations",
            "migrated_gib",
        ),
    )
    data: Dict[str, Dict] = {}
    for label, policy in _policies():
        result = _simulate(policy, num_requests, gen_len)
        metrics = result.metrics
        snapshot = result.setup["kv"]
        migrated_gib = snapshot["migration_bytes"] / (1 << 30)
        table.add_row(
            label,
            snapshot["admission_limit"] or result.setup["max_batch"],
            round(metrics.ttft.p50_s, 2),
            round(metrics.ttft.p99_s, 2),
            round(metrics.tbt.p99_s, 2),
            round(metrics.e2e.p99_s, 2),
            round(metrics.goodput_rps, 4),
            snapshot["migrations"],
            round(migrated_gib, 2),
        )
        flat = {
            key: value
            for key, value in metrics.summary().items()
            if not isinstance(value, dict)
        }
        flat["kv"] = snapshot
        data[label] = flat

    # The static policy must be a bit-identical no-op next to a run
    # with no KV manager at all — the subsystem's core golden.
    bare = _simulate(None, num_requests, gen_len)
    static = _simulate("static", num_requests, gen_len)
    data["checks"] = {
        "static_is_bit_identical_noop": (
            static.metrics.summary() == bare.metrics.summary()
        ),
        # Overcommitting KV into host tiers buys back concurrency the
        # GPU plan cannot: tail first-token and end-to-end latency
        # collapse at equal capacity ...
        "dynamic_beats_static_p99_ttft": (
            data["hotness"]["ttft_p99_s"] < data["static"]["ttft_p99_s"]
        ),
        "dynamic_beats_static_p99_e2e": (
            data["hotness"]["e2e_p99_s"] < data["static"]["e2e_p99_s"]
        ),
        # ... paid for honestly in slow-tier decode reads (TBT rises).
        "dynamic_pays_tbt_for_concurrency": (
            data["hotness"]["tbt_p99_s"] > data["static"]["tbt_p99_s"]
        ),
        # Inclusive shadows only ever cheapen demotion traffic.
        "inclusive_migrates_no_more_bytes": (
            data["hotness-inclusive"]["kv"]["migration_bytes"]
            <= data["hotness"]["kv"]["migration_bytes"]
        ),
    }
    return ExperimentResult(
        name="ablation_kv",
        description="KV tier placement policies under long-context load",
        tables=[table],
        data=data,
    )
