"""Ablation: the latency/throughput frontier as batch size grows.

Section V-C argues All-CPU trades nothing in TBT while multiplying
throughput.  This sweep traces the whole frontier on NVDRAM.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import Table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import run_engine
from repro.experiments.fig12_allcpu import max_allcpu_batch


def run() -> ExperimentResult:
    bmax = max_allcpu_batch()
    batches = sorted({1, 2, 4, 8, 16, 32, bmax})
    table = Table(
        title="Ablation: All-CPU batch frontier (OPT-175B, NVDRAM, compressed)",
        columns=("batch", "ttft_s", "tbt_s", "tput_tok_s"),
    )
    data: Dict[str, Dict] = {}
    for batch in batches:
        _, metrics = run_engine(
            "opt-175b", "NVDRAM", "allcpu", batch_size=batch, compress=True
        )
        table.add_row(
            batch,
            round(metrics.ttft_s, 4),
            round(metrics.tbt_s, 4),
            round(metrics.throughput_tps, 4),
        )
        data[f"b{batch}"] = metrics.summary()
    tputs = [data[f"b{batch}"]["throughput_tps"] for batch in batches]
    data["checks"] = {
        "throughput_monotonic": all(
            later >= earlier for earlier, later in zip(tputs, tputs[1:])
        ),
        "bmax": bmax,
    }
    return ExperimentResult(
        name="ablation_batch_frontier",
        description="Latency/throughput frontier vs batch size",
        tables=[table],
        data=data,
    )
