"""The frozen, hashable description of one priceable run.

Every consumer of iteration costs — the engine façade, the serving
cost model, the CXL projections, the overlap ablation — used to
hand-construct a :class:`~repro.core.timing.TimingExecutor` with its
own copy of the same kwargs.  :class:`RunSpec` is that bundle as a
value: host memory + placement + policy + batch/lengths + GPU (+
optional PCIe override, spill log, and fault injection), usable both
as the argument to :func:`repro.pricing.build_executor` and as the
key of the shared :class:`~repro.pricing.cache.PriceCache`.

Hashing/equality treat the platform objects (host config, placement
result, PCIe link, injector) by *identity*: two specs are the same
cache key only when they price the same live objects.  That is
exactly the invalidation story re-planning needs — a degraded engine
carries new host/placement objects, so its prices can never collide
with stale nominal entries — and it keeps hashing O(1) even though a
placement holds per-layer byte maps.  A spec stored in a cache key
keeps strong references to those objects, so ids cannot be recycled
under it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.devices.gpu import A100_SPEC, GpuSpec
from repro.errors import ConfigurationError
from repro.interconnect.pcie import PcieLink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.placement.base import PlacementResult
    from repro.core.policy import Policy
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy
    from repro.memory.hierarchy import HostMemoryConfig


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One run configuration, ready to be priced or executed."""

    host: "HostMemoryConfig"
    placement: "PlacementResult"
    policy: "Policy"
    batch_size: int
    prompt_len: int = 128
    gen_len: int = 21
    gpu_spec: GpuSpec = A100_SPEC
    #: Listing 1's compute/transfer overlap (False = serial steps).
    overlap: bool = True
    #: Optional PCIe override (e.g. the widened link of the CXL
    #: projections); ``None`` means the platform default.
    pcie: Optional[PcieLink] = None
    #: Spill decisions echoed into the run's metrics.
    spill_log: Tuple[str, ...] = ()
    #: Optional fault injection, threaded into the event executor.
    injector: Optional["FaultInjector"] = None
    retry: Optional["RetryPolicy"] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        if self.prompt_len < 1:
            raise ConfigurationError("prompt_len must be >= 1")
        if self.gen_len < 1:
            raise ConfigurationError("gen_len must be >= 1")

    @property
    def fault_free(self) -> bool:
        return self.injector is None

    def cache_key(self) -> Tuple:
        """The value this spec hashes/compares by."""
        return (
            id(self.host),
            id(self.placement),
            self.policy,
            self.batch_size,
            self.prompt_len,
            self.gen_len,
            self.gpu_spec,
            self.overlap,
            id(self.pcie) if self.pcie is not None else None,
            id(self.injector) if self.injector is not None else None,
        )

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def with_shape(
        self,
        batch_size: Optional[int] = None,
        prompt_len: Optional[int] = None,
        gen_len: Optional[int] = None,
    ) -> "RunSpec":
        """A sibling spec with a different batch/length shape."""
        return dataclasses.replace(
            self,
            batch_size=(
                self.batch_size if batch_size is None else batch_size
            ),
            prompt_len=(
                self.prompt_len if prompt_len is None else prompt_len
            ),
            gen_len=self.gen_len if gen_len is None else gen_len,
        )

    def fault_free_spec(self) -> "RunSpec":
        """This spec with fault injection stripped (nominal pricing)."""
        if self.fault_free and self.retry is None:
            return self
        return dataclasses.replace(self, injector=None, retry=None)
