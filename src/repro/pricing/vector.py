"""Vectorized layer-cost evaluation over (batch × context) grids.

:class:`~repro.core.layercosts.LayerCostModel` prices one shape at a
time; serving sweeps and the capacity planner need hundreds of
(batch, context-bucket) shapes of the *same* configuration, and
re-running the scalar model per shape re-walks the per-layer loop
every time.  :class:`LayerCostGrid` evaluates the identical arithmetic
for an entire grid in one pass:

* **Kernels** (roofline flops/HBM traffic, dequantization) are
  evaluated as numpy float64 arrays, with every expression written in
  the scalar model's exact operation order — elementwise IEEE-754
  arithmetic is deterministic, so the grid's values equal the scalar
  model's *float for float*, not to a tolerance.
* **Transfers** depend only on per-layer staged bytes and the run's
  host working set, not on the grid cell (the working set varies only
  through the host-resident KV share) — they are computed once per
  distinct working set through the same
  :func:`~repro.core.layercosts.staging_transfer_parts` the scalar
  model calls, memoized, and broadcast.  Bandwidth-curve
  interpolation stays in scalar code on purpose: ``numpy``'s
  vectorized ``log`` may differ from ``math.log`` in the last ulp,
  which would break float equality.
* **CPU attention** (when the policy delegates it) is a per-cell
  scalar of the shared :func:`~repro.core.layercosts
  .cpu_attention_seconds` — layer-independent, so it costs one call
  per grid cell rather than one per (cell, layer).

``tests/pricing/test_vector_golden.py`` pins the exact equality
against both scalar backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.layercosts import (
    cpu_attention_seconds,
    kv_transfer_parts,
    resolve_working_set_bytes,
    staging_transfer_parts,
)
from repro.core.metrics import Stage
from repro.devices.cpu import CpuComputeModel
from repro.devices.device import DeviceKind
from repro.devices.gpu import GpuComputeModel
from repro.errors import ConfigurationError
from repro.interconnect.path import TransferPathSolver
from repro.models.kv_cache import (
    KvCachePlan,
    kv_bytes_per_token,
    kv_bytes_per_token_per_block,
)
from repro.models.weights import LayerKind
from repro.pricing.parts import IterationParts, KvParts
from repro.pricing.spec import RunSpec

__all__ = ["CostGrid", "LayerCostGrid"]

#: fp16 activations, as in :mod:`repro.models.flops`.
_ACT_BYTES = 2


@dataclass(frozen=True)
class CostGrid:
    """One evaluated (batch × context-bucket) grid of iteration costs.

    ``transfers``/``computes`` have shape ``(num_batches,
    num_contexts, num_layers)`` and hold exactly the per-layer values
    the scalar model's :meth:`~repro.core.layercosts.LayerCostModel
    .iteration_layer_times` would return for each cell.
    """

    stage: Stage
    batch_sizes: Tuple[int, ...]
    context_lens: Tuple[int, ...]
    transfers: np.ndarray
    computes: np.ndarray
    overlap: bool

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.transfers.shape

    def _index(self, batch: int, context_len: int) -> Tuple[int, int]:
        try:
            i = self.batch_sizes.index(int(batch))
            j = self.context_lens.index(int(context_len))
        except ValueError:
            raise ConfigurationError(
                f"shape (batch={batch}, context={context_len}) is not on "
                f"this grid (batches {self.batch_sizes}, contexts "
                f"{self.context_lens})"
            ) from None
        return i, j

    def parts_at(self, i: int, j: int) -> IterationParts:
        """The cell's per-layer decomposition as :class:`IterationParts`."""
        return IterationParts(
            transfers=tuple(float(x) for x in self.transfers[i, j]),
            computes=tuple(float(x) for x in self.computes[i, j]),
            overlap=self.overlap,
        )

    def parts(self, batch: int, context_len: int) -> IterationParts:
        """Decomposition for one (batch, context) value on the grid."""
        return self.parts_at(*self._index(batch, context_len))

    def totals(self, transfer_scale: float = 1.0) -> np.ndarray:
        """Iteration totals, shape ``(num_batches, num_contexts)``.

        Accumulates sequentially over the layer axis (not
        ``np.sum``'s pairwise reduction) so each total equals
        :meth:`IterationParts.total_s` bit for bit.
        """
        acc = np.zeros(self.transfers.shape[:2])
        for layer in range(self.transfers.shape[2]):
            transfer = self.transfers[:, :, layer] * transfer_scale
            compute = self.computes[:, :, layer]
            if self.overlap:
                acc += np.maximum(transfer, compute)
            else:
                acc += transfer + compute
        return acc

    def total_s(self, batch: int, context_len: int) -> float:
        """One cell's iteration total (seconds)."""
        i, j = self._index(batch, context_len)
        return float(self.totals()[i, j])


class LayerCostGrid:
    """Batched evaluation of one configuration's layer-cost arithmetic.

    One grid covers a whole spec *family*: every (batch, context)
    shape of the same host/placement/policy/GPU/gen-length
    configuration.  ``evaluate`` prices a full grid in one vectorized
    pass; fault injection never enters here (iteration parts are
    nominal by contract), so the spec's injector is stripped.
    """

    def __init__(self, spec: RunSpec) -> None:
        spec = spec.fault_free_spec()
        self.spec = spec
        self.placement = spec.placement
        self.config = spec.placement.config
        self.policy = spec.policy
        self.gpu_compute = GpuComputeModel(spec.gpu_spec)
        self.cpu_compute = CpuComputeModel()
        self._solver = TransferPathSolver(config=spec.host, pcie=spec.pcie)
        layers = self.placement.layers
        self._kinds: Tuple[LayerKind, ...] = tuple(
            layer.kind for layer in layers
        )
        self._weight_bytes: Tuple[int, ...] = tuple(
            layer.total_bytes for layer in layers
        )
        self._cpu_tier: Tuple[int, ...] = tuple(
            self.placement.layer_tier_bytes(index, DeviceKind.CPU)
            for index in range(len(layers))
        )
        self._disk_tier: Tuple[int, ...] = tuple(
            self.placement.layer_tier_bytes(index, DeviceKind.DISK)
            for index in range(len(layers))
        )
        self._cpu_tier_total = self.placement.tier_total_bytes(DeviceKind.CPU)
        self._kv_token_bytes = kv_bytes_per_token(
            self.config, self.policy.kv_dtype_bytes
        )
        self._kv_block_bytes = kv_bytes_per_token_per_block(
            self.config, self.policy.kv_dtype_bytes
        )
        #: working set -> per-layer transfer row, shared across calls.
        self._transfer_rows: Dict[int, np.ndarray] = {}

    @property
    def num_layers(self) -> int:
        return len(self._kinds)

    # ------------------------------------------------------------------
    # Scalar ingredients (shared with LayerCostModel)
    # ------------------------------------------------------------------

    def _working_set(self, batch: int, capacity_tokens: int) -> int:
        """This shape's host footprint (scalar model's
        ``_configure_working_set``)."""
        kv_total = (
            batch
            * self.policy.num_gpu_batches
            * capacity_tokens
            * self._kv_token_bytes
        )
        return resolve_working_set_bytes(
            self._cpu_tier_total,
            self.policy.compression.ratio,
            kv_total,
            self.policy.kv_cpu_fraction,
            self.spec.host.host_region.capacity_bytes,
        )

    def _transfer_row(self, working_set_bytes: int) -> np.ndarray:
        """Per-layer staging times under one working set, memoized."""
        row = self._transfer_rows.get(working_set_bytes)
        if row is None:
            self._solver.host_working_set_bytes = working_set_bytes
            ratio = self.policy.compression.ratio
            memo: Dict[Tuple[int, int], float] = {}
            row = np.empty(self.num_layers)
            for index, key in enumerate(
                zip(self._cpu_tier, self._disk_tier)
            ):
                time = memo.get(key)
                if time is None:
                    host, disk = staging_transfer_parts(
                        self._solver, key[0], key[1], ratio
                    )
                    time = host + disk
                    memo[key] = time
                row[index] = time
            self._transfer_rows[working_set_bytes] = row
        return row

    def _cpu_attention(
        self,
        batch: int,
        new_tokens: int,
        context_len: int,
        capacity_tokens: int,
        working_set_bytes: int,
    ) -> float:
        """One cell's CPU-attention seconds (layer-independent)."""
        block_batch = batch * self.policy.num_gpu_batches
        kv_read = (
            block_batch
            * min(context_len, capacity_tokens)
            * self._kv_block_bytes
        )
        self._solver.host_working_set_bytes = working_set_bytes
        return cpu_attention_seconds(
            self._solver,
            self.cpu_compute,
            batch=block_batch,
            new_tokens=new_tokens,
            context_len=context_len,
            hidden_size=self.config.hidden_size,
            kv_read_bytes=kv_read,
            kv_cpu_fraction=self.policy.kv_cpu_fraction,
            working_set_bytes=working_set_bytes,
        )

    def kv_parts(
        self, stage: Stage, batch: int, context_len: int
    ) -> KvParts:
        """One shape's host-resident KV (load, store) times.

        Calls the same scalar :func:`~repro.core.layercosts
        .kv_transfer_parts` arithmetic the backends use, with the
        shape's own KV plan and working-set-configured solver, so the
        grid surface stays float-identical to
        ``AnalyticBackend.kv_parts`` by construction.  Like
        :meth:`evaluate`, the prefill context axis is the prompt
        bucket; decode uses the spec's own prompt length.
        """
        if batch < 1 or context_len < 1:
            raise ConfigurationError(
                "batch and context length must be positive"
            )
        prompt = (
            context_len if stage is Stage.PREFILL else self.spec.prompt_len
        )
        plan = KvCachePlan(
            self.config,
            int(batch) * self.policy.num_gpu_batches,
            prompt,
            self.spec.gen_len,
            dtype_bytes=self.policy.kv_dtype_bytes,
        )
        self._solver.host_working_set_bytes = self._working_set(
            int(batch), prompt + self.spec.gen_len
        )
        read_s, write_s = kv_transfer_parts(
            self._solver,
            plan,
            stage=stage,
            context_len=int(context_len),
            prompt_len=prompt,
            kv_cpu_fraction=self.policy.kv_cpu_fraction,
            cpu_attention=self.policy.cpu_attention,
        )
        return KvParts(read_s=read_s, write_s=write_s)

    # ------------------------------------------------------------------
    # Vectorized kernels
    # ------------------------------------------------------------------

    def _kernel_grid(
        self,
        kind: LayerKind,
        weight_bytes: int,
        B: np.ndarray,
        N,
        C: np.ndarray,
    ) -> np.ndarray:
        """Roofline + dequant time grid for one (kind, weight) combo.

        Every expression mirrors :mod:`repro.models.flops` and
        :meth:`LayerCostModel.layer_compute_time` operation for
        operation (and in the same order), which is what guarantees
        float equality with the scalar path.
        """
        h = self.config.hidden_size
        if kind is LayerKind.MHA:
            proj = 8.0 * B * N * h * h
            attn = 4.0 * B * N * C * h
            flops = proj + attn
            kv_token_bytes = 2 * h * _ACT_BYTES
            kv_read = B * C * kv_token_bytes
            kv_write = B * N * kv_token_bytes
            act = 3.0 * B * N * h * _ACT_BYTES
            hbm = (weight_bytes + kv_read + kv_write) + act
        elif kind is LayerKind.FFN:
            f = self.config.ffn_dim
            flops = 4.0 * B * N * h * f
            act = B * N * (2 * h + f) * _ACT_BYTES
            hbm = weight_bytes + act
        elif kind is LayerKind.EMBED:
            flops = B * N * h
            rows = B * N * h * _ACT_BYTES
            hbm = 3.0 * rows
        elif kind is LayerKind.HEAD:
            v = self.config.vocab_size
            flops = 2.0 * B * h * v
            logits = B * v * 4
            hbm = weight_bytes + logits
        else:  # pragma: no cover - exhaustive over LayerKind
            raise ConfigurationError(f"unknown layer kind {kind!r}")
        roofline = np.maximum(
            flops / self.gpu_compute.effective_flops,
            hbm / self.gpu_compute.effective_hbm_bandwidth,
        )
        kernel = roofline + (
            self.gpu_compute.kernels_per_layer
            * self.gpu_compute.launch_overhead_s
        )
        time = self.policy.num_gpu_batches * kernel
        # Dequantization: per layer pass, amortized over micro-batches
        # (0.0 without weight compression, exactly as in the scalar
        # model's `time += dequant_time(...)`).
        if self.policy.compress_weights:
            ratio = self.policy.compression.ratio
            if kind is LayerKind.EMBED:
                rows = B * h * 2
                dequant_bytes = rows * ratio
            else:
                dequant_bytes = weight_bytes * ratio
            time = time + dequant_bytes / self.gpu_compute.dequant_throughput
        return time

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def evaluate(
        self,
        stage: Stage,
        batch_sizes: Sequence[int],
        context_lens: Sequence[int],
    ) -> CostGrid:
        """Price every (batch, context) cell of the grid in one pass.

        For ``Stage.PREFILL`` the context axis is the *prompt bucket*
        (prompt = context = new tokens, as in
        :meth:`IterationCostModel.prefill_parts`); for
        ``Stage.DECODE`` the spec's own prompt length governs the KV
        plan and the context axis is the attended-context bucket.
        """
        batches = tuple(int(b) for b in batch_sizes)
        contexts = tuple(int(c) for c in context_lens)
        if not batches or not contexts:
            raise ConfigurationError("grid axes must be non-empty")
        if len(set(batches)) != len(batches) or len(set(contexts)) != len(
            contexts
        ):
            raise ConfigurationError("grid axes must not repeat values")
        if min(batches) < 1:
            raise ConfigurationError("batch sizes must be positive")
        if min(contexts) < 1:
            raise ConfigurationError("context lengths must be positive")
        gen = self.spec.gen_len
        max_position = self.config.max_position
        if stage is Stage.PREFILL:
            worst = max(contexts)
            if worst + gen > max_position:
                raise ConfigurationError(
                    f"{self.config.name}: prompt {worst} + gen {gen} "
                    f"exceeds max position {max_position}"
                )
        elif self.spec.prompt_len + gen > max_position:
            raise ConfigurationError(
                f"{self.config.name}: prompt {self.spec.prompt_len} + gen "
                f"{gen} exceeds max position {max_position}"
            )

        nb, nc = len(batches), len(contexts)
        B = np.asarray(batches, dtype=np.int64).reshape(nb, 1)
        C = np.asarray(contexts, dtype=np.int64).reshape(1, nc)
        N = C if stage is Stage.PREFILL else 1

        # Kernels: one vectorized grid per distinct (kind, weight
        # bytes) combo, shared by every layer with that shape.
        computes = np.empty((nb, nc, self.num_layers))
        kernel_grids: Dict[Tuple[LayerKind, int], np.ndarray] = {}
        for index, (kind, weight) in enumerate(
            zip(self._kinds, self._weight_bytes)
        ):
            grid = kernel_grids.get((kind, weight))
            if grid is None:
                grid = self._kernel_grid(kind, weight, B, N, C)
                kernel_grids[(kind, weight)] = grid
            computes[:, :, index] = grid

        # Working sets: constant when the KV cache stays on the GPU
        # (the paper's experiments), per-cell otherwise.
        def capacity_at(j: int) -> int:
            prompt = contexts[j] if stage is Stage.PREFILL else (
                self.spec.prompt_len
            )
            return prompt + gen

        working_sets = np.empty((nb, nc), dtype=np.int64)
        for i, batch in enumerate(batches):
            for j in range(nc):
                working_sets[i, j] = self._working_set(
                    batch, capacity_at(j)
                )

        # Transfers: per-layer rows per distinct working set.
        transfers = np.empty((nb, nc, self.num_layers))
        for i in range(nb):
            for j in range(nc):
                transfers[i, j, :] = self._transfer_row(
                    int(working_sets[i, j])
                )

        # CPU attention rides on every MHA layer's compute time.
        if self.policy.cpu_attention:
            attention = np.empty((nb, nc))
            for i, batch in enumerate(batches):
                for j, context in enumerate(contexts):
                    new_tokens = context if stage is Stage.PREFILL else 1
                    attention[i, j] = self._cpu_attention(
                        batch,
                        new_tokens,
                        context,
                        capacity_at(j),
                        int(working_sets[i, j]),
                    )
            for index, kind in enumerate(self._kinds):
                if kind is LayerKind.MHA:
                    computes[:, :, index] = (
                        computes[:, :, index] + attention
                    )

        return CostGrid(
            stage=stage,
            batch_sizes=batches,
            context_lens=contexts,
            transfers=transfers,
            computes=computes,
            overlap=self.spec.overlap,
        )
