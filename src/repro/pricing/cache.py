"""Memoized iteration prices, shared across every pricing consumer.

The serving scheduler asks for the same ``(spec, stage, bucket)``
price thousands of times per run; before this cache existed each cost
model kept private ad-hoc dicts, so nothing was observable and
nothing could be invalidated.  :class:`PriceCache` is the one shared
table: hit/miss/eviction counters make pricing overhead visible in
the ``repro-serve`` report, an optional LRU bound keeps long sweeps
from growing without limit, and :meth:`invalidate` gives
re-planning (:meth:`~repro.core.engine.OffloadEngine
.replan_for_degradation`) an explicit way to drop prices that no
longer describe the hardware.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.metrics import Stage
from repro.errors import ConfigurationError
from repro.pricing.parts import IterationParts
from repro.pricing.spec import RunSpec

#: One memoized price's identity.
CacheKey = Tuple[RunSpec, str, int]


@dataclass(frozen=True)
class CacheStats:
    """Counters for one :class:`PriceCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "hit_rate": round(self.hit_rate, 4),
        }


class PriceCache:
    """LRU-bounded ``(RunSpec, stage, context bucket) -> IterationParts``."""

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ConfigurationError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, IterationParts]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        #: Optional mirror of the counters into a telemetry registry
        #: (``pricing/cache/*``); see :meth:`bind_telemetry`.
        self._metrics = None

    def bind_telemetry(self, registry) -> None:
        """Mirror this cache's counters into ``registry``.

        ``registry`` is a :class:`repro.telemetry.MetricsRegistry` (or
        a scoped view); counters land under ``pricing/cache/``.  The
        registry becomes the one place serving reports read cache
        counters from — binding also replays counts accumulated before
        the bind, so late attachment loses nothing.
        """
        scope = registry.scoped("pricing/cache")
        self._metrics = {
            "hits": scope.counter("hits"),
            "misses": scope.counter("misses"),
            "evictions": scope.counter("evictions"),
            "invalidations": scope.counter("invalidations"),
            "size": scope.gauge("size"),
        }
        self._metrics["hits"].inc(self._hits)
        self._metrics["misses"].inc(self._misses)
        self._metrics["evictions"].inc(self._evictions)
        self._metrics["invalidations"].inc(self._invalidations)
        self._metrics["size"].set(len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(spec: RunSpec, stage: Stage, bucket: int) -> CacheKey:
        return (spec, stage.value, int(bucket))

    def get(
        self, spec: RunSpec, stage: Stage, bucket: int
    ) -> Optional[IterationParts]:
        """Look one price up, counting the hit/miss."""
        key = self._key(spec, stage, bucket)
        parts = self._entries.get(key)
        if parts is None:
            self._misses += 1
            if self._metrics is not None:
                self._metrics["misses"].inc()
            return None
        self._hits += 1
        if self._metrics is not None:
            self._metrics["hits"].inc()
        self._entries.move_to_end(key)
        return parts

    def put(
        self, spec: RunSpec, stage: Stage, bucket: int, parts: IterationParts
    ) -> None:
        key = self._key(spec, stage, bucket)
        self._entries[key] = parts
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                if self._metrics is not None:
                    self._metrics["evictions"].inc()
        if self._metrics is not None:
            self._metrics["size"].set(len(self._entries))

    def get_or_compute(
        self,
        spec: RunSpec,
        stage: Stage,
        bucket: int,
        compute: Callable[[], IterationParts],
    ) -> IterationParts:
        """The memoization entry point backends are priced through."""
        parts = self.get(spec, stage, bucket)
        if parts is None:
            parts = compute()
            self.put(spec, stage, bucket, parts)
        return parts

    def invalidate(self, spec: Optional[RunSpec] = None) -> int:
        """Drop every entry (or only ``spec``'s); returns the count.

        Called by :meth:`OffloadEngine.replan_for_degradation
        <repro.core.engine.OffloadEngine.replan_for_degradation>`:
        once placement has been re-run against a degraded bandwidth
        map, previously memoized prices describe hardware that no
        longer exists.
        """
        if spec is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [key for key in self._entries if key[0] == spec]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self._invalidations += dropped
        if self._metrics is not None:
            self._metrics["invalidations"].inc(dropped)
            self._metrics["size"].set(len(self._entries))
        return dropped

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            size=len(self._entries),
        )
