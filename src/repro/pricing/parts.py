"""Per-iteration cost decomposition shared by every pricing backend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IterationParts:
    """One iteration's per-layer transfer/compute decomposition.

    The fault layer needs the split because faults act on *transfers*
    (bandwidth degradation, retries) while kernels keep running at
    nominal speed; with FlexGen overlap the slowdown only shows once a
    layer's (slowed) transfer outruns its compute, which is why
    :meth:`total_s` re-applies the per-layer ``max`` instead of
    scaling the summed total.
    """

    transfers: Tuple[float, ...]
    computes: Tuple[float, ...]
    overlap: bool

    @property
    def transfer_s(self) -> float:
        return sum(self.transfers)

    @property
    def compute_s(self) -> float:
        return sum(self.computes)

    def total_s(self, transfer_scale: float = 1.0) -> float:
        if self.overlap:
            return sum(
                max(transfer * transfer_scale, compute)
                for transfer, compute in zip(self.transfers, self.computes)
            )
        return sum(
            transfer * transfer_scale + compute
            for transfer, compute in zip(self.transfers, self.computes)
        )


@dataclass(frozen=True)
class KvParts:
    """One MHA layer's (load, store) times for the host-resident KV
    share of one iteration.

    Produced by the shared
    :func:`~repro.core.layercosts.kv_transfer_parts` arithmetic via
    ``kv_parts`` on either backend; ``repro.kv`` prices tier-resident
    reads/writes and migrations through the same solver paths.
    """

    read_s: float
    write_s: float

    @property
    def total_s(self) -> float:
        return self.read_s + self.write_s


@dataclass(frozen=True)
class FaultedIterationParts:
    """One iteration priced *through* the fault injector.

    ``parts`` carries the per-layer decomposition with every transfer
    already priced at its estimated virtual start time (slowdowns,
    retries, backoffs included); computes stay nominal — faults act on
    data movement, not kernels.
    """

    parts: IterationParts
    #: Layers whose transfer needed at least one retry.
    retried_layers: int = 0
    #: Virtual time spent in backoffs and wasted (failed) attempts.
    retry_overhead_s: float = 0.0

    def total_s(self) -> float:
        return self.parts.total_s()
