"""Per-iteration cost decomposition shared by every pricing backend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IterationParts:
    """One iteration's per-layer transfer/compute decomposition.

    The fault layer needs the split because faults act on *transfers*
    (bandwidth degradation, retries) while kernels keep running at
    nominal speed; with FlexGen overlap the slowdown only shows once a
    layer's (slowed) transfer outruns its compute, which is why
    :meth:`total_s` re-applies the per-layer ``max`` instead of
    scaling the summed total.
    """

    transfers: Tuple[float, ...]
    computes: Tuple[float, ...]
    overlap: bool

    @property
    def transfer_s(self) -> float:
        return sum(self.transfers)

    @property
    def compute_s(self) -> float:
        return sum(self.computes)

    def total_s(self, transfer_scale: float = 1.0) -> float:
        if self.overlap:
            return sum(
                max(transfer * transfer_scale, compute)
                for transfer, compute in zip(self.transfers, self.computes)
            )
        return sum(
            transfer * transfer_scale + compute
            for transfer, compute in zip(self.transfers, self.computes)
        )
