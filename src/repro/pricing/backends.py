"""Cost backends: how a :class:`~repro.pricing.spec.RunSpec` is priced.

Two implementations of one contract:

* :class:`EventBackend` — the authoritative path.  Builds the full
  discrete-event :class:`~repro.core.timing.TimingExecutor` for the
  spec and prices each iteration by *executing* it: one load op on the
  copy stream and one kernel op on the compute stream per layer, run
  through the :class:`~repro.sim.engine.SimEngine`.  This is the
  backend that can also run whole generations
  (:meth:`EventBackend.run`) and apply fault injection in virtual
  time.

* :class:`AnalyticBackend` — the closed form.  Instantiates the bare
  :class:`~repro.core.layercosts.LayerCostModel` (no executor, no
  event engine, no fault bookkeeping) and reads the per-layer
  transfer/compute times straight off the platform models.  Because
  the executor *inherits* that same class, analytic per-layer parts
  are **exactly** equal to the event backend's for fault-free runs —
  same code, not a tolerance — at a fraction of the cost, which is
  what lets the open-loop serving simulator price thousands of
  iterations per run.

``cost_backend(name)`` resolves a backend by name and raises a clean
:class:`~repro.errors.ConfigurationError` for anything unknown.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Dict,
    Generic,
    List,
    Optional,
    Protocol,
    TypeVar,
    Union,
    runtime_checkable,
)

from repro.core.layercosts import LayerCostModel
from repro.core.metrics import GenerationMetrics, Stage
from repro.errors import ConfigurationError
from repro.pricing.parts import FaultedIterationParts, IterationParts, KvParts
from repro.pricing.spec import RunSpec
from repro.sim.engine import SimEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.timing import TimingExecutor
    from repro.pricing.vector import LayerCostGrid

#: Backend names accepted by :func:`cost_backend` and the CLIs.
BACKEND_NAMES = ("analytic", "event")

_V = TypeVar("_V")


class SpecMemo(Generic[_V]):
    """Optionally LRU-bounded per-:class:`RunSpec` memo.

    The same discipline :class:`~repro.pricing.cache.PriceCache`
    applies to prices, applied to the backends' per-spec model and
    executor memos: unbounded by default (the historical behavior),
    but boundable so long sweeps over many shapes cannot grow without
    limit — with evictions counted so the pressure is observable.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ConfigurationError("memo maxsize must be >= 1")
        self.maxsize = maxsize
        self.evictions = 0
        self._entries: "OrderedDict[RunSpec, _V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec: RunSpec) -> Optional[_V]:
        value = self._entries.get(spec)
        if value is not None:
            self._entries.move_to_end(spec)
        return value

    def put(self, spec: RunSpec, value: _V) -> None:
        self._entries[spec] = value
        self._entries.move_to_end(spec)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1


def build_executor(spec: RunSpec) -> "TimingExecutor":
    """The one place run specs become discrete-event executors.

    Every former hand-rolled ``TimingExecutor(...)`` construction site
    routes through here; nothing outside :mod:`repro.pricing` (and the
    executor's own tests) should build one directly.
    """
    # Imported lazily: repro.core.engine is part of repro.core's
    # package init and itself consumes repro.pricing, so a module-level
    # import here would create a cycle.
    from repro.core.timing import TimingExecutor

    return TimingExecutor(
        host=spec.host,
        placement=spec.placement,
        policy=spec.policy,
        batch_size=spec.batch_size,
        prompt_len=spec.prompt_len,
        gen_len=spec.gen_len,
        gpu_spec=spec.gpu_spec,
        pcie=spec.pcie,
        spill_log=spec.spill_log,
        overlap=spec.overlap,
        injector=spec.injector,
        retry=spec.retry,
    )


@runtime_checkable
class CostBackend(Protocol):
    """What the serving cost model and experiments need from a pricer."""

    name: str

    def iteration_parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> IterationParts:
        """Per-layer (transfer, compute) times for one iteration."""
        ...


class AnalyticBackend:
    """Closed-form pricing straight off the platform models.

    ``maxsize`` optionally LRU-bounds the per-spec model memo (and the
    per-family grid memo); ``None`` keeps it unbounded.
    """

    name = "analytic"

    def __init__(self, maxsize: Optional[int] = None) -> None:
        self._models: SpecMemo[LayerCostModel] = SpecMemo(maxsize)
        self._grids: SpecMemo["LayerCostGrid"] = SpecMemo(maxsize)

    @property
    def cache_info(self) -> Dict[str, Optional[int]]:
        """Size/bound/eviction counters of the per-spec memos."""
        return {
            "entries": len(self._models) + len(self._grids),
            "evictions": self._models.evictions + self._grids.evictions,
            "maxsize": self._models.maxsize,
        }

    def layer_model(self, spec: RunSpec) -> LayerCostModel:
        """The (memoized) bare cost model for one spec."""
        model = self._models.get(spec)
        if model is None:
            model = LayerCostModel(
                host=spec.host,
                placement=spec.placement,
                policy=spec.policy,
                batch_size=spec.batch_size,
                prompt_len=spec.prompt_len,
                gen_len=spec.gen_len,
                gpu_spec=spec.gpu_spec,
                pcie=spec.pcie,
            )
            self._models.put(spec, model)
        return model

    def cost_grid(self, spec: RunSpec) -> "LayerCostGrid":
        """The (memoized) vectorized grid for one spec *family*.

        A grid prices every (batch, context-bucket) shape of one
        configuration, so it is keyed with the shape normalized away —
        all shape siblings share one grid.
        """
        from repro.pricing.vector import LayerCostGrid

        key = spec.fault_free_spec().with_shape(batch_size=1)
        grid = self._grids.get(key)
        if grid is None:
            grid = LayerCostGrid(spec)
            self._grids.put(key, grid)
        return grid

    def iteration_parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> IterationParts:
        transfers, computes = self.layer_model(spec).iteration_layer_times(
            stage, context_len
        )
        return IterationParts(
            transfers=tuple(transfers),
            computes=tuple(computes),
            overlap=spec.overlap,
        )

    def kv_parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> KvParts:
        """Per-MHA-layer (load, store) times for the host-resident KV
        share — the KV sibling of ``staging_transfer_parts``."""
        read_s, write_s = self.layer_model(spec).kv_traffic_times(
            stage, context_len
        )
        return KvParts(read_s=read_s, write_s=write_s)


class EventBackend:
    """Discrete-event pricing through the full timing executor."""

    name = "event"

    def __init__(self, maxsize: Optional[int] = None) -> None:
        self._executors: SpecMemo["TimingExecutor"] = SpecMemo(maxsize)
        #: Virtual-time trace of the most recent one-iteration pass,
        #: kept for inspection / Chrome-trace export.
        self.last_trace = None

    @property
    def cache_info(self) -> Dict[str, Optional[int]]:
        """Size/bound/eviction counters of the per-spec executor memo."""
        return {
            "entries": len(self._executors),
            "evictions": self._executors.evictions,
            "maxsize": self._executors.maxsize,
        }

    def executor(self, spec: RunSpec) -> "TimingExecutor":
        """The (memoized) full executor for one spec."""
        executor = self._executors.get(spec)
        if executor is None:
            executor = build_executor(spec)
            self._executors.put(spec, executor)
        return executor

    def iteration_parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> IterationParts:
        """Price one layer pass by executing it in virtual time.

        Mirrors Listing 1's stream structure for a single iteration:
        loads land in order on the ``h2d`` stream, each layer's kernel
        on the ``compute`` stream gated on its own load.  The per-op
        durations come from the executor's (inherited) cost model, so
        the extracted parts equal the analytic backend's exactly; what
        the event pass adds is the authoritative machinery — a real
        op-by-op schedule and a trace.
        """
        executor = self.executor(spec)
        engine = SimEngine()
        h2d = engine.stream("h2d")
        compute_stream = engine.stream("compute")
        load_ops: List = []
        compute_ops: List = []
        for index, layer in enumerate(executor.placement.layers):
            load = h2d.enqueue(
                executor.layer_transfer_time(index),
                label=f"load L{index}",
                category="transfer",
                meta={"layer": index, "stage": stage.value},
            )
            kernel = compute_stream.enqueue(
                executor.layer_compute_time(layer, stage, context_len),
                label=f"compute L{index}",
                category="compute",
                deps=[load],
                meta={"layer": index, "stage": stage.value},
            )
            load_ops.append(load)
            compute_ops.append(kernel)
        engine.run()
        self.last_trace = engine.trace
        return IterationParts(
            transfers=tuple(op.duration for op in load_ops),
            computes=tuple(op.duration for op in compute_ops),
            overlap=spec.overlap,
        )

    def kv_parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> KvParts:
        """Per-MHA-layer KV (load, store) times off the executor's
        inherited cost model — exactly equal to the analytic backend's."""
        read_s, write_s = self.executor(spec).kv_traffic_times(
            stage, context_len
        )
        return KvParts(read_s=read_s, write_s=write_s)

    def faulted_iteration_parts(
        self,
        spec: RunSpec,
        stage: Stage,
        context_len: int,
        now: float = 0.0,
    ) -> FaultedIterationParts:
        """One iteration priced *through* the spec's fault injector.

        Mirrors :meth:`iteration_parts`' stream structure (sequential
        loads on ``h2d``, each kernel gated on its own load), but every
        transfer is priced at its estimated virtual start time —
        ``now`` plus the priced durations of the loads ahead of it on
        the stream — exactly the static start arithmetic the full
        :class:`~repro.core.timing.TimingExecutor` run uses.  Host and
        disk shares are priced against their own target sets, with the
        disk hop starting after the (possibly slowed) host hop.
        Computes stay nominal: faults act on data movement, not
        kernels.  Raises :class:`~repro.errors.TransferError` when a
        transfer exhausts its retries, just like the executor.

        Without an injector this degrades to the nominal parts — and a
        zero-intensity schedule reprices every duration bit-identically
        (the injector returns ``nominal * 1.0`` and the nominal
        summation order is kept when nothing changed).
        """
        injector = spec.injector
        if injector is None:
            return FaultedIterationParts(
                parts=self.iteration_parts(spec, stage, context_len)
            )
        executor = self.executor(spec)
        retry = executor.retry

        def priced(targets, nominal: float, start: float):
            if nominal <= 0:
                return None
            return injector.price_transfer(targets, nominal, start, retry)

        transfers: List[float] = []
        computes: List[float] = []
        retried_layers = 0
        overhead_s = 0.0
        tail = now
        for index, layer in enumerate(executor.placement.layers):
            host_s, disk_s = executor.layer_transfer_parts(index)
            duration = host_s + disk_s
            host_out = priced(executor._host_targets, host_s, tail)
            priced_host = host_out.duration_s if host_out else 0.0
            disk_out = priced(
                executor._disk_targets, disk_s, tail + priced_host
            )
            priced_disk = disk_out.duration_s if disk_out else 0.0
            # Keep the nominal summation order when the faults were
            # inert, so zero-intensity pricing stays bit-exact.
            if priced_host != host_s or priced_disk != disk_s:
                duration = priced_host + priced_disk
            for outcome in (host_out, disk_out):
                if outcome is not None:
                    overhead_s += outcome.wasted_s + outcome.retry_delay_s
            if any(
                outcome.retried
                for outcome in (host_out, disk_out)
                if outcome is not None
            ):
                retried_layers += 1
            transfers.append(duration)
            computes.append(
                executor.layer_compute_time(layer, stage, context_len)
            )
            tail += duration
        return FaultedIterationParts(
            parts=IterationParts(
                transfers=tuple(transfers),
                computes=tuple(computes),
                overlap=spec.overlap,
            ),
            retried_layers=retried_layers,
            retry_overhead_s=overhead_s,
        )

    def run(self, spec: RunSpec) -> GenerationMetrics:
        """Execute the spec's whole generation (zig-zag schedule)."""
        return self.executor(spec).run()


_BACKENDS = {
    AnalyticBackend.name: AnalyticBackend,
    EventBackend.name: EventBackend,
}


def cost_backend(
    backend: Union[str, CostBackend], maxsize: Optional[int] = None
) -> CostBackend:
    """Resolve a backend by name (or pass a ready instance through).

    ``maxsize`` optionally LRU-bounds the constructed backend's
    per-spec memos; it is ignored for ready instances.
    """
    if isinstance(backend, str):
        try:
            factory = _BACKENDS[backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown pricing backend {backend!r}; choose from "
                f"{', '.join(BACKEND_NAMES)}"
            ) from None
        return factory(maxsize=maxsize)
    if isinstance(backend, CostBackend):
        return backend
    raise ConfigurationError(
        f"not a pricing backend: {backend!r} (expected a name from "
        f"{', '.join(BACKEND_NAMES)} or a CostBackend instance)"
    )
