"""``repro.pricing`` — the single cost authority.

Everything this reproduction reports — the paper's overlap/latency
figures, the HeLM-vs-All-CPU frontier, the open-loop serving and
fault ablations — is a function of iteration prices.  This package
owns how those prices are produced:

* :class:`RunSpec` — a frozen, hashable bundle of one run
  configuration (host / placement / policy / batch / lengths / GPU /
  faults).
* :func:`build_executor` — the one place run specs become
  discrete-event :class:`~repro.core.timing.TimingExecutor` instances.
* :class:`CostBackend` — the pricing contract, with two
  implementations: :class:`EventBackend` (discrete-event,
  authoritative) and :class:`AnalyticBackend` (closed-form, exactly
  equal per layer for fault-free runs, much cheaper).
* :class:`PriceCache` — shared memoization of
  ``(RunSpec, stage, context bucket) -> IterationParts`` with
  observable hit/miss/eviction counters and explicit invalidation on
  placement re-planning.

See ``docs/pricing.md`` for the backend contract and cache-keying
rules.
"""

from repro.pricing.parts import (
    FaultedIterationParts,
    IterationParts,
    KvParts,
)
from repro.pricing.spec import RunSpec
from repro.pricing.cache import CacheStats, PriceCache
from repro.pricing.backends import (
    BACKEND_NAMES,
    AnalyticBackend,
    CostBackend,
    EventBackend,
    SpecMemo,
    build_executor,
    cost_backend,
)
from repro.pricing.vector import CostGrid, LayerCostGrid
from repro.core.layercosts import LayerCostModel

__all__ = [
    "FaultedIterationParts",
    "IterationParts",
    "KvParts",
    "RunSpec",
    "CacheStats",
    "PriceCache",
    "BACKEND_NAMES",
    "CostBackend",
    "AnalyticBackend",
    "EventBackend",
    "SpecMemo",
    "build_executor",
    "cost_backend",
    "CostGrid",
    "LayerCostGrid",
    "LayerCostModel",
]
