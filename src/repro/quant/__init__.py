"""Group-wise quantization (FlexGen's 4-bit weight compression).

:mod:`~repro.quant.groupwise` is a real numpy implementation used by
the functional backend; :mod:`~repro.quant.spec` provides the
analytic size/cost descriptors the timing backend and placement
policies use for virtual tensors.
"""

from repro.quant.groupwise import (
    GroupwiseQuantized,
    dequantize,
    quantize,
)
from repro.quant.spec import CompressionSpec, FP16, INT4_GROUPWISE

__all__ = [
    "GroupwiseQuantized",
    "quantize",
    "dequantize",
    "CompressionSpec",
    "FP16",
    "INT4_GROUPWISE",
]
