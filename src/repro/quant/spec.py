"""Analytic compression descriptors for the timing backend."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuantizationError


@dataclass(frozen=True)
class CompressionSpec:
    """Describes how weights are stored/moved.

    ``compressed_bytes`` converts an fp16 footprint into the on-wire
    footprint; the timing backend also uses ``enabled`` to add the
    GPU-side dequantization cost.
    """

    enabled: bool
    bits: int = 4
    group_size: int = 64
    source_dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits > 8 * self.source_dtype_bytes:
            raise QuantizationError(f"invalid bit width {self.bits}")
        if self.group_size <= 0:
            raise QuantizationError("group size must be positive")

    @property
    def ratio(self) -> float:
        """Compressed bytes per source byte, including group metadata
        (an fp16 scale and min per group)."""
        if not self.enabled:
            return 1.0
        payload = self.bits / (8.0 * self.source_dtype_bytes)
        metadata = (2 * 2) / (self.group_size * self.source_dtype_bytes)
        return payload + metadata

    def compressed_bytes(self, nbytes: float) -> float:
        """On-wire footprint of an ``nbytes`` fp16 weight."""
        if nbytes < 0:
            raise QuantizationError("byte count must be >= 0")
        return nbytes * self.ratio


#: No compression: weights move as fp16.
FP16 = CompressionSpec(enabled=False)

#: FlexGen's default: 4-bit group-wise quantization, group size 64.
INT4_GROUPWISE = CompressionSpec(enabled=True, bits=4, group_size=64)
