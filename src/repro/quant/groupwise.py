"""Group-wise low-bit quantization, as in Q-BERT/FlexGen.

The array is flattened and cut into fixed-size groups; each group is
linearly quantized between its own min and max into ``bits``-bit
codes.  With 4 bits and group size 64 the compressed payload is
roughly 28% of fp16 (4 bits/element plus an fp16 scale and min per
group), matching FlexGen's "nearly a quarter" (Section IV-B).

The reconstruction error per element is bounded by half a step:
``(group_max - group_min) / (2**bits - 1) / 2`` — a property test in
the suite checks this bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class GroupwiseQuantized:
    """A quantized tensor payload."""

    codes: np.ndarray        # uint8, packed (two 4-bit codes per byte)
    scales: np.ndarray       # float32, one per group
    mins: np.ndarray         # float32, one per group
    shape: Tuple[int, ...]
    bits: int
    group_size: int
    count: int               # element count before padding

    @property
    def nbytes(self) -> int:
        """Size of the compressed representation in bytes (scales and
        mins stored as fp16 on the wire)."""
        return int(self.codes.nbytes + 2 * self.scales.size + 2 * self.mins.size)


def _validate(bits: int, group_size: int) -> None:
    if bits not in (2, 4, 8):
        raise QuantizationError(f"unsupported bit width {bits}")
    if group_size <= 0:
        raise QuantizationError("group size must be positive")
    if bits < 8 and (8 % bits) != 0:
        raise QuantizationError("bit width must pack evenly into bytes")


def quantize(
    array: np.ndarray, bits: int = 4, group_size: int = 64
) -> GroupwiseQuantized:
    """Quantize ``array`` group-wise to ``bits`` bits."""
    _validate(bits, group_size)
    flat = np.asarray(array, dtype=np.float32).reshape(-1)
    count = flat.size
    if count == 0:
        raise QuantizationError("cannot quantize an empty array")

    groups = -(-count // group_size)  # ceil division
    padded = np.zeros(groups * group_size, dtype=np.float32)
    padded[:count] = flat
    # Pad with the last real value so it does not distort the final
    # group's min/max range.
    if count < padded.size:
        padded[count:] = flat[-1]
    grouped = padded.reshape(groups, group_size)

    mins = grouped.min(axis=1)
    maxs = grouped.max(axis=1)
    levels = (1 << bits) - 1
    scales = (maxs - mins) / levels
    # Degenerate (constant) groups quantize to code 0 with scale 0;
    # use scale 1 internally to avoid dividing by zero.
    safe_scales = np.where(scales > 0, scales, 1.0)
    codes = np.rint((grouped - mins[:, None]) / safe_scales[:, None])
    codes = np.clip(codes, 0, levels).astype(np.uint8)

    packed = _pack(codes.reshape(-1), bits)
    return GroupwiseQuantized(
        codes=packed,
        scales=scales.astype(np.float32),
        mins=mins.astype(np.float32),
        shape=tuple(np.asarray(array).shape),
        bits=bits,
        group_size=group_size,
        count=count,
    )


def dequantize(quantized: GroupwiseQuantized) -> np.ndarray:
    """Reconstruct an fp16 array from a quantized payload."""
    codes = _unpack(
        quantized.codes,
        quantized.bits,
        quantized.scales.size * quantized.group_size,
    )
    grouped = codes.reshape(-1, quantized.group_size).astype(np.float32)
    values = grouped * quantized.scales[:, None] + quantized.mins[:, None]
    flat = values.reshape(-1)[: quantized.count]
    return flat.reshape(quantized.shape).astype(np.float16)


def _pack(codes: np.ndarray, bits: int) -> np.ndarray:
    if bits == 8:
        return codes.astype(np.uint8)
    per_byte = 8 // bits
    length = codes.size
    if length % per_byte:
        codes = np.concatenate(
            [codes, np.zeros(per_byte - length % per_byte, dtype=np.uint8)]
        )
    reshaped = codes.reshape(-1, per_byte)
    packed = np.zeros(reshaped.shape[0], dtype=np.uint8)
    for slot in range(per_byte):
        packed |= (reshaped[:, slot] & ((1 << bits) - 1)) << (slot * bits)
    return packed


def _unpack(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    if bits == 8:
        return packed[:count]
    per_byte = 8 // bits
    mask = (1 << bits) - 1
    out = np.zeros(packed.size * per_byte, dtype=np.uint8)
    for slot in range(per_byte):
        out[slot::per_byte] = (packed >> (slot * bits)) & mask
    return out[:count]


def roundtrip(
    array: np.ndarray, bits: int = 4, group_size: int = 64
) -> np.ndarray:
    """Quantize-then-dequantize: the values an int4-stored tensor
    yields when read back.  Used to simulate compressed storage (e.g.
    a quantized KV cache) inside otherwise-fp32 computations."""
    return dequantize(quantize(array, bits=bits, group_size=group_size)).astype(
        np.float32
    )


def quantize_kv_slice(
    kv,
    new_tokens: int,
    bits: int = 4,
    group_size: int = 64,
):
    """Round-trip the newest ``new_tokens`` entries of a (K, V) pair.

    Models FlexGen's compressed cache: each appended slice is stored
    group-wise quantized; older entries were already rounded when they
    were appended, so only the fresh slice changes.
    """
    if kv is None:
        return None
    if new_tokens <= 0:
        raise QuantizationError("new_tokens must be positive")
    keys, values = (np.array(part, dtype=np.float32, copy=True) for part in kv)
    keys[:, -new_tokens:, :] = roundtrip(
        keys[:, -new_tokens:, :], bits, group_size
    )
    values[:, -new_tokens:, :] = roundtrip(
        values[:, -new_tokens:, :], bits, group_size
    )
    return keys, values


def max_group_error(array: np.ndarray, bits: int, group_size: int) -> float:
    """The theoretical per-element reconstruction error bound."""
    flat = np.asarray(array, dtype=np.float32).reshape(-1)
    groups = -(-flat.size // group_size)
    padded = np.zeros(groups * group_size, dtype=np.float32)
    padded[:flat.size] = flat
    if flat.size < padded.size:
        padded[flat.size:] = flat[-1]
    grouped = padded.reshape(groups, group_size)
    spans = grouped.max(axis=1) - grouped.min(axis=1)
    levels = (1 << bits) - 1
    return float(spans.max() / levels / 2.0) if spans.size else 0.0
