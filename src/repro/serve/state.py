"""Scheduler loop state as data: checkpointable and crash-recoverable.

The continuous-batching scheduler used to keep its loop state in ~20
local variables inside ``run()``; this module reifies all of it into
one :class:`SchedulerState` so that

* every iteration boundary can be snapshotted to a deterministic,
  JSON-clean dict (:func:`snapshot_state` plus the engine/injector/KV
  sections assembled by the scheduler into a *checkpoint*);
* an injected crash (:class:`~repro.errors.SimulatedCrash`) can be
  recovered by rebuilding the state (:func:`restore_state`) and
  re-entering the loop — the resumed run replays the gap since the
  last snapshot bit for bit, because every stochastic consumer (the
  fault injector's seeded RNG) is part of the snapshot;
* the chaos sanitizer can check cross-layer invariants against one
  coherent view of the scheduler instead of poking at closures.

Nothing here prices anything or touches an RNG: state is pure data.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.serve.request import (
    RequestRecord,
    RequestSpec,
    ServeRequest,
    ShedRecord,
)
from repro.sim.engine import SimEngine
from repro.sim.trace import TraceRecord

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class IterationSample:
    """Queue/batch occupancy at one iteration boundary."""

    time_s: float
    kind: str  # "prefill" | "decode"
    batch: int
    waiting: int
    running_after: int
    #: Whether the scheduler was in degraded mode at this boundary.
    degraded: bool = False


@dataclass(frozen=True)
class CheckpointPlan:
    """When to snapshot a scheduler run, and when to crash it.

    ``every`` snapshots the state at each boundary whose number is a
    multiple of it (the boundary counter starts at 1; the first
    boundary is always snapshotted so a crash can never strand the
    run without a restore point).  ``crash_at`` raises
    :class:`~repro.errors.SimulatedCrash` — carrying the latest
    snapshot — at that boundary, before any of its work runs.
    ``sink`` optionally receives every snapshot taken.
    """

    every: int = 1
    crash_at: Optional[int] = None
    sink: Optional[Callable[[dict], None]] = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        if self.crash_at is not None and self.crash_at < 1:
            raise CheckpointError("crash_at must be >= 1")


@dataclass
class SchedulerState:
    """Every loop-carried variable of one scheduler pass."""

    #: The arrival stream, sorted by (arrival, id).  Client retries of
    #: shed requests are inserted back in here, so it can grow.
    pending: List[RequestSpec]
    #: Degraded-mode admission cap (== max_batch when healthy).
    effective_max: int
    #: The cost model iterations are priced from while re-planned.
    #: Runtime object — never serialized; rebuilt from the replanner
    #: at ``replan_severity`` on restore.
    active_costs: object
    next_arrival: int = 0
    #: (priority, arrival, id, request) heap of waiting requests.
    waiting: List[Tuple[int, float, int, ServeRequest]] = field(
        default_factory=list
    )
    running: List[ServeRequest] = field(default_factory=list)
    records: List[RequestRecord] = field(default_factory=list)
    shed_records: List[ShedRecord] = field(default_factory=list)
    timeline: List[IterationSample] = field(default_factory=list)
    prefills: int = 0
    decodes: int = 0
    gpu_busy: float = 0.0
    #: Iteration boundaries entered so far (1-based; drives the
    #: checkpoint cadence and sanitizer reporting).
    boundary: int = 0

    # Degraded-mode state machine.
    degraded_mode: bool = False
    replanned: bool = False
    replan_severity: float = 0.0
    #: The active re-plan was triggered by a structural tier loss (it
    #: resets when the loss clears, not on bandwidth recovery).
    structural_replan: bool = False
    degraded_streak: int = 0
    ok_streak: int = 0
    stall_streak: int = 0
    events: int = 0
    replans: int = 0
    stalls: int = 0
    stall_s: float = 0.0
    degraded_iterations: int = 0
    retried_iterations: int = 0
    retry_overhead_s: float = 0.0
    aborted: bool = False

    # Chaos accounting.
    #: request id -> client attempts so far (1 = original only).
    attempts: Dict[int, int] = field(default_factory=dict)
    tier_losses: int = 0
    rescued_requests: int = 0
    client_retries: int = 0
    timeouts: int = 0


# -- (de)serialization ----------------------------------------------------


def _spec_dict(spec: RequestSpec) -> Dict[str, object]:
    payload = {
        "request_id": spec.request_id,
        "arrival_s": spec.arrival_s,
        "prompt_len": spec.prompt_len,
        "gen_len": spec.gen_len,
        "qos_class": spec.qos_class,
    }
    # Prefix-sharing fields only when set: checkpoints of untagged
    # streams stay byte-identical to CHECKPOINT_VERSION 1 files.
    if spec.prefix_group is not None:
        payload["prefix_group"] = spec.prefix_group
        payload["prefix_len"] = spec.prefix_len
    return payload


def _spec_from(payload: Dict[str, object]) -> RequestSpec:
    group = payload.get("prefix_group")
    return RequestSpec(
        request_id=int(payload["request_id"]),
        arrival_s=float(payload["arrival_s"]),
        prompt_len=int(payload["prompt_len"]),
        gen_len=int(payload["gen_len"]),
        qos_class=str(payload["qos_class"]),
        prefix_group=None if group is None else str(group),
        prefix_len=int(payload.get("prefix_len", 0)),
    )


def _request_dict(request: ServeRequest) -> Dict[str, object]:
    return {
        "spec": _spec_dict(request.spec),
        "admitted_s": request.admitted_s,
        "token_times": list(request.token_times),
    }


def _request_from(
    payload: Dict[str, object],
    request_factory: Callable[[RequestSpec], ServeRequest],
) -> ServeRequest:
    request = request_factory(_spec_from(payload["spec"]))
    admitted = payload["admitted_s"]
    request.admitted_s = None if admitted is None else float(admitted)
    request.token_times = [float(t) for t in payload["token_times"]]
    return request


def snapshot_state(state: SchedulerState) -> Dict[str, object]:
    """``state`` as a deterministic dict (``active_costs`` excluded —
    it is rebuilt from the replanner on restore)."""
    return {
        "pending": [_spec_dict(spec) for spec in state.pending],
        "next_arrival": state.next_arrival,
        # The heap list verbatim: restoring the same list preserves
        # the heap invariant and the exact pop order.
        "waiting": [_request_dict(entry[3]) for entry in state.waiting],
        "running": [_request_dict(request) for request in state.running],
        "records": [
            dataclasses.asdict(record) for record in state.records
        ],
        "shed_records": [
            dataclasses.asdict(record) for record in state.shed_records
        ],
        "timeline": [
            dataclasses.asdict(sample) for sample in state.timeline
        ],
        "prefills": state.prefills,
        "decodes": state.decodes,
        "gpu_busy": state.gpu_busy,
        "boundary": state.boundary,
        "effective_max": state.effective_max,
        "degraded_mode": state.degraded_mode,
        "replanned": state.replanned,
        "replan_severity": state.replan_severity,
        "structural_replan": state.structural_replan,
        "degraded_streak": state.degraded_streak,
        "ok_streak": state.ok_streak,
        "stall_streak": state.stall_streak,
        "events": state.events,
        "replans": state.replans,
        "stalls": state.stalls,
        "stall_s": state.stall_s,
        "degraded_iterations": state.degraded_iterations,
        "retried_iterations": state.retried_iterations,
        "retry_overhead_s": state.retry_overhead_s,
        "aborted": state.aborted,
        "attempts": [
            [request_id, state.attempts[request_id]]
            for request_id in sorted(state.attempts)
        ],
        "tier_losses": state.tier_losses,
        "rescued_requests": state.rescued_requests,
        "client_retries": state.client_retries,
        "timeouts": state.timeouts,
    }


def restore_state(
    payload: Dict[str, object],
    request_factory: Callable[[RequestSpec], ServeRequest],
) -> SchedulerState:
    """Rebuild a :class:`SchedulerState` from :func:`snapshot_state`
    output.  ``active_costs`` is left ``None`` — the scheduler
    re-derives it (via its replanner at ``replan_severity``) before
    re-entering the loop."""
    state = SchedulerState(
        pending=[_spec_from(entry) for entry in payload["pending"]],
        effective_max=int(payload["effective_max"]),
        active_costs=None,
    )
    state.next_arrival = int(payload["next_arrival"])
    for entry in payload["waiting"]:
        request = _request_from(entry, request_factory)
        state.waiting.append(
            (
                request.qos.priority,
                request.spec.arrival_s,
                request.spec.request_id,
                request,
            )
        )
    state.running = [
        _request_from(entry, request_factory)
        for entry in payload["running"]
    ]
    state.records = [
        RequestRecord(**entry) for entry in payload["records"]
    ]
    state.shed_records = [
        ShedRecord(**entry) for entry in payload["shed_records"]
    ]
    state.timeline = [
        IterationSample(**entry) for entry in payload["timeline"]
    ]
    state.prefills = int(payload["prefills"])
    state.decodes = int(payload["decodes"])
    state.gpu_busy = float(payload["gpu_busy"])
    state.boundary = int(payload["boundary"])
    state.degraded_mode = bool(payload["degraded_mode"])
    state.replanned = bool(payload["replanned"])
    state.replan_severity = float(payload["replan_severity"])
    state.structural_replan = bool(payload["structural_replan"])
    state.degraded_streak = int(payload["degraded_streak"])
    state.ok_streak = int(payload["ok_streak"])
    state.stall_streak = int(payload["stall_streak"])
    state.events = int(payload["events"])
    state.replans = int(payload["replans"])
    state.stalls = int(payload["stalls"])
    state.stall_s = float(payload["stall_s"])
    state.degraded_iterations = int(payload["degraded_iterations"])
    state.retried_iterations = int(payload["retried_iterations"])
    state.retry_overhead_s = float(payload["retry_overhead_s"])
    state.aborted = bool(payload["aborted"])
    state.attempts = {
        int(request_id): int(count)
        for request_id, count in payload["attempts"]
    }
    state.tier_losses = int(payload["tier_losses"])
    state.rescued_requests = int(payload["rescued_requests"])
    state.client_retries = int(payload["client_retries"])
    state.timeouts = int(payload["timeouts"])
    return state


# -- engine (clock + trace) sections --------------------------------------


def snapshot_engine(engine: SimEngine) -> Dict[str, object]:
    """The parts of the sim engine a boundary checkpoint needs.

    At an iteration boundary no operation is in flight (the scheduler
    drains the GPU stream each iteration), so the clock position and
    the completed trace records capture the engine exactly.
    """
    return {
        "now": engine.now,
        "trace": [
            {
                "label": record.label,
                "stream": record.stream,
                "category": record.category,
                "start": record.start,
                "end": record.end,
                "meta": dict(record.meta),
            }
            for record in engine.trace.records
        ],
    }


def restore_engine(payload: Dict[str, object]) -> SimEngine:
    engine = SimEngine()
    for entry in payload["trace"]:
        engine.trace.record(
            TraceRecord(
                label=str(entry["label"]),
                stream=str(entry["stream"]),
                category=str(entry["category"]),
                start=float(entry["start"]),
                end=float(entry["end"]),
                meta=dict(entry["meta"]),
            )
        )
    engine.clock.advance_to(float(payload["now"]))
    return engine
