"""Per-request serving metrics: latency percentiles, SLO goodput.

Aggregates a scheduler run into the numbers a serving operator
watches — p50/p95/p99 TTFT, time-between-tokens, and end-to-end
latency, per QoS class and overall; goodput (SLO-compliant requests
per second); queue-depth and utilization summaries; and a saturation
flag using the same last-decile-vs-first-decile wait heuristic as
:mod:`repro.core.queueing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.serve.request import QosClass, RequestRecord
from repro.serve.scheduler import FaultSummary, SchedulerRun


@dataclass(frozen=True)
class LatencyStats:
    """Mean, max, and tail percentiles of one latency series.

    The zero-sample case is an explicit sentinel — every field is
    ``0.0`` and :attr:`count` is ``0`` — never NaN, so summaries stay
    JSON-clean and comparisons never trip on NaN != NaN.
    """

    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float = 0.0
    count: int = 0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        if not len(values):
            return cls(0.0, 0.0, 0.0, 0.0, max_s=0.0, count=0)
        array = np.asarray(values, dtype=float)
        p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
        return cls(
            mean_s=float(array.mean()),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
            max_s=float(array.max()),
            count=int(array.size),
        )

    def summary(self, prefix: str) -> Dict[str, float]:
        return {
            f"{prefix}_mean_s": self.mean_s,
            f"{prefix}_p50_s": self.p50_s,
            f"{prefix}_p95_s": self.p95_s,
            f"{prefix}_p99_s": self.p99_s,
            f"{prefix}_max_s": self.max_s,
            f"{prefix}_count": self.count,
        }


@dataclass(frozen=True)
class ClassReport:
    """One QoS class's share of the run."""

    name: str
    completed: int
    slo_attainment: float
    goodput_rps: float
    ttft: LatencyStats
    tbt: LatencyStats
    e2e: LatencyStats
    #: Requests of this class rejected by load shedding.  Shed
    #: requests count against :attr:`slo_attainment` (the tenant got
    #: no answer) but contribute no latency samples.
    shed: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "completed": self.completed,
            "shed": self.shed,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput_rps,
            **self.ttft.summary("ttft"),
            **self.tbt.summary("tbt"),
            **self.e2e.summary("e2e"),
        }


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate results of one open-loop serving simulation."""

    num_requests: int
    duration_s: float
    throughput_rps: float
    token_throughput_tps: float
    utilization: float
    mean_queue_depth: float
    peak_queue_depth: int
    mean_batch: float
    saturated: bool
    goodput_rps: float
    slo_attainment: float
    ttft: LatencyStats
    tbt: LatencyStats
    e2e: LatencyStats
    per_class: Dict[str, ClassReport]
    #: Requests rejected by load shedding / outage abort.
    shed_requests: int = 0
    #: Resilience accounting from the scheduler (all zero without
    #: fault injection).
    faults: FaultSummary = FaultSummary()

    def summary(self) -> Dict[str, object]:
        flat: Dict[str, object] = {
            "num_requests": self.num_requests,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "token_throughput_tps": self.token_throughput_tps,
            "utilization": self.utilization,
            "mean_queue_depth": self.mean_queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "mean_batch": self.mean_batch,
            "saturated": self.saturated,
            "goodput_rps": self.goodput_rps,
            "slo_attainment": self.slo_attainment,
            "shed_requests": self.shed_requests,
            **self.ttft.summary("ttft"),
            **self.tbt.summary("tbt"),
            **self.e2e.summary("e2e"),
        }
        flat["faults"] = {
            "degradation_events": self.faults.degradation_events,
            "degraded_iterations": self.faults.degraded_iterations,
            "retried_iterations": self.faults.retried_iterations,
            "retry_overhead_s": self.faults.retry_overhead_s,
            "replans": self.faults.replans,
            "stalls": self.faults.stalls,
            "stall_s": self.faults.stall_s,
            "shed_requests": self.faults.shed_requests,
            "aborted": self.faults.aborted,
            "tier_losses": self.faults.tier_losses,
            "rescued_requests": self.faults.rescued_requests,
            "client_retries": self.faults.client_retries,
            "timeouts": self.faults.timeouts,
        }
        flat["classes"] = {
            name: report.summary()
            for name, report in sorted(self.per_class.items())
        }
        return flat


def _class_report(
    name: str,
    records: Sequence[RequestRecord],
    duration_s: float,
    shed: int = 0,
) -> ClassReport:
    met = sum(1 for record in records if record.slo_met)
    offered = len(records) + shed
    return ClassReport(
        name=name,
        completed=len(records),
        slo_attainment=met / offered if offered else 0.0,
        goodput_rps=met / duration_s if duration_s > 0 else 0.0,
        ttft=LatencyStats.from_values([r.ttft_s for r in records]),
        tbt=LatencyStats.from_values(
            [r.tbt_s for r in records if r.gen_len > 1]
        ),
        e2e=LatencyStats.from_values([r.e2e_s for r in records]),
        shed=shed,
    )


def detect_saturation(
    waits_by_arrival: Sequence[float], service_ref_s: float
) -> bool:
    """Offered load above capacity: queueing delay keeps growing.

    Two signals, either of which flags saturation: the
    decile heuristic of :func:`repro.core.queueing.simulate_queue`
    (the last decile of admission waits, in arrival order, dwarfs the
    first decile plus one reference service time), and a wait-trend
    fit (admission waits grew by more than two service times across
    the run — the short-burst signature the deciles can miss).

    Runs shorter than two full deciles (20 samples) are never flagged:
    below that each "decile" is a single request, and one slow
    straggler at either end makes the heuristic fire on a workload
    that is nowhere near capacity.
    """
    if len(waits_by_arrival) < 20:
        return False
    waits = np.asarray(waits_by_arrival, dtype=float)
    decile = max(1, len(waits) // 10)
    head = float(waits[:decile].mean())
    tail = float(waits[-decile:].mean())
    if tail > 3.0 * (head + service_ref_s):
        return True
    slope = float(np.polyfit(np.arange(len(waits)), waits, 1)[0])
    growth = slope * (len(waits) - 1)
    return growth > 2.0 * service_ref_s and tail > head + service_ref_s


def build_metrics(
    run: SchedulerRun,
    classes: Sequence[QosClass],
    service_ref_s: float,
) -> ServingMetrics:
    """Aggregate one scheduler run into :class:`ServingMetrics`."""
    records = run.records
    duration = run.span_s
    tokens = sum(record.gen_len for record in records)
    met = sum(1 for record in records if record.slo_met)

    by_class: Dict[str, list] = {qos.name: [] for qos in classes}
    for record in records:
        by_class.setdefault(record.qos_class, []).append(record)
    shed_by_class: Dict[str, int] = {}
    for shed in run.shed:
        shed_by_class[shed.qos_class] = (
            shed_by_class.get(shed.qos_class, 0) + 1
        )
    per_class = {
        name: _class_report(
            name, class_records, duration, shed_by_class.get(name, 0)
        )
        for name, class_records in by_class.items()
        if class_records or shed_by_class.get(name)
    }

    waits = [
        record.wait_s
        for record in sorted(records, key=lambda r: (r.arrival_s, r.request_id))
    ]
    depths = [sample.waiting for sample in run.timeline]
    batches = [
        sample.batch for sample in run.timeline if sample.kind == "decode"
    ]
    return ServingMetrics(
        num_requests=len(records),
        duration_s=duration,
        throughput_rps=len(records) / duration if duration > 0 else 0.0,
        token_throughput_tps=tokens / duration if duration > 0 else 0.0,
        utilization=run.utilization,
        mean_queue_depth=float(np.mean(depths)) if depths else 0.0,
        peak_queue_depth=max(depths) if depths else 0,
        mean_batch=float(np.mean(batches)) if batches else 0.0,
        saturated=detect_saturation(waits, service_ref_s),
        goodput_rps=met / duration if duration > 0 else 0.0,
        slo_attainment=(
            met / (len(records) + len(run.shed))
            if records or run.shed
            else 0.0
        ),
        ttft=LatencyStats.from_values([r.ttft_s for r in records]),
        tbt=LatencyStats.from_values(
            [r.tbt_s for r in records if r.gen_len > 1]
        ),
        e2e=LatencyStats.from_values([r.e2e_s for r in records]),
        per_class=per_class,
        shed_requests=len(run.shed),
        faults=run.faults,
    )
