"""Per-iteration prefill/decode costs, priced through ``repro.pricing``.

Continuous batching schedules *iterations* (one forward pass over all
decoder layers), not whole closed-loop batches.  This module prices a
single iteration with the same platform models the paper's
:class:`~repro.core.timing.TimingExecutor` uses — weight transfers
via the interconnect path solver, kernels by the GPU roofline — by
asking a :class:`~repro.pricing.CostBackend` for the per-layer parts
of one :class:`~repro.pricing.RunSpec` at a (batch, context-bucket)
shape.  With FlexGen's overlap (Listing 1) a layer step takes
``max(transfer, compute)``; without it, their sum.

Prices are memoized in the engine's shared
:class:`~repro.pricing.PriceCache` (hit/miss counters surface in the
``repro-serve`` report), and the backend is selectable: ``analytic``
(closed-form, the serving default) or ``event`` (discrete-event,
authoritative) — exactly equal per layer for fault-free runs.

The KV-cache admission limit — how many sequences may decode
concurrently — comes from :mod:`repro.core.batching`'s GPU memory
plan via :meth:`OffloadEngine.max_batch_size`, which is what turns
the paper's HeLM-vs-All-CPU maximum-batch frontier into a
throughput/latency frontier under open load.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import OffloadEngine
from repro.core.metrics import Stage
from repro.errors import ConfigurationError
from repro.pricing import (
    CostBackend,
    IterationParts,
    PriceCache,
    RunSpec,
    cost_backend,
)

__all__ = ["IterationCostModel", "FixedCostModel", "IterationParts"]


class IterationCostModel:
    """Prices single prefill/decode iterations for one engine config."""

    def __init__(
        self,
        engine: OffloadEngine,
        bucket_tokens: int = 32,
        overlap: bool = True,
        backend: Union[str, CostBackend] = "analytic",
        cache: Optional[PriceCache] = None,
    ) -> None:
        if bucket_tokens < 1:
            raise ConfigurationError("bucket_tokens must be >= 1")
        # Prefill prompts are capped at max_position - gen_len so the
        # KV plan keeps room for the generated tokens; a gen_len at or
        # beyond max_position would make that cap non-positive and
        # every prefill bucket invalid — fail here, with the actual
        # numbers, instead of deep inside the bucket arithmetic.
        prefill_cap = engine.config.max_position - engine.gen_len
        if prefill_cap < 1:
            raise ConfigurationError(
                f"{engine.config.name}: gen_len {engine.gen_len} leaves "
                f"no room for a prompt under max position "
                f"{engine.config.max_position}; every prefill bucket "
                "would be non-positive"
            )
        self.engine = engine
        self.bucket_tokens = bucket_tokens
        self.overlap = overlap
        self.backend: CostBackend = cost_backend(backend)
        if cache is None:
            cache = getattr(engine, "price_cache", None) or PriceCache()
        self.cache = cache

    # -- helpers -----------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters of the shared price cache."""
        return self.cache.stats.as_dict()

    @property
    def max_position(self) -> int:
        return self.engine.config.max_position

    def _bucket(self, tokens: int, cap: int) -> int:
        """Round ``tokens`` up to the bucket grid, clipped to ``cap``."""
        step = self.bucket_tokens
        rounded = max(step, ((int(tokens) + step - 1) // step) * step)
        return min(rounded, cap)

    def _spec(self, batch: int, prompt_len: int) -> RunSpec:
        """The priceable spec for one (batch, prompt) shape.

        Nominal iteration parts are fault-independent — the scheduler
        prices live faults on top of them — so specs are built without
        the engine's injector, keeping cache keys stable across fault
        and fault-free runs of the same configuration.
        """
        return self.engine.run_spec(
            batch_size=batch,
            prompt_len=prompt_len,
            overlap=self.overlap,
            include_faults=False,
        )

    def _parts(
        self, spec: RunSpec, stage: Stage, context_len: int
    ) -> IterationParts:
        return self.cache.get_or_compute(
            spec,
            stage,
            context_len,
            lambda: self.backend.iteration_parts(spec, stage, context_len),
        )

    # -- public API --------------------------------------------------------

    def max_concurrency(self, limit: int = 512) -> int:
        """KV-gated number of concurrently decoding sequences.

        Uses the engine's reference sequence shape against the GPU
        memory plan of :mod:`repro.core.batching` (weights, staging,
        dequant scratch, pre-allocated KV, hidden buffers).
        """
        return self.engine.max_batch_size(limit=limit)

    def _bucket_ladder(self, cap: int) -> List[int]:
        """Every value ``_bucket`` can produce under ``cap``."""
        ladder = list(range(self.bucket_tokens, cap, self.bucket_tokens))
        if not ladder or ladder[-1] != cap:
            ladder.append(cap)
        return ladder

    def prewarm(
        self,
        batches: Sequence[int],
        prompt_lens: Sequence[int] = (),
        limit: int = 4096,
    ) -> int:
        """Fill the price cache for a session in one grid pass per stage.

        Prices the decode bucket ladder (and the prefill buckets of
        ``prompt_lens``) for every batch in ``batches`` through the
        analytic backend's vectorized
        :class:`~repro.pricing.LayerCostGrid` — the grid is
        float-for-float equal to the scalar backend, so a prewarmed
        run's metrics are bit-identical to a cold one; only the
        hit/miss counters differ.  Returns the number of entries
        written (0 when the backend has no grid, e.g. ``event``).

        ``limit`` bounds the total number of cells: the decode ladder
        is thinned (keeping its cap) rather than overflowing the
        shared cache.
        """
        grid_of = getattr(self.backend, "cost_grid", None)
        if grid_of is None:
            return 0
        batch_axis = sorted({int(b) for b in batches if int(b) >= 1})
        if not batch_axis:
            return 0
        contexts = self._bucket_ladder(self.max_position)
        while len(batch_axis) * len(contexts) > limit and len(contexts) > 1:
            contexts = contexts[::2] + (
                [] if contexts[-1] in contexts[::2] else [contexts[-1]]
            )
        written = 0
        spec = self._spec(batch_axis[0], self.engine.prompt_len)
        grid = grid_of(spec)
        decode = grid.evaluate(Stage.DECODE, batch_axis, contexts)
        for i, batch in enumerate(batch_axis):
            batch_spec = self._spec(batch, self.engine.prompt_len)
            for j, context in enumerate(contexts):
                self.cache.put(
                    batch_spec,
                    Stage.DECODE,
                    context,
                    decode.parts_at(i, j),
                )
                written += 1
        prefill_cap = self.max_position - self.engine.gen_len
        prompts = sorted(
            {
                self._bucket(prompt, prefill_cap)
                for prompt in prompt_lens
                if int(prompt) >= 1
            }
        )
        if prompts:
            prefill = grid.evaluate(Stage.PREFILL, batch_axis, prompts)
            for i, batch in enumerate(batch_axis):
                for j, prompt in enumerate(prompts):
                    self.cache.put(
                        self._spec(batch, prompt),
                        Stage.PREFILL,
                        prompt,
                        prefill.parts_at(i, j),
                    )
                    written += 1
        return written

    def prefill_parts(self, batch: int, prompt_len: int) -> IterationParts:
        """Per-layer decomposition of one prefill iteration."""
        if batch < 1 or prompt_len < 1:
            raise ConfigurationError("batch and prompt_len must be >= 1")
        # Leave room for at least one generated token in the KV plan.
        prompt = self._bucket(
            prompt_len, self.max_position - self.engine.gen_len
        )
        return self._parts(
            self._spec(batch, prompt), Stage.PREFILL, prompt
        )

    def decode_parts(self, batch: int, context_len: int) -> IterationParts:
        """Per-layer decomposition of one decode iteration."""
        if batch < 1 or context_len < 1:
            raise ConfigurationError("batch and context_len must be >= 1")
        context = self._bucket(context_len, self.max_position)
        return self._parts(
            self._spec(batch, self.engine.prompt_len), Stage.DECODE, context
        )

    def faulted_parts(
        self,
        kind: str,
        batch: int,
        tokens: int,
        now: float,
        injector=None,
        retry=None,
    ):
        """Per-layer fault pricing of one iteration, when possible.

        Asks the backend to walk the layer schedule pricing every
        layer's transfers through the engine's
        :class:`~repro.faults.injector.FaultInjector` individually
        (``EventBackend.faulted_iteration_parts``) — retries land on
        the layer that failed instead of inflating the whole
        iteration's lump-sum transfer time.  Returns a
        :class:`~repro.pricing.FaultedIterationParts`, or ``None``
        when the backend cannot price per layer or the engine has no
        injector, so callers can fall back to lump-sum pricing.

        Never cached: the result depends on ``now`` and consumes the
        injector's seeded RNG stream.  ``injector``/``retry`` default
        to the engine's own (the scheduler passes its live ones).
        """
        price = getattr(self.backend, "faulted_iteration_parts", None)
        if injector is None:
            injector = self.engine.injector
        if price is None or injector is None:
            return None
        if batch < 1 or tokens < 1:
            raise ConfigurationError("batch and tokens must be >= 1")
        if kind == "prefill":
            prompt = self._bucket(
                tokens, self.max_position - self.engine.gen_len
            )
            stage, context = Stage.PREFILL, prompt
        else:
            prompt = self.engine.prompt_len
            stage = Stage.DECODE
            context = self._bucket(tokens, self.max_position)
        spec = dataclasses.replace(
            self._spec(batch, prompt), injector=injector, retry=retry
        )
        return price(spec, stage, context, now)

    def prefill_time(self, batch: int, prompt_len: int) -> float:
        """One prefill iteration over ``batch`` admitted prompts."""
        return self.prefill_parts(batch, prompt_len).total_s()

    def decode_time(self, batch: int, context_len: int) -> float:
        """One decode iteration: one new token per running sequence."""
        return self.decode_parts(batch, context_len).total_s()

    def reference_service_time(
        self, prompt_len: int, gen_len: int, batch: int
    ) -> float:
        """Per-request service time at occupancy ``batch``.

        The prefill runs once for the request; every decode iteration
        is shared by the whole running batch, so only the full
        iteration cost (not its per-request share) bounds latency.
        Used as the saturation-detection yardstick.
        """
        prefill = self.prefill_time(1, prompt_len)
        decode = self.decode_time(max(1, batch), prompt_len + gen_len)
        return prefill + max(0, gen_len - 1) * decode


class FixedCostModel:
    """Constant-cost stand-in for tests and analytic studies."""

    def __init__(
        self,
        prefill_s: float = 1.0,
        decode_s: float = 0.5,
        slots: int = 4,
        transfer_fraction: float = 1.0,
    ) -> None:
        if prefill_s <= 0 or decode_s <= 0 or slots < 1:
            raise ConfigurationError(
                "costs must be positive and slots >= 1"
            )
        if not 0.0 <= transfer_fraction <= 1.0:
            raise ConfigurationError(
                "transfer_fraction must be in [0, 1]"
            )
        self.prefill_s = prefill_s
        self.decode_s = decode_s
        self.slots = slots
        #: Share of each iteration that is data movement (the part
        #: fault injection can slow down or force to retry).
        self.transfer_fraction = transfer_fraction

    def max_concurrency(self, limit: int = 512) -> int:
        return min(self.slots, limit)

    def _parts(self, total_s: float) -> IterationParts:
        transfer = total_s * self.transfer_fraction
        return IterationParts(
            transfers=(transfer,),
            computes=(total_s - transfer,),
            overlap=False,
        )

    def prefill_parts(self, batch: int, prompt_len: int) -> IterationParts:
        return self._parts(self.prefill_s)

    def decode_parts(self, batch: int, context_len: int) -> IterationParts:
        return self._parts(self.decode_s)

    def prefill_time(self, batch: int, prompt_len: int) -> float:
        return self.prefill_s

    def decode_time(self, batch: int, context_len: int) -> float:
        return self.decode_s

    def reference_service_time(
        self, prompt_len: int, gen_len: int, batch: int
    ) -> float:
        return self.prefill_s + max(0, gen_len - 1) * self.decode_s
