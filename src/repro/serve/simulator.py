"""The open-loop serving simulator, end to end.

Glues the pieces together: an :class:`~repro.core.engine.OffloadEngine`
supplies iteration costs and the KV admission limit, an arrival
process supplies the request stream, the continuous-batching
scheduler serves it in virtual time, and the metrics layer reduces
the run to operator-facing numbers.

Typical use::

    from repro.serve import simulate_serving

    result = simulate_serving(
        placement="helm", arrival="poisson", rate_rps=0.01,
        num_requests=200,
    )
    print(result.metrics.summary()["ttft_p99_s"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import os
import statistics

from repro.core.engine import OffloadEngine
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, make_injector
from repro.faults.models import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.serve.arrivals import (
    DEFAULT_MIX,
    ArrivalProcess,
    MmppProcess,
    PoissonProcess,
    TraceReplay,
    generate_requests,
)
from repro.serve.metrics import ServingMetrics, build_metrics
from repro.serve.request import (
    QosClass,
    RequestRecord,
    RequestSpec,
    ShedRecord,
)
from repro.serve.resilience import Replanner, ResiliencePolicy
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    IterationSample,
    SchedulerRun,
)
from repro.sim.trace import Trace
from repro.telemetry import Telemetry, resolve_telemetry
from repro.workloads.lengths import LengthDistribution


@dataclass(frozen=True)
class ServingResult:
    """One simulation's configuration echo, metrics, and artifacts."""

    setup: Dict[str, object]
    metrics: ServingMetrics
    records: Tuple[RequestRecord, ...]
    timeline: Tuple[IterationSample, ...]
    #: Full virtual-time trace (iterations + per-request spans); pass
    #: to :func:`repro.sim.chrome_trace.save_chrome_trace`.
    trace: Trace
    #: Requests rejected under degraded operation (empty without
    #: fault injection).
    shed: Tuple[ShedRecord, ...] = ()

    def summary(self) -> Dict[str, object]:
        return {**self.setup, **self.metrics.summary()}


class ServingSimulator:
    """Reusable simulator over one cost model and QoS class set."""

    def __init__(
        self,
        costs,
        classes: Sequence[QosClass] = tuple(qos for qos, _ in DEFAULT_MIX),
        max_batch: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        replanner: Optional[Replanner] = None,
        fault_targets: Optional[Sequence[str]] = None,
        telemetry: Optional[Telemetry] = None,
        prewarm: bool = True,
        kv=None,
        iteration_fault_pricing: bool = False,
        sanitizer=None,
        observer=None,
    ) -> None:
        self.costs = costs
        self.classes = tuple(classes)
        self.telemetry = telemetry
        #: Optional :class:`repro.chaos.SanitizerHarness`, observed at
        #: every scheduler boundary; its report lands in
        #: ``setup["sanitize"]``.
        self.sanitizer = sanitizer
        #: Optional :class:`repro.obs.ServeObserver`; its SLO report
        #: lands in ``setup["slo"]``.  ``None`` skips every hook.
        self.observer = observer
        #: Pre-price the session's (batch, bucket) grid in one
        #: vectorized pass before serving (no-op for cost models /
        #: backends without a grid).  Never changes a priced value —
        #: the grid is float-equal to the scalar backend — only the
        #: cache hit/miss split.
        self.prewarm = prewarm
        scheduler_kwargs: Dict[str, object] = {}
        if fault_targets is not None:
            scheduler_kwargs["fault_targets"] = tuple(fault_targets)
        self.scheduler = ContinuousBatchingScheduler(
            costs,
            self.classes,
            max_batch=max_batch,
            injector=injector,
            retry=retry,
            resilience=resilience,
            replanner=replanner,
            telemetry=telemetry,
            kv=kv,
            iteration_fault_pricing=iteration_fault_pricing,
            sanitizer=sanitizer,
            observer=observer,
            **scheduler_kwargs,
        )

    def run(
        self,
        specs: Sequence[RequestSpec],
        setup: Optional[Dict[str, object]] = None,
        checkpoint=None,
        restore: Optional[Dict[str, object]] = None,
    ) -> ServingResult:
        prewarmed = 0
        if self.prewarm and hasattr(self.costs, "prewarm"):
            batch_ladder = sorted(
                {
                    min(1 << power, self.scheduler.max_batch)
                    for power in range(
                        max(1, self.scheduler.max_batch).bit_length()
                    )
                }
                | {self.scheduler.max_batch}
            )
            prewarmed = self.costs.prewarm(
                batch_ladder,
                prompt_lens=[spec.prompt_len for spec in specs],
            )
        outcome: SchedulerRun = self.scheduler.run(
            specs, checkpoint=checkpoint, restore=restore
        )
        service_ref = self.costs.reference_service_time(
            prompt_len=int(
                statistics.fmean(spec.prompt_len for spec in specs)
            )
            or 1,
            gen_len=max(
                1, int(statistics.fmean(spec.gen_len for spec in specs))
            ),
            batch=self.scheduler.max_batch,
        )
        metrics = build_metrics(outcome, self.classes, service_ref)
        info: Dict[str, object] = {
            "max_batch": self.scheduler.max_batch,
            "service_ref_s": service_ref,
            "prefill_iterations": outcome.prefill_iterations,
            "decode_iterations": outcome.decode_iterations,
        }
        if self.scheduler.injector is not None:
            info["fault_stats"] = self.scheduler.injector.stats.as_dict()
        backend_name = getattr(self.costs, "backend_name", None)
        if backend_name is not None:
            info["pricing_backend"] = backend_name
        cache_stats = getattr(self.costs, "cache_stats", None)
        if cache_stats is not None:
            info["price_cache"] = cache_stats
        if self.scheduler.kv is not None:
            info["kv"] = self.scheduler.kv.snapshot()
        if self.sanitizer is not None:
            info["sanitize"] = self.sanitizer.report()
        if self.observer is not None:
            slo_report = self.observer.report()
            if slo_report is not None:
                info["slo"] = slo_report
        if prewarmed:
            info["prewarmed_prices"] = prewarmed
        backend_memo = getattr(
            getattr(self.costs, "backend", None), "cache_info", None
        )
        if backend_memo is not None:
            info["backend_memo"] = backend_memo
        if setup:
            info.update(setup)
        telemetry = resolve_telemetry(self.telemetry)
        if telemetry.enabled and backend_memo is not None:
            memo_scope = telemetry.scoped("pricing/backend")
            memo_scope.gauge("entries").set(backend_memo["entries"])
            memo_scope.gauge("evictions").set(backend_memo["evictions"])
        if telemetry.enabled:
            scope = telemetry.scoped("serve")
            scope.gauge("max_batch").set(self.scheduler.max_batch)
            scope.gauge("throughput_rps").set(metrics.throughput_rps)
            scope.gauge("goodput_rps").set(metrics.goodput_rps)
            scope.gauge("slo_attainment").set(metrics.slo_attainment)
            scope.gauge("utilization").set(metrics.utilization)
            scope.gauge("saturated").set(float(metrics.saturated))
        return ServingResult(
            setup=info,
            metrics=metrics,
            records=outcome.records,
            timeline=outcome.timeline,
            trace=outcome.trace,
            shed=outcome.shed,
        )


def make_arrival_process(
    arrival: str,
    rate_rps: float,
    burst_rate_rps: Optional[float] = None,
    mean_base_s: Optional[float] = None,
    mean_burst_s: Optional[float] = None,
    peak_rate_rps: Optional[float] = None,
    period_s: Optional[float] = None,
) -> ArrivalProcess:
    """Build a named arrival process.

    ``poisson`` and ``bursty`` are the original shapes; ``diurnal``
    and ``flash`` are the autoscaler's stress workloads
    (:class:`~repro.serve.arrivals.DiurnalProcess` /
    :class:`~repro.serve.arrivals.FlashCrowdProcess`).

    For ``bursty``, unspecified parameters default to a burst at 5x
    the base rate with dwell times of 50 base interarrivals in the
    base state and 10 in the burst state.  For ``diurnal`` and
    ``flash``, the peak defaults to 10x the base rate — the swing the
    ROADMAP's autoscaling scenario calls for; the diurnal period
    defaults to 200 base interarrivals, and the flash crowd starts
    after 50 with a 5/20/5 ramp/hold/decay.
    """
    if arrival == "poisson":
        return PoissonProcess(rate_rps=rate_rps)
    if arrival in ("bursty", "diurnal", "flash") and rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if arrival == "bursty":
        return MmppProcess(
            base_rate_rps=rate_rps,
            burst_rate_rps=burst_rate_rps or rate_rps * 5.0,
            mean_base_s=mean_base_s or 50.0 / rate_rps,
            mean_burst_s=mean_burst_s or 10.0 / rate_rps,
        )
    if arrival == "diurnal":
        from repro.serve.arrivals import DiurnalProcess

        return DiurnalProcess(
            base_rate_rps=rate_rps,
            peak_rate_rps=peak_rate_rps or rate_rps * 10.0,
            period_s=period_s or 200.0 / rate_rps,
        )
    if arrival == "flash":
        from repro.serve.arrivals import FlashCrowdProcess

        return FlashCrowdProcess(
            base_rate_rps=rate_rps,
            peak_rate_rps=peak_rate_rps or rate_rps * 10.0,
            start_s=50.0 / rate_rps,
            ramp_s=5.0 / rate_rps,
            hold_s=20.0 / rate_rps,
            decay_s=5.0 / rate_rps,
        )
    raise ConfigurationError(
        f"unknown arrival process {arrival!r}; expected poisson, bursty, "
        "diurnal, flash, or a TraceReplay via trace_specs"
    )


def simulate_serving(
    model: str = "opt-175b",
    host: str = "NVDRAM",
    placement: str = "helm",
    compress_weights: bool = True,
    arrival: Union[str, ArrivalProcess, TraceReplay] = "poisson",
    rate_rps: float = 0.01,
    burst_rate_rps: Optional[float] = None,
    num_requests: int = 200,
    prompt_lengths: Optional[LengthDistribution] = None,
    gen_lengths: Optional[LengthDistribution] = None,
    class_mix: Sequence[Tuple[QosClass, float]] = DEFAULT_MIX,
    seed: int = 0,
    max_batch: Optional[int] = None,
    overlap: bool = True,
    faults: Optional[Union[FaultSchedule, FaultInjector, str]] = None,
    fault_seed: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResiliencePolicy] = None,
    pricing_backend: str = "analytic",
    telemetry: Optional[Telemetry] = None,
    prewarm: bool = True,
    kv_policy: Optional[str] = None,
    iteration_fault_pricing: bool = False,
    sanitize: Optional[Union[bool, object]] = None,
    slo: Optional[Union[bool, str, object]] = None,
    observer=None,
    checkpoint=None,
    restore: Optional[Dict[str, object]] = None,
) -> ServingResult:
    """Simulate one placement under open-loop load, end to end.

    ``arrival`` may be a process name (``"poisson"``/``"bursty"``), a
    ready-made process, or a :class:`TraceReplay`; in the replay case
    the sampled lengths/classes come from the trace itself.

    ``faults`` (a :class:`FaultSchedule`, ready injector, or path to a
    schedule JSON) turns on fault injection: every iteration's
    transfer component is priced under the schedule, and
    ``resilience`` (default :data:`~repro.serve.resilience.DEFAULT_RESILIENCE`)
    governs shedding, batch shrinking, and placement re-planning.
    ``None`` keeps the fault-free path bit-identical to a plain run.

    ``pricing_backend`` selects how iterations are priced: the
    closed-form ``"analytic"`` backend (default — exactly equal to the
    discrete-event prices fault-free, at a fraction of the cost) or
    the authoritative ``"event"`` backend.

    ``prewarm`` (default on) pre-prices the session's (batch ladder ×
    context bucket) grid through the vectorized
    :class:`~repro.pricing.LayerCostGrid` before the first request is
    scheduled — one grid pass per stage instead of thousands of
    scalar misses.  It never changes a priced metric (the grid is
    float-for-float equal to the scalar backend) and is a no-op for
    the ``event`` backend.

    ``telemetry`` (default: the ambient
    :func:`repro.telemetry.current_telemetry`) receives registry
    counters from the engine, price cache, fault injector, and
    scheduler, plus the serving span tree.  The inert default records
    nothing, and an enabled instance never changes a priced metric.

    ``kv_policy`` attaches a :class:`repro.kv.KvCacheManager`:
    ``"static"`` reproduces today's split bit for bit (accounting and
    per-tier occupancy telemetry only), ``"hotness"`` /
    ``"hotness-inclusive"`` admit against real tier capacity with LRU
    demotion and passive promotion, surcharging iterations with the
    priced migrations and slow-tier reads.  ``None`` (default) leaves
    serving exactly as before ``repro.kv`` existed.

    ``iteration_fault_pricing`` (event backend only) prices every
    layer's transfers through the injector individually instead of
    one lump sum per iteration.

    ``sanitize`` attaches the cross-layer invariant sanitizer
    (:class:`repro.chaos.SanitizerHarness`): ``True`` builds a strict
    default harness, or pass a configured harness directly.  The
    default ``None`` consults the ``REPRO_SANITIZE`` environment
    variable.  The sanitizer never perturbs the run — a sanitized run
    is bit-identical to an unsanitized one — and its report lands in
    ``result.setup["sanitize"]``.

    ``slo`` attaches streaming SLO monitoring (:mod:`repro.obs`):
    ``True`` derives one objective per QoS class from the class's own
    latency bounds, a path loads an :class:`~repro.obs.SloSpec` JSON,
    or pass a spec directly.  ``observer`` injects a fully configured
    :class:`~repro.obs.ServeObserver` instead (mutually exclusive
    with ``slo``).  Either way the scheduler feeds it arrivals,
    completions, sheds, and boundaries; burn rates and windowed
    quantiles are published as ``slo/`` / ``obs/`` gauges, and the
    end-of-run report lands in ``result.setup["slo"]``.  The default
    ``None`` attaches nothing and leaves the run bit-identical.

    ``checkpoint`` (a :class:`~repro.serve.state.CheckpointPlan`)
    snapshots the full run state at iteration boundaries; ``restore``
    resumes from such a snapshot (the one carried by a raised
    :class:`~repro.errors.SimulatedCrash`), replaying the run
    bit-identically from the checkpointed boundary.  Resuming expects
    the *same* configuration arguments as the crashed call.
    """
    if iteration_fault_pricing and pricing_backend != "event":
        raise ConfigurationError(
            "iteration_fault_pricing needs pricing_backend='event' — "
            "only the event backend walks the per-layer schedule"
        )
    telemetry = resolve_telemetry(telemetry)
    engine = OffloadEngine(
        model=model,
        host=host,
        placement=placement,
        compress_weights=compress_weights,
        batch_size=1,
        pricing_backend=pricing_backend,
    )
    costs = engine.cost_model(overlap=overlap)
    if telemetry.enabled:
        engine.price_cache.bind_telemetry(telemetry.registry)
        scope = telemetry.scoped("engine")
        scope.gauge("spilled_layers").set(len(engine.spill_log))
        scope.gauge("host_oversubscribed").set(
            float(engine.host_oversubscribed)
        )
    injector = make_injector(faults, seed=fault_seed)
    replanner: Optional[Replanner] = None
    fault_targets: Optional[Tuple[str, ...]] = None
    if injector is not None:
        from repro.faults.models import HOST_TARGET, PCIE_TARGET
        from repro.serve.resilience import engine_replanner

        if telemetry.enabled:
            injector.bind_telemetry(telemetry.registry)
        fault_targets = (
            HOST_TARGET,
            PCIE_TARGET,
            engine.host.host_region.name,
            engine.host.label,
        )
        replanner = engine_replanner(engine, overlap=overlap)
    if isinstance(arrival, str):
        process: Union[ArrivalProcess, TraceReplay] = make_arrival_process(
            arrival, rate_rps, burst_rate_rps
        )
    else:
        process = arrival
    specs = generate_requests(
        process,
        num_requests,
        prompt_lengths=prompt_lengths or LengthDistribution.fixed(128),
        gen_lengths=gen_lengths or LengthDistribution.fixed(21),
        class_mix=class_mix,
        seed=seed,
    )
    if sanitize is None:
        sanitize = os.environ.get("REPRO_SANITIZE", "") not in (
            "",
            "0",
        )
    sanitizer = None
    if sanitize:
        if isinstance(sanitize, bool):
            from repro.chaos import SanitizerHarness

            sanitizer = SanitizerHarness()
        else:
            sanitizer = sanitize
    if slo is not None and observer is not None:
        raise ConfigurationError(
            "pass either slo= (a spec/path/True) or observer= (a "
            "configured ServeObserver), not both"
        )
    if slo is not None:
        from repro.obs import ServeObserver, SloSpec

        if isinstance(slo, bool):
            if slo:
                spec = SloSpec.for_classes(
                    tuple(qos for qos, _ in class_mix)
                )
                observer = ServeObserver(spec=spec)
        elif isinstance(slo, str):
            observer = ServeObserver(spec=SloSpec.load(slo))
        else:
            observer = ServeObserver(spec=slo)
    kv = None
    if kv_policy is not None:
        from repro.kv import KvCacheManager
        from repro.kv import kv_policy as resolve_kv_policy

        kv = KvCacheManager(
            engine, resolve_kv_policy(kv_policy), telemetry=telemetry
        )
    simulator = ServingSimulator(
        costs,
        classes=tuple(qos for qos, _ in class_mix),
        max_batch=max_batch,
        injector=injector,
        retry=retry,
        resilience=resilience,
        replanner=replanner,
        fault_targets=fault_targets,
        telemetry=telemetry,
        prewarm=prewarm,
        kv=kv,
        iteration_fault_pricing=iteration_fault_pricing,
        sanitizer=sanitizer,
        observer=observer,
    )
    setup = {
        "model": model,
        "host": host,
        "placement": placement,
        "compress_weights": compress_weights,
        "arrival": arrival if isinstance(arrival, str) else type(arrival).__name__,
        "rate_rps": rate_rps,
        "num_requests": len(specs),
        "seed": seed,
        "pricing_backend": costs.backend_name,
    }
    if injector is not None:
        setup["faults"] = (
            faults if isinstance(faults, str) else "schedule"
        )
        setup["fault_seed"] = injector.seed
    if kv is not None:
        setup["kv_policy"] = kv.policy.name
    return simulator.run(
        specs, setup=setup, checkpoint=checkpoint, restore=restore
    )
