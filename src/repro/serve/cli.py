"""``repro-serve`` — open-loop online serving simulation from the shell.

Examples::

    repro-serve --placement helm --arrival poisson --rate 2.0
    repro-serve --placement allcpu --arrival bursty --rate 0.1 \
        --requests 300 --classes interactive:0.7,batch:0.3
    repro-serve --placement helm --rate 0.005 --vary-lengths \
        --save-trace stream.jsonl --chrome-trace run.json
    repro-serve --replay stream.jsonl --placement allcpu --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.fleet.router import ROUTER_NAMES
from repro.kv import KV_POLICY_NAMES
from repro.memory.hierarchy import HOST_CONFIG_LABELS
from repro.serve.arrivals import TraceReplay, load_trace, save_trace
from repro.serve.request import DEFAULT_CLASSES, STANDARD, QosClass
from repro.serve.resilience import NO_RESILIENCE
from repro.serve.simulator import simulate_serving
from repro.telemetry import Telemetry
from repro.telemetry.summary import cache_stats_line
from repro.workloads.lengths import LengthDistribution


def parse_class_mix(spec: str) -> Tuple[Tuple[QosClass, float], ...]:
    """Parse ``name:weight,name:weight`` over the predefined classes."""
    known = {qos.name: qos for qos in DEFAULT_CLASSES}
    mix: List[Tuple[QosClass, float]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition(":")
        if name not in known:
            raise ConfigurationError(
                f"unknown QoS class {name!r}; available: "
                f"{', '.join(sorted(known))}"
            )
        try:
            weight = float(weight_text) if weight_text else 1.0
        except ValueError:
            raise ConfigurationError(
                f"bad class weight in {part!r}"
            ) from None
        mix.append((known[name], weight))
    if not mix:
        raise ConfigurationError(f"empty class mix {spec!r}")
    return tuple(mix)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Simulate an open-loop online serving deployment (continuous "
            "batching, multi-tenant QoS) of out-of-core LLM inference on "
            "heterogeneous host memory."
        ),
    )
    parser.add_argument("--model", default="opt-175b")
    parser.add_argument(
        "--host", default="NVDRAM",
        help=f"one of {', '.join(HOST_CONFIG_LABELS)}",
    )
    parser.add_argument(
        "--placement", default="helm", help="baseline | helm | allcpu"
    )
    parser.add_argument(
        "--compress", action=argparse.BooleanOptionalAction, default=True,
        help="4-bit group-wise weight quantization (default: on)",
    )
    parser.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "bursty", "diurnal", "flash"),
        help="arrival process (ignored with --replay): poisson, "
        "bursty (MMPP), diurnal (sinusoidal trough-to-peak swing), "
        "flash (linear flash-crowd ramp/hold/decay)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.01,
        help="mean arrival rate, requests/s (diurnal/flash: the "
        "trough/base rate)",
    )
    parser.add_argument(
        "--burst-rate", type=float, default=None,
        help="bursty arrivals: burst-state rate (default 5x --rate)",
    )
    parser.add_argument(
        "--peak-rate", type=float, default=None,
        help="diurnal/flash arrivals: peak rate (default 10x --rate)",
    )
    parser.add_argument(
        "--period", type=float, default=None,
        help="diurnal arrivals: full trough-peak-trough period, "
        "seconds (default 200 base interarrivals)",
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--prompt-len", default="128",
        help="prompt length distribution: N | fixed:N | uniform:LO:HI | "
        "lognormal:MEDIAN[:SIGMA]",
    )
    parser.add_argument(
        "--gen-len", default="21",
        help="generation length distribution (same formats)",
    )
    parser.add_argument(
        "--vary-lengths", action="store_true",
        help="shortcut: lognormal lengths around --prompt-len/--gen-len",
    )
    parser.add_argument(
        "--classes", default=STANDARD.name,
        help="tenant mix, e.g. 'interactive:0.7,batch:0.3' "
        f"(classes: {', '.join(sorted(q.name for q in DEFAULT_CLASSES))})",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="override the KV-cache admission limit",
    )
    parser.add_argument(
        "--pricing-backend", default="analytic",
        help="iteration pricing backend: analytic (closed-form, default) "
        "or event (discrete-event, authoritative)",
    )
    parser.add_argument(
        "--prewarm", action=argparse.BooleanOptionalAction, default=True,
        help="pre-price the session's (batch, bucket) grid in one "
        "vectorized pass before serving (default: on; analytic "
        "backend only — never changes a priced metric)",
    )
    parser.add_argument(
        "--kv-policy", default=None, choices=KV_POLICY_NAMES,
        help="attach the tiered KV-cache manager: static (today's "
        "split, accounting only), hotness (LRU demotion + passive "
        "promotion against real tier capacity), or hotness-inclusive "
        "(shadow copies make demotions free)",
    )
    parser.add_argument(
        "--iteration-fault-pricing", action="store_true",
        help="with --faults and --pricing-backend event: price every "
        "layer's transfers through the injector individually instead "
        "of one lump sum per iteration",
    )
    parser.add_argument(
        "--faults", metavar="FILE", default=None,
        help="fault schedule JSON: inject transfer faults (degradation "
        "windows, transient failures, outages) into the run",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="override the schedule's RNG seed for the fault process",
    )
    parser.add_argument(
        "--resilience", action=argparse.BooleanOptionalAction, default=True,
        help="graceful degradation (shed/shrink/re-plan) under --faults "
        "(default: on; --no-resilience prices faults but never reacts)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the cross-layer invariant sanitizer at every "
        "scheduler boundary (clock, request conservation, KV "
        "accounting, lost tiers, cache stats, pricing agreement); "
        "never changes a priced metric, aborts on the first "
        "violation (also: REPRO_SANITIZE=1)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="fleet size: run N identically configured replicas behind "
        "a router (default 1 = the single-engine stack, bit-identical "
        "to previous releases)",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="planner-in-the-loop autoscaling: a deterministic "
        "controller re-plans capacity every interval from streaming "
        "arrival/TTFT telemetry and adds or drains replicas "
        "(--replicas sets the initial size; see docs/fleet.md)",
    )
    parser.add_argument(
        "--autoscale-min", type=int, default=1, metavar="N",
        help="autoscale floor (default 1)",
    )
    parser.add_argument(
        "--autoscale-max", type=int, default=4, metavar="N",
        help="autoscale ceiling (default 4)",
    )
    parser.add_argument(
        "--autoscale-interval", type=float, default=60.0, metavar="S",
        help="control interval, virtual seconds (default 60)",
    )
    parser.add_argument(
        "--autoscale-cooldown", type=float, default=120.0, metavar="S",
        help="minimum virtual seconds between applied scaling "
        "changes (default 120)",
    )
    parser.add_argument(
        "--shards", default="1",
        help="shard each replica's placement: TP or TPxPP "
        "(e.g. 2 or 2x2; default 1 = unsharded)",
    )
    parser.add_argument(
        "--router", default="round-robin", choices=ROUTER_NAMES,
        help="fleet routing policy (only meaningful with --replicas > 1)",
    )
    parser.add_argument(
        "--prefix-groups", type=int, default=0,
        help="tag the sampled stream with N skewed shared-prefix "
        "tenant groups (multi-tenant prefix locality)",
    )
    parser.add_argument(
        "--prefix-cache", type=int, default=0, metavar="GROUPS",
        help="per-replica prefix cache capacity in resident groups "
        "(0 = off); hits prefill only the prompt suffix",
    )
    parser.add_argument(
        "--slo", metavar="FILE", nargs="?", const="default", default=None,
        help="streaming SLO monitoring (repro.obs): FILE is an SloSpec "
        "JSON (see docs/observability.md); bare --slo derives one "
        "objective per configured QoS class from the class's own "
        "latency bounds.  Burn-rate alerts stream as slo_alert span "
        "events, windowed gauges land under obs/ and slo/, and the "
        "report is printed below the run summary",
    )
    parser.add_argument(
        "--replay", metavar="FILE",
        help="replay a JSONL request trace instead of sampling arrivals",
    )
    parser.add_argument(
        "--save-trace", metavar="FILE",
        help="write the (sampled or replayed) request stream as JSONL",
    )
    parser.add_argument(
        "--chrome-trace", metavar="FILE",
        help="write the virtual-time run as chrome://tracing JSON "
        "(request spans overlaid on the engine's compute/transfer "
        "tracks)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the summary as JSON"
    )
    parser.add_argument(
        "--telemetry-out", metavar="FILE",
        help="write the run's telemetry bundle (metrics + spans) as "
        "JSON — or JSONL when FILE ends in .jsonl, tailable with "
        "'repro-telemetry summary --follow'",
    )
    return parser


def _length_dist(spec: str, vary: bool) -> LengthDistribution:
    dist = LengthDistribution.parse(spec)
    if vary and dist.kind == "fixed":
        return LengthDistribution.lognormal(median=float(dist.low))
    return dist


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def _print_report(result, telemetry: Optional[Telemetry] = None) -> None:
    metrics = result.metrics
    setup = result.setup
    print(
        f"{setup['model']} on {setup['host']}, {setup['placement']} "
        f"(max batch {setup['max_batch']}), {setup['arrival']} arrivals "
        f"@ {setup['rate_rps']} req/s, {metrics.num_requests} requests:"
    )
    rows = [
        ("requests completed", f"{metrics.num_requests}"),
        ("simulated span", f"{metrics.duration_s:.1f} s"),
        ("throughput", f"{metrics.throughput_rps:.4f} req/s "
         f"({metrics.token_throughput_tps:.3f} tok/s)"),
        ("goodput (SLO met)", f"{metrics.goodput_rps:.4f} req/s "
         f"({metrics.slo_attainment:.1%} attainment)"),
        ("GPU utilization", f"{metrics.utilization:.1%}"),
        ("mean/peak queue depth",
         f"{metrics.mean_queue_depth:.1f} / {metrics.peak_queue_depth}"),
        ("mean decode batch", f"{metrics.mean_batch:.1f}"),
        ("saturated", str(metrics.saturated)),
    ]
    if telemetry is not None:
        cache_line = cache_stats_line(
            telemetry.registry, backend=setup.get("pricing_backend")
        )
        if cache_line is not None:
            rows.append(("pricing", cache_line))
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"  {name:<{width}} : {value}")
    print("  latency (p50 / p95 / p99, seconds):")
    for label, stats in (
        ("TTFT", metrics.ttft), ("TBT", metrics.tbt), ("E2E", metrics.e2e),
    ):
        print(
            f"    {label:<4} : {_fmt(stats.p50_s)} / {_fmt(stats.p95_s)} / "
            f"{_fmt(stats.p99_s)}"
        )
    if len(metrics.per_class) > 1:
        print("  per QoS class:")
        for name, report in sorted(metrics.per_class.items()):
            shed = f", {report.shed} shed" if report.shed else ""
            print(
                f"    {name:<12} : {report.completed} done{shed}, "
                f"SLO {report.slo_attainment:.1%}, "
                f"TTFT p95 {_fmt(report.ttft.p95_s)} s, "
                f"TBT p95 {_fmt(report.tbt.p95_s)} s"
            )
    kv_info = setup.get("kv")
    if kv_info:
        occupancy = ", ".join(
            f"{tier} {used / 2**30:.2f} GiB"
            for tier, used in kv_info["occupancy_bytes"].items()
        )
        print(
            f"  kv ({kv_info['policy']}): {kv_info['migrations']} "
            f"migration(s), {kv_info['migration_bytes'] / 2**30:.2f} GiB "
            f"moved; final occupancy: {occupancy}"
        )
    faults = metrics.faults
    if "fault_stats" in setup:
        print("  faults:")
        print(
            f"    degradation events {faults.degradation_events} "
            f"(re-plans {faults.replans}), degraded iterations "
            f"{faults.degraded_iterations}, retried iterations "
            f"{faults.retried_iterations} "
            f"({faults.retry_overhead_s:.3f} s overhead)"
        )
        print(
            f"    stalls {faults.stalls} ({faults.stall_s:.1f} s), "
            f"shed {faults.shed_requests} request(s), "
            f"aborted {faults.aborted}"
        )
        if faults.tier_losses or faults.timeouts or faults.client_retries:
            print(
                f"    tier losses {faults.tier_losses}, rescued "
                f"{faults.rescued_requests} request(s), timeouts "
                f"{faults.timeouts}, client retries "
                f"{faults.client_retries}"
            )
    sanitize = setup.get("sanitize")
    if sanitize:
        checked = sum(sanitize["checks"].values())
        print(
            f"  sanitizer: {checked} check(s) over "
            f"{sanitize['boundaries']} boundaries, "
            f"{len(sanitize['violations'])} violation(s)"
        )
    if setup.get("slo"):
        _print_slo_report(setup["slo"])


def _print_slo_report(report) -> None:
    alerts = report.get("alerts", ())
    fired = [a for a in alerts if a.get("firing")]
    first = report.get("first_alert_s")
    print("  slo:")
    for objective in report.get("objectives", ()):
        status = "MET" if objective["met"] else "MISSED"
        firing = ", burn-rate alert FIRING" if objective["firing"] else ""
        print(
            f"    {objective['name']:<16} : {status} "
            f"({objective['attainment']:.2%} vs target "
            f"{objective['target']:.0%}, "
            f"{int(objective['good'])} good / "
            f"{int(objective['bad'])} bad){firing}"
        )
    if fired:
        print(
            f"    alerts: {len(fired)} raised "
            f"(first at t={first:.1f} s virtual)"
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        class_mix = parse_class_mix(args.classes)
        if args.replay:
            specs = load_trace(args.replay)
            arrival = TraceReplay(specs=specs)
            # Replayed requests keep their recorded classes; make sure
            # every class named by the trace is configured.
            named = {spec.qos_class for spec in specs}
            known = {qos.name for qos, _ in class_mix}
            missing = named - known
            if missing:
                class_mix = class_mix + tuple(
                    (qos, 0.0)
                    for qos in DEFAULT_CLASSES
                    if qos.name in missing
                )
            num_requests = args.requests if args.requests else 0
        else:
            arrival = args.arrival
            if args.peak_rate is not None or args.period is not None:
                from repro.serve.simulator import make_arrival_process

                arrival = make_arrival_process(
                    args.arrival,
                    args.rate,
                    burst_rate_rps=args.burst_rate,
                    peak_rate_rps=args.peak_rate,
                    period_s=args.period,
                )
            num_requests = args.requests

        tp_text, _, pp_text = args.shards.partition("x")
        tensor_parallel = int(tp_text)
        pipeline_parallel = int(pp_text) if pp_text else 1
        fleet_mode = (
            args.replicas > 1
            or tensor_parallel > 1
            or pipeline_parallel > 1
            or args.prefix_groups > 0
            or args.prefix_cache > 0
            or args.autoscale
        )
        autoscale_policy = None
        if args.autoscale:
            from repro.autoscale import AutoscalePolicy

            autoscale_policy = AutoscalePolicy(
                interval_s=args.autoscale_interval,
                cooldown_s=args.autoscale_cooldown,
                min_replicas=args.autoscale_min,
                max_replicas=args.autoscale_max,
            )

        telemetry = Telemetry.create(
            tool="repro-serve",
            model=args.model,
            host=args.host,
            placement=args.placement,
            seed=args.seed,
        )
        slo_arg = True if args.slo == "default" else args.slo
        if fleet_mode:
            from repro.fleet import simulate_fleet

            fleet_result = simulate_fleet(
                model=args.model,
                host=args.host,
                placement=args.placement,
                compress_weights=args.compress,
                arrival=arrival,
                rate_rps=args.rate,
                burst_rate_rps=args.burst_rate,
                num_requests=num_requests,
                prompt_lengths=_length_dist(
                    args.prompt_len, args.vary_lengths
                ),
                gen_lengths=_length_dist(args.gen_len, args.vary_lengths),
                class_mix=class_mix,
                seed=args.seed,
                max_batch=args.max_batch,
                pricing_backend=args.pricing_backend,
                prewarm=args.prewarm,
                faults=args.faults,
                fault_seed=args.fault_seed,
                resilience=(
                    None if args.resilience else NO_RESILIENCE
                ) if args.faults else None,
                telemetry=telemetry,
                kv_policy=args.kv_policy,
                iteration_fault_pricing=args.iteration_fault_pricing,
                sanitize=True if args.sanitize else None,
                replicas=args.replicas,
                tensor_parallel=tensor_parallel,
                pipeline_parallel=pipeline_parallel,
                router=args.router,
                prefix_groups=args.prefix_groups,
                prefix_cache_size=args.prefix_cache,
                slo=slo_arg,
                autoscale=autoscale_policy,
            )
            _print_fleet_report(fleet_result)
            if args.save_trace:
                save_trace(_specs_of(fleet_result), args.save_trace)
                print(f"request trace written to {args.save_trace}")
            if args.chrome_trace:
                from repro.telemetry.export import (
                    save_extended_chrome_trace,
                )

                save_extended_chrome_trace(
                    telemetry.bundle(),
                    args.chrome_trace,
                    trace=fleet_result.replicas[0].result.trace,
                )
                print(f"chrome trace written to {args.chrome_trace}")
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(fleet_result.summary(), handle, indent=1)
                print(f"summary written to {args.json}")
            if args.telemetry_out:
                _write_telemetry(telemetry, args.telemetry_out)
            return 0
        result = simulate_serving(
            model=args.model,
            host=args.host,
            placement=args.placement,
            compress_weights=args.compress,
            arrival=arrival,
            rate_rps=args.rate,
            burst_rate_rps=args.burst_rate,
            num_requests=num_requests,
            prompt_lengths=_length_dist(args.prompt_len, args.vary_lengths),
            gen_lengths=_length_dist(args.gen_len, args.vary_lengths),
            class_mix=class_mix,
            seed=args.seed,
            max_batch=args.max_batch,
            pricing_backend=args.pricing_backend,
            prewarm=args.prewarm,
            faults=args.faults,
            fault_seed=args.fault_seed,
            resilience=(
                None if args.resilience else NO_RESILIENCE
            ) if args.faults else None,
            telemetry=telemetry,
            kv_policy=args.kv_policy,
            iteration_fault_pricing=args.iteration_fault_pricing,
            sanitize=True if args.sanitize else None,
            slo=slo_arg,
        )
        _print_report(result, telemetry=telemetry)

        if args.save_trace:
            save_trace(_specs_of(result), args.save_trace)
            print(f"request trace written to {args.save_trace}")
        if args.chrome_trace:
            from repro.telemetry.export import save_extended_chrome_trace

            save_extended_chrome_trace(
                telemetry.bundle(), args.chrome_trace, trace=result.trace
            )
            print(f"chrome trace written to {args.chrome_trace}")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(result.summary(), handle, indent=1)
            print(f"summary written to {args.json}")
        if args.telemetry_out:
            _write_telemetry(telemetry, args.telemetry_out)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _write_telemetry(telemetry: Telemetry, path: str) -> None:
    if path.endswith(".jsonl"):
        from repro.telemetry.export import to_jsonl_text

        with open(path, "w") as handle:
            handle.write(to_jsonl_text(telemetry.bundle()))
        print(
            f"telemetry JSONL written to {path} "
            "(tail with: repro-telemetry summary --follow)"
        )
    else:
        telemetry.save(path)
        print(f"telemetry bundle written to {path}")


def _print_autoscale_report(info) -> None:
    print(
        f"  autoscale: {info['initial_replicas']} -> "
        f"{info['final_replicas']} replica(s) "
        f"(peak {info['peak_replicas']}), "
        f"{len(info['scaling_events'])} change(s) over "
        f"{len(info['decisions'])} decision(s)"
    )
    print(
        f"    replica-seconds provisioned : "
        f"{info['replica_seconds']:.1f} "
        f"({info['gpu_seconds_per_token']:.4f} gpu-s/token)"
    )
    for event in info["scaling_events"]:
        print(
            f"    t={event['at_s']:.1f} s: {event['action']} "
            f"replica {event['replica']}"
        )


def _print_fleet_report(result) -> None:
    setup = result.setup
    summary = result.summary()
    print(
        f"{setup['model']} on {setup['host']}, {setup['placement']}: "
        f"{setup['replicas']} replica(s), {setup['router']} router, "
        f"{setup['num_requests']} requests:"
    )
    rows = [
        ("requests completed", f"{summary['completed']}"
         + (f" ({summary['shed_requests']} shed)"
            if summary["shed_requests"] else "")),
        ("simulated span", f"{summary['span_s']:.1f} s"),
        ("fleet throughput", f"{summary['throughput_rps']:.4f} req/s"),
        ("goodput (SLO met)", f"{summary['goodput_rps']:.4f} req/s "
         f"({summary['slo_attainment']:.1%} attainment)"),
        ("per-replica routed",
         " / ".join(str(n) for n in summary["per_replica_routed"])),
    ]
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"  {name:<{width}} : {value}")
    print("  latency (p50 / p95 / p99, seconds):")
    for label in ("ttft", "e2e"):
        print(
            f"    {label.upper():<4} : "
            f"{summary[f'{label}_p50_s']:.3f} / "
            f"{summary[f'{label}_p95_s']:.3f} / "
            f"{summary[f'{label}_p99_s']:.3f}"
        )
    if result.metrics.get("slo"):
        _print_slo_report(result.metrics["slo"])
    if result.metrics.get("autoscale"):
        _print_autoscale_report(result.metrics["autoscale"])
    for entry in result.replicas:
        cache = entry.result.setup.get("prefix_cache")
        if cache:
            total = cache["hits"] + cache["misses"]
            rate = cache["hits"] / total if total else 0.0
            print(
                f"  replica {entry.index} prefix cache: "
                f"{cache['hits']}/{total} hits ({rate:.0%}), "
                f"{cache['evictions']} eviction(s)"
            )


def _specs_of(result) -> Sequence:
    from repro.serve.request import RequestSpec

    return [
        RequestSpec(
            request_id=record.request_id,
            arrival_s=record.arrival_s,
            prompt_len=record.prompt_len,
            gen_len=record.gen_len,
            qos_class=record.qos_class,
        )
        for record in result.records
    ]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
