"""``repro.serve`` — request-level online serving simulation.

The paper (and this repo's closed-loop core) measures fixed batches;
this package models what a *deployment* of those placements sees: an
open arrival stream, continuous batching at iteration boundaries,
multi-tenant QoS classes, and per-request latency percentiles.

Entry points:

* :func:`simulate_serving` — one placement under open-loop load.
* ``repro-serve`` — the CLI wrapper (:mod:`repro.serve.cli`).
"""

from repro.serve.arrivals import (
    DiurnalProcess,
    FlashCrowdProcess,
    MmppProcess,
    PoissonProcess,
    TraceReplay,
    assign_prefix_groups,
    generate_requests,
    load_trace,
    save_trace,
)
from repro.serve.costs import FixedCostModel, IterationCostModel
from repro.serve.metrics import (
    ClassReport,
    LatencyStats,
    ServingMetrics,
    build_metrics,
)
from repro.serve.request import (
    BATCH,
    DEFAULT_CLASSES,
    INTERACTIVE,
    STANDARD,
    QosClass,
    RequestRecord,
    RequestSpec,
    ShedRecord,
)
from repro.serve.resilience import (
    DEFAULT_RESILIENCE,
    NO_RESILIENCE,
    ReplanOutcome,
    ResiliencePolicy,
    engine_replanner,
)
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    FaultSummary,
    SchedulerDrive,
    SchedulerRun,
)
from repro.serve.state import (
    CheckpointPlan,
    IterationSample,
    SchedulerState,
)
from repro.serve.simulator import (
    ServingResult,
    ServingSimulator,
    make_arrival_process,
    simulate_serving,
)
from repro.workloads.lengths import LengthDistribution

__all__ = [
    "PoissonProcess",
    "MmppProcess",
    "DiurnalProcess",
    "FlashCrowdProcess",
    "TraceReplay",
    "assign_prefix_groups",
    "generate_requests",
    "save_trace",
    "load_trace",
    "IterationCostModel",
    "FixedCostModel",
    "QosClass",
    "RequestSpec",
    "RequestRecord",
    "INTERACTIVE",
    "BATCH",
    "STANDARD",
    "DEFAULT_CLASSES",
    "ContinuousBatchingScheduler",
    "SchedulerDrive",
    "SchedulerRun",
    "FaultSummary",
    "CheckpointPlan",
    "IterationSample",
    "SchedulerState",
    "ShedRecord",
    "ResiliencePolicy",
    "DEFAULT_RESILIENCE",
    "NO_RESILIENCE",
    "ReplanOutcome",
    "engine_replanner",
    "LatencyStats",
    "ClassReport",
    "ServingMetrics",
    "build_metrics",
    "ServingSimulator",
    "ServingResult",
    "simulate_serving",
    "make_arrival_process",
    "LengthDistribution",
]
