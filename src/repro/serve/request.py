"""Online serving requests and multi-tenant QoS classes.

A :class:`RequestSpec` is one request of an open arrival stream; a
:class:`QosClass` names a tenant tier, its scheduling priority, and
its service-level objective (a :class:`~repro.core.qos.QosTarget`,
optionally extended with an end-to-end bound).  The scheduler tracks
live state in :class:`ServeRequest` and emits an immutable
:class:`RequestRecord` when a request finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.qos import QosTarget
from repro.errors import ConfigurationError, WorkloadError


@dataclass(frozen=True)
class QosClass:
    """One tenant tier: a priority and per-request SLO bounds.

    ``priority`` orders admission (lower is more urgent).  The SLO
    reuses :class:`QosTarget`'s latency bounds per request;
    ``min_throughput_tps`` is a deployment-level bound and is ignored
    at request granularity.  ``max_e2e_s`` optionally bounds the full
    arrival-to-completion latency (queueing included).
    """

    name: str
    priority: int
    target: QosTarget
    max_e2e_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a QoS class needs a name")
        if self.max_e2e_s is not None and self.max_e2e_s <= 0:
            raise ConfigurationError("max_e2e_s must be positive")

    def slo_met(self, ttft_s: float, tbt_s: float, e2e_s: float) -> bool:
        """Whether one finished request met this class's SLO."""
        if (
            self.target.max_ttft_s is not None
            and ttft_s > self.target.max_ttft_s
        ):
            return False
        if self.target.max_tbt_s is not None and tbt_s > self.target.max_tbt_s:
            return False
        if self.max_e2e_s is not None and e2e_s > self.max_e2e_s:
            return False
        return True


#: Latency-sensitive tenants: tight first-token and per-token bounds.
INTERACTIVE = QosClass(
    name="interactive",
    priority=0,
    target=QosTarget(max_ttft_s=60.0, max_tbt_s=10.0),
)

#: Throughput tenants: only an end-to-end deadline, generous bounds.
BATCH = QosClass(
    name="batch",
    priority=1,
    target=QosTarget(max_tbt_s=60.0),
    max_e2e_s=3600.0,
)

#: Single-tenant default when no mix is configured.
STANDARD = QosClass(
    name="standard",
    priority=0,
    target=QosTarget(max_ttft_s=120.0, max_tbt_s=15.0),
)

DEFAULT_CLASSES: Tuple[QosClass, ...] = (INTERACTIVE, BATCH, STANDARD)


def class_index(classes: Sequence[QosClass]) -> Dict[str, QosClass]:
    """Name -> class mapping, rejecting duplicates."""
    index: Dict[str, QosClass] = {}
    for qos in classes:
        if qos.name in index:
            raise ConfigurationError(f"duplicate QoS class {qos.name!r}")
        index[qos.name] = qos
    return index


@dataclass(frozen=True)
class RequestSpec:
    """One request of the open arrival stream.

    ``prefix_group`` optionally names a shared-prompt tenant (a system
    prompt, a few-shot template): requests in the same group share
    their first ``prefix_len`` prompt tokens.  The fields are inert
    unless a prefix cache is attached to the scheduler — the default
    ``None``/``0`` leaves every existing code path byte-identical.
    """

    request_id: int
    arrival_s: float
    prompt_len: int
    gen_len: int
    qos_class: str = STANDARD.name
    prefix_group: Optional[str] = None
    prefix_len: int = 0

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise WorkloadError("arrival time cannot be negative")
        if self.prompt_len < 1 or self.gen_len < 1:
            raise WorkloadError("prompt and generation lengths must be >= 1")
        if self.prefix_len < 0:
            raise WorkloadError("prefix length cannot be negative")
        if self.prefix_group is not None and not (
            0 < self.prefix_len < self.prompt_len
        ):
            raise WorkloadError(
                "a grouped request needs 0 < prefix_len < prompt_len"
            )
        if self.prefix_group is None and self.prefix_len:
            raise WorkloadError("prefix_len requires a prefix_group")


@dataclass
class ServeRequest:
    """Live scheduler state for one in-flight request."""

    spec: RequestSpec
    qos: QosClass
    #: Iteration boundary at which the scheduler admitted the request.
    admitted_s: Optional[float] = None
    #: Completion time of each generated token (first = prefill end).
    token_times: List[float] = field(default_factory=list)

    @property
    def tokens_done(self) -> int:
        return len(self.token_times)

    @property
    def done(self) -> bool:
        return self.tokens_done >= self.spec.gen_len

    @property
    def context_len(self) -> int:
        """KV entries attended over at the *next* decode step."""
        return self.spec.prompt_len + self.tokens_done


@dataclass(frozen=True)
class ShedRecord:
    """A request the scheduler rejected under degraded operation.

    Shed requests never ran: they count against their class's SLO
    attainment but produce no latency samples.
    """

    request_id: int
    qos_class: str
    arrival_s: float
    #: Virtual time of the rejection decision.
    shed_s: float
    #: Why it was shed: ``"degraded"`` (load shedding while a tier is
    #: slow), ``"outage"`` (tier down past the stall budget),
    #: ``"kv_capacity"`` (the window can never fit), ``"timeout"``
    #: (queueing deadline exceeded), ``"kv_lost"`` (KV on a lost tier,
    #: no rescue), ``"rescue_failed"`` (emergency migration found no
    #: surviving home or exhausted retries), or ``"kv_shrink"``
    #: (spilled off a shrunken tier with nowhere to go).
    reason: str


@dataclass(frozen=True)
class RequestRecord:
    """Immutable per-request result."""

    request_id: int
    qos_class: str
    arrival_s: float
    admitted_s: float
    finished_s: float
    prompt_len: int
    gen_len: int
    ttft_s: float
    tbt_s: float
    e2e_s: float
    wait_s: float
    slo_met: bool

    @classmethod
    def from_request(cls, request: ServeRequest) -> "RequestRecord":
        if not request.done or request.admitted_s is None:
            raise ConfigurationError(
                f"request {request.spec.request_id} has not finished"
            )
        spec = request.spec
        times = request.token_times
        ttft = times[0] - spec.arrival_s
        gaps = [times[i] - times[i - 1] for i in range(1, len(times))]
        tbt = sum(gaps) / len(gaps) if gaps else 0.0
        e2e = times[-1] - spec.arrival_s
        return cls(
            request_id=spec.request_id,
            qos_class=spec.qos_class,
            arrival_s=spec.arrival_s,
            admitted_s=request.admitted_s,
            finished_s=times[-1],
            prompt_len=spec.prompt_len,
            gen_len=spec.gen_len,
            ttft_s=ttft,
            tbt_s=tbt,
            e2e_s=e2e,
            wait_s=request.admitted_s - spec.arrival_s,
            slo_met=request.qos.slo_met(ttft, tbt, e2e),
        )
