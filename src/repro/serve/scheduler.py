"""Continuous batching over the discrete-event engine.

vLLM-style iteration-level scheduling: the GPU runs one *iteration*
at a time (a prefill pass over newly admitted prompts, or a decode
pass producing one token for every running sequence), and scheduling
decisions happen only at iteration boundaries:

* arrivals whose time has come join the waiting queue;
* waiting requests are admitted — highest QoS priority first, FIFO
  within a class — while the running batch has free KV slots (the
  admission limit from :mod:`repro.core.batching`'s GPU memory plan);
* newly admitted requests run a dedicated prefill iteration (decode
  pauses, as in vLLM's default prefill-prioritizing scheduler); their
  first token appears when it completes;
* otherwise the running batch decodes one token each; finished
  sequences retire and free their slots.

Every iteration is an operation on the
:class:`~repro.sim.engine.SimEngine`'s ``gpu`` stream, so the run
leaves a full virtual-time trace; per-request spans are appended per
QoS class, which makes the whole run exportable through
:func:`repro.sim.chrome_trace.save_chrome_trace`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, WorkloadError
from repro.serve.request import (
    QosClass,
    RequestRecord,
    RequestSpec,
    ServeRequest,
    class_index,
)
from repro.sim.engine import SimEngine
from repro.sim.trace import Trace, TraceRecord


@dataclass(frozen=True)
class IterationSample:
    """Queue/batch occupancy at one iteration boundary."""

    time_s: float
    kind: str  # "prefill" | "decode"
    batch: int
    waiting: int
    running_after: int


@dataclass(frozen=True)
class SchedulerRun:
    """Everything one scheduler pass produced."""

    records: Tuple[RequestRecord, ...]
    timeline: Tuple[IterationSample, ...]
    trace: Trace
    span_s: float
    gpu_busy_s: float
    prefill_iterations: int
    decode_iterations: int

    @property
    def iterations(self) -> int:
        return self.prefill_iterations + self.decode_iterations

    @property
    def utilization(self) -> float:
        """Fraction of virtual time the GPU spent on iterations."""
        if self.span_s <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_s / self.span_s)


class ContinuousBatchingScheduler:
    """Iteration-level scheduler with multi-tenant priority admission."""

    def __init__(
        self,
        costs,
        classes: Sequence[QosClass],
        max_batch: Optional[int] = None,
    ) -> None:
        self.costs = costs
        self.classes = class_index(classes)
        if max_batch is None:
            max_batch = costs.max_concurrency()
        if max_batch < 1:
            raise ConfigurationError(
                "the placement admits no sequences (max_batch < 1); "
                "even a single prompt's KV cache does not fit"
            )
        self.max_batch = int(max_batch)

    def _request(self, spec: RequestSpec) -> ServeRequest:
        try:
            qos = self.classes[spec.qos_class]
        except KeyError:
            raise WorkloadError(
                f"request {spec.request_id} names unknown QoS class "
                f"{spec.qos_class!r}; configured: "
                f"{', '.join(sorted(self.classes))}"
            ) from None
        return ServeRequest(spec=spec, qos=qos)

    def run(self, specs: Sequence[RequestSpec]) -> SchedulerRun:
        """Serve the whole stream; returns per-request records."""
        if not specs:
            raise WorkloadError("nothing to serve: empty request stream")
        pending = sorted(specs, key=lambda s: (s.arrival_s, s.request_id))
        engine = SimEngine()
        gpu = engine.stream("gpu")

        #: (priority, arrival, id) heap of waiting requests.
        waiting: List[Tuple[int, float, int, ServeRequest]] = []
        running: List[ServeRequest] = []
        records: List[RequestRecord] = []
        timeline: List[IterationSample] = []
        next_arrival = 0
        prefills = decodes = 0
        gpu_busy = 0.0

        def absorb_arrivals(now: float) -> int:
            nonlocal next_arrival
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_s <= now
            ):
                request = self._request(pending[next_arrival])
                heapq.heappush(
                    waiting,
                    (
                        request.qos.priority,
                        request.spec.arrival_s,
                        request.spec.request_id,
                        request,
                    ),
                )
                next_arrival += 1
            return next_arrival

        def finish(request: ServeRequest) -> None:
            record = RequestRecord.from_request(request)
            records.append(record)
            engine.trace.record(
                TraceRecord(
                    label=f"req {record.request_id}",
                    stream=f"qos:{record.qos_class}",
                    category="request",
                    start=record.arrival_s,
                    end=record.finished_s,
                    meta={
                        "ttft_s": round(record.ttft_s, 6),
                        "tbt_s": round(record.tbt_s, 6),
                        "e2e_s": round(record.e2e_s, 6),
                        "wait_s": round(record.wait_s, 6),
                        "slo_met": record.slo_met,
                        "qos": record.qos_class,
                    },
                )
            )

        while len(records) < len(pending):
            now = engine.now
            absorb_arrivals(now)

            if not waiting and not running:
                # Idle server: jump to the next arrival.
                engine.clock.advance_to(pending[next_arrival].arrival_s)
                continue

            free = self.max_batch - len(running)
            if waiting and free > 0:
                admitted: List[ServeRequest] = []
                while waiting and len(admitted) < free:
                    admitted.append(heapq.heappop(waiting)[-1])
                prompt_max = max(r.spec.prompt_len for r in admitted)
                duration = self.costs.prefill_time(len(admitted), prompt_max)
                gpu.enqueue(
                    duration,
                    label=f"prefill x{len(admitted)}",
                    category="prefill",
                    meta={
                        "batch": len(admitted),
                        "prompt_len": prompt_max,
                        "requests": [r.spec.request_id for r in admitted],
                    },
                )
                engine.run()
                done_at = engine.now
                gpu_busy += duration
                prefills += 1
                for request in admitted:
                    request.admitted_s = now
                    request.token_times.append(done_at)
                    if request.done:
                        finish(request)
                    else:
                        running.append(request)
                timeline.append(
                    IterationSample(
                        time_s=done_at,
                        kind="prefill",
                        batch=len(admitted),
                        waiting=len(waiting),
                        running_after=len(running),
                    )
                )
                continue

            # Decode: one token for every running sequence.
            decode_batch = len(running)
            context = max(request.context_len for request in running)
            duration = self.costs.decode_time(decode_batch, context)
            gpu.enqueue(
                duration,
                label=f"decode x{decode_batch}",
                category="decode",
                meta={"batch": decode_batch, "context_len": context},
            )
            engine.run()
            done_at = engine.now
            gpu_busy += duration
            decodes += 1
            still_running: List[ServeRequest] = []
            for request in running:
                request.token_times.append(done_at)
                if request.done:
                    finish(request)
                else:
                    still_running.append(request)
            running = still_running
            timeline.append(
                IterationSample(
                    time_s=done_at,
                    kind="decode",
                    batch=decode_batch,
                    waiting=len(waiting),
                    running_after=len(running),
                )
            )

        records.sort(key=lambda record: record.request_id)
        return SchedulerRun(
            records=tuple(records),
            timeline=tuple(timeline),
            trace=engine.trace,
            span_s=engine.now,
            gpu_busy_s=gpu_busy,
            prefill_iterations=prefills,
            decode_iterations=decodes,
        )
