"""Continuous batching over the discrete-event engine.

vLLM-style iteration-level scheduling: the GPU runs one *iteration*
at a time (a prefill pass over newly admitted prompts, or a decode
pass producing one token for every running sequence), and scheduling
decisions happen only at iteration boundaries:

* arrivals whose time has come join the waiting queue;
* waiting requests are admitted — highest QoS priority first, FIFO
  within a class — while the running batch has free KV slots (the
  admission limit from :mod:`repro.core.batching`'s GPU memory plan);
* newly admitted requests run a dedicated prefill iteration (decode
  pauses, as in vLLM's default prefill-prioritizing scheduler); their
  first token appears when it completes;
* otherwise the running batch decodes one token each; finished
  sequences retire and free their slots.

Every iteration is an operation on the
:class:`~repro.sim.engine.SimEngine`'s ``gpu`` stream, so the run
leaves a full virtual-time trace; per-request spans are appended per
QoS class, which makes the whole run exportable through
:func:`repro.sim.chrome_trace.save_chrome_trace`.

**Fault injection and graceful degradation.**  With a
:class:`~repro.faults.injector.FaultInjector` attached, every
iteration's transfer component is priced through the injector
(degradation slowdowns, transient-failure retries, outages), and a
:class:`~repro.serve.resilience.ResiliencePolicy` drives the
degraded-mode playbook: shed low-priority waiting requests, shrink
the admitted batch, optionally re-plan placement against the degraded
bandwidth map — at most once per degradation event.  A tier that
stays down past the stall budget aborts the run by shedding all
outstanding work instead of hanging.  Without an injector the code
path is bit-identical to the fault-free scheduler.

**Structural tier loss.**  A schedule containing structural faults
(:class:`~repro.faults.models.TierLoss`,
:class:`~repro.faults.models.CapacityShrink`,
:class:`~repro.faults.models.CorrelatedOutage`) changes the *shape*
of the memory hierarchy at runtime, not just its speed.  With a
dynamic KV manager attached the scheduler polls
:meth:`~repro.kv.manager.KvCacheManager.sync_structure` each
boundary: a lost tier triggers either an emergency KV rescue
(``rescue_kv`` — extents re-materialize on surviving tiers, priced
through the solver and the injector) or a shed of every request whose
KV it held; a shrunken tier spills its overflow coldest-first.  Tier
loss also re-plans placement at ``tier_loss_severity``.  Requests can
carry a queueing deadline (shed reason ``"timeout"``), and shed
requests with a *recoverable* reason re-enter the arrival stream
after a deterministic client backoff when ``retry_shed`` is on.

**Checkpoint / crash / recovery.**  Passing a
:class:`~repro.serve.state.CheckpointPlan` snapshots the entire loop
state — scheduler, engine clock + trace, injector RNG, KV tier map,
telemetry — at iteration boundaries, and optionally raises
:class:`~repro.errors.SimulatedCrash` (carrying the latest snapshot)
at a chosen boundary.  ``run(restore=checkpoint)`` resumes from a
snapshot; because every stochastic consumer restores its exact state,
the resumed run is bit-identical to the uncrashed one.

**Telemetry.**  With a :class:`repro.telemetry.Telemetry` attached
(explicitly or ambiently), the run additionally emits a span tree —
one run span, one span per iteration, one per request (with
admission/first-token events) and per shed — plus ``serve/*``
registry counters and virtual-time histograms.  All instruments are
no-ops on the inert default and never perturb priced results.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    SimulatedCrash,
    TransferError,
    WorkloadError,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import HOST_TARGET, PCIE_TARGET
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.serve.request import (
    QosClass,
    RequestRecord,
    RequestSpec,
    ServeRequest,
    ShedRecord,
    class_index,
)
from repro.serve.resilience import (
    DEFAULT_RESILIENCE,
    Replanner,
    ResiliencePolicy,
)
from repro.serve.state import (
    CHECKPOINT_VERSION,
    CheckpointPlan,
    IterationSample,
    SchedulerState,
    restore_engine,
    restore_state,
    snapshot_engine,
    snapshot_state,
)
from repro.sim.engine import SimEngine
from repro.sim.trace import Trace, TraceRecord
from repro.telemetry import Telemetry, resolve_telemetry

#: Targets consulted when the caller does not name the platform's own
#: link/region labels.
DEFAULT_FAULT_TARGETS: Tuple[str, ...] = (HOST_TARGET, PCIE_TARGET)

#: Shed reasons a well-behaved client retries (transient conditions);
#: permanent rejections ("degraded" load shedding, "outage" aborts,
#: "kv_capacity" never-fits) are final.
RETRYABLE_SHED_REASONS = frozenset(
    {"timeout", "kv_lost", "rescue_failed", "kv_shrink"}
)


@dataclass(frozen=True)
class FaultSummary:
    """Resilience/fault accounting for one scheduler pass."""

    #: OK -> degraded transitions (each may trigger one re-plan).
    degradation_events: int = 0
    #: Iterations executed while in degraded mode.
    degraded_iterations: int = 0
    #: Iterations whose transfers needed at least one retry.
    retried_iterations: int = 0
    #: Virtual time spent in backoffs and wasted (failed) attempts.
    retry_overhead_s: float = 0.0
    #: Placement re-plans performed.
    replans: int = 0
    #: Boundaries where the tier was unusable and the scheduler
    #: stalled for a retry budget.
    stalls: int = 0
    stall_s: float = 0.0
    #: Requests rejected by load shedding / outage abort.
    shed_requests: int = 0
    #: The run was abandoned because a tier stayed down past the
    #: stall budget.
    aborted: bool = False
    #: Structural tier-loss events observed by the KV manager.
    tier_losses: int = 0
    #: Requests whose KV survived a tier loss via emergency rescue.
    rescued_requests: int = 0
    #: Shed requests that re-entered the stream as client retries.
    client_retries: int = 0
    #: Requests shed for exceeding their queueing deadline.
    timeouts: int = 0


@dataclass(frozen=True)
class SchedulerRun:
    """Everything one scheduler pass produced."""

    records: Tuple[RequestRecord, ...]
    timeline: Tuple[IterationSample, ...]
    trace: Trace
    span_s: float
    gpu_busy_s: float
    prefill_iterations: int
    decode_iterations: int
    #: Requests rejected under degraded operation (empty without
    #: fault injection).
    shed: Tuple[ShedRecord, ...] = ()
    faults: FaultSummary = field(default_factory=FaultSummary)

    @property
    def iterations(self) -> int:
        return self.prefill_iterations + self.decode_iterations

    @property
    def utilization(self) -> float:
        """Fraction of virtual time the GPU spent on iterations."""
        if self.span_s <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_s / self.span_s)


class _Hold:
    """Shared mutable coupling between a drive and its generator.

    ``managed=False`` (the :meth:`ContinuousBatchingScheduler.run`
    path) pins the horizon at infinity and the stream closed, so every
    park check inside the loop is statically false — the monolithic
    run is bit-identical to the pre-generator scheduler.
    """

    __slots__ = ("managed", "open", "horizon", "state", "engine")

    def __init__(self, managed: bool) -> None:
        self.managed = managed
        #: More arrivals may still be pushed.
        self.open = managed
        #: Virtual-time limit: the loop parks at the first boundary
        #: whose ``now`` reaches it.
        self.horizon = 0.0 if managed else math.inf
        #: Live loop internals, published by the generator at setup.
        self.state = None
        self.engine = None


class SchedulerDrive:
    """Incremental handle over one scheduler's serving loop.

    The fleet simulator interleaves replicas in virtual time through
    this interface: :meth:`push` appends arrivals to the live stream,
    :meth:`advance` runs the loop until its clock reaches a horizon
    (or it drains and parks), :meth:`close` declares the stream
    complete, and :meth:`finish` drains to the final
    :class:`SchedulerRun`.
    """

    def __init__(
        self,
        scheduler: "ContinuousBatchingScheduler",
        specs: Sequence[RequestSpec] = (),
    ) -> None:
        self.scheduler = scheduler
        self._hold = _Hold(managed=True)
        self._gen = scheduler._drive(list(specs), None, None, self._hold)
        self._result: Optional[SchedulerRun] = None
        self._step()  # run setup and park at the first boundary

    def _step(self) -> None:
        if self._result is not None:
            return
        try:
            next(self._gen)
        except StopIteration as stop:
            self._result = stop.value

    @property
    def state(self) -> SchedulerState:
        return self._hold.state

    @property
    def now(self) -> float:
        return self._hold.engine.now

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting or running (router load signal)."""
        state = self._hold.state
        return len(state.waiting) + len(state.running)

    def push(self, spec: RequestSpec) -> None:
        """Append one arrival to the live stream.

        The spec lands in the unabsorbed tail of the pending list at
        its sorted ``(arrival_s, request_id)`` position — exactly
        where a monolithic run would have held it from the start.
        """
        if self._result is not None or not self._hold.open:
            raise WorkloadError(
                "drive is closed; cannot push new arrivals"
            )
        state = self._hold.state
        key = (spec.arrival_s, spec.request_id)
        pending = state.pending
        index = state.next_arrival
        while index < len(pending) and (
            (pending[index].arrival_s, pending[index].request_id) <= key
        ):
            index += 1
        pending.insert(index, spec)

    def advance(self, until: float) -> None:
        """Run the loop until virtual time reaches ``until`` (or the
        stream drains and the loop parks waiting for pushes)."""
        self._hold.horizon = until
        self._step()

    def close(self) -> None:
        """No further pushes: the loop may finish when drained."""
        self._hold.open = False

    def finish(self) -> SchedulerRun:
        """Drain the remaining stream and return the final result."""
        self._hold.open = False
        self._hold.horizon = math.inf
        self._step()
        return self._result


class ContinuousBatchingScheduler:
    """Iteration-level scheduler with multi-tenant priority admission."""

    def __init__(
        self,
        costs,
        classes: Sequence[QosClass],
        max_batch: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        replanner: Optional[Replanner] = None,
        fault_targets: Sequence[str] = DEFAULT_FAULT_TARGETS,
        telemetry: Optional[Telemetry] = None,
        kv=None,
        iteration_fault_pricing: bool = False,
        sanitizer=None,
        prefix_cache=None,
        observer=None,
    ) -> None:
        self.costs = costs
        self.classes = class_index(classes)
        if max_batch is None:
            max_batch = costs.max_concurrency()
        if max_batch < 1:
            raise ConfigurationError(
                "the placement admits no sequences (max_batch < 1); "
                "even a single prompt's KV cache does not fit"
            )
        self.max_batch = int(max_batch)
        self.injector = injector
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        if resilience is None and injector is not None:
            resilience = DEFAULT_RESILIENCE
        self.resilience = resilience
        self.replanner = replanner
        self.fault_targets = tuple(fault_targets)
        #: Explicit telemetry, or None to use the ambient instance at
        #: :meth:`run` time.  The inert default makes every instrument
        #: call a no-op, keeping the fault-free path bit-identical.
        self.telemetry = telemetry
        #: Optional :class:`repro.kv.KvCacheManager`.  The static
        #: policy is accounting-only (admission, durations, and every
        #: priced result stay bit-identical to ``kv=None``); dynamic
        #: policies admit against real tier capacity and surcharge
        #: iterations with migration and slow-tier KV read time.
        self.kv = kv
        #: Price each iteration's transfers per layer through the
        #: injector (``EventBackend.faulted_iteration_parts``) instead
        #: of as one lump sum.  Needs an event cost model; ignored
        #: when the model cannot price per layer.
        self.iteration_fault_pricing = bool(iteration_fault_pricing)
        #: Optional invariant sanitizer (``repro.chaos``): observed at
        #: every iteration boundary; ``None`` skips every hook.
        self.sanitizer = sanitizer
        #: Optional :class:`repro.fleet.PrefixCache`.  When attached,
        #: prefill is priced over each batch's *effective* prompt
        #: length (shared prefixes already resident are skipped);
        #: ``None`` keeps the original pricing expression verbatim.
        self.prefix_cache = prefix_cache
        #: Optional :class:`repro.obs.ServeObserver`.  Hooks fire at
        #: arrivals, completions, sheds, iterations, and boundaries;
        #: ``None`` skips every hook, so an un-observed run executes
        #: the exact pre-``repro.obs`` instruction stream.
        self.observer = observer
        # Resolve the tri-state KV flags against the manager actually
        # attached — an explicit True with nothing to act on is a
        # configuration contradiction and fails here, at use-site,
        # instead of silently no-opping for a whole run.
        if resilience is not None:
            self._demote_kv = resilience.wants_demote_kv(kv)
            self._rescue_kv = resilience.wants_rescue_kv(kv)
        else:
            self._demote_kv = False
            self._rescue_kv = False

    def _request(self, spec: RequestSpec) -> ServeRequest:
        try:
            qos = self.classes[spec.qos_class]
        except KeyError:
            raise WorkloadError(
                f"request {spec.request_id} names unknown QoS class "
                f"{spec.qos_class!r}; configured: "
                f"{', '.join(sorted(self.classes))}"
            ) from None
        return ServeRequest(spec=spec, qos=qos)

    # -- checkpoint assembly ------------------------------------------

    def _build_checkpoint(
        self, state: SchedulerState, engine: SimEngine, telemetry
    ) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "boundary": state.boundary,
            "engine": snapshot_engine(engine),
            "state": snapshot_state(state),
            "injector": (
                self.injector.state_snapshot()
                if self.injector is not None
                else None
            ),
            "kv": (
                self.kv.state_snapshot() if self.kv is not None else None
            ),
            # The pre-crash segment's telemetry, for post-mortems.  A
            # restored run re-instruments only its own segment (the
            # injector's bound counters would double-count if this
            # were merged back automatically).
            "telemetry": {
                "metrics": telemetry.registry.snapshot(),
                "spans": telemetry.tracer.to_dicts(),
            },
        }

    def _restore(self, checkpoint: dict):
        """Rebuild (state, engine) from a checkpoint dict."""
        if not isinstance(checkpoint, dict) or "version" not in checkpoint:
            raise CheckpointError(
                "restore needs a checkpoint dict (see CheckpointPlan)"
            )
        if checkpoint["version"] != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {checkpoint['version']} does not "
                f"match this scheduler's ({CHECKPOINT_VERSION})"
            )
        state = restore_state(checkpoint["state"], self._request)
        engine = restore_engine(checkpoint["engine"])
        if checkpoint.get("injector") is not None:
            if self.injector is None:
                raise CheckpointError(
                    "checkpoint carries injector state but the "
                    "scheduler has no injector attached"
                )
            self.injector.restore_state(checkpoint["injector"])
        if checkpoint.get("kv") is not None:
            if self.kv is None:
                raise CheckpointError(
                    "checkpoint carries KV state but the scheduler "
                    "has no KV manager attached"
                )
            self.kv.restore_state(checkpoint["kv"])
        # The degraded cost model is a runtime object: re-derive it
        # from the (deterministic, cached) replanner at the severity
        # the snapshot recorded.
        state.active_costs = self.costs
        if state.replanned and self.replanner is not None:
            state.active_costs = self.replanner(
                max(1.0, state.replan_severity)
            ).costs
        return state, engine

    def run(
        self,
        specs: Sequence[RequestSpec],
        checkpoint: Optional[CheckpointPlan] = None,
        restore: Optional[dict] = None,
    ) -> SchedulerRun:
        """Serve the whole stream; returns per-request records.

        ``checkpoint`` snapshots the loop state per
        :class:`~repro.serve.state.CheckpointPlan` (and may inject a
        crash).  ``restore`` resumes from a snapshot — ``specs`` is
        ignored then; the checkpoint carries the stream.

        This drains :meth:`_drive` with a closed stream and an
        infinite horizon, so no park point ever fires: the pass is
        bit-identical to the pre-:class:`SchedulerDrive` scheduler.
        """
        gen = self._drive(specs, checkpoint, restore, _Hold(managed=False))
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def drive(self, specs: Sequence[RequestSpec] = ()) -> SchedulerDrive:
        """An incremental handle over this scheduler's loop (see
        :class:`SchedulerDrive`); arrivals may be pushed while it runs."""
        return SchedulerDrive(self, specs)

    def _drive(
        self,
        specs: Sequence[RequestSpec],
        checkpoint: Optional[CheckpointPlan],
        restore: Optional[dict],
        hold: _Hold,
    ):
        """The serving loop as a generator parked by ``hold``.

        Yields (parks) only in managed mode: at a boundary whose time
        reached ``hold.horizon``, when idle with the next arrival past
        the horizon, or when drained while the stream is still open.
        Returns the final :class:`SchedulerRun` (captured from
        ``StopIteration.value`` by the callers above).
        """
        if restore is not None:
            state, engine = self._restore(restore)
        else:
            if not specs and not hold.managed:
                raise WorkloadError(
                    "nothing to serve: empty request stream"
                )
            state = SchedulerState(
                pending=sorted(
                    specs, key=lambda s: (s.arrival_s, s.request_id)
                ),
                effective_max=self.max_batch,
                active_costs=self.costs,
            )
            engine = SimEngine()
        hold.state = state
        hold.engine = engine
        gpu = engine.stream("gpu")

        injector = self.injector
        resilience = self.resilience
        retry = self.retry
        sanitizer = self.sanitizer
        #: Whether the schedule can change the hierarchy's shape at
        #: all — False short-circuits every structural hook, keeping
        #: bandwidth-only chaos runs byte-identical to before.
        structural_faults = (
            injector is not None and injector.structural()
        )

        # Telemetry: every instrument below is a no-op on the inert
        # default, and nothing here reads wall-clock time or touches
        # the RNG — an instrumented run is bit-identical to a bare one.
        telemetry = resolve_telemetry(self.telemetry)
        tracer = telemetry.tracer
        serve_metrics = telemetry.scoped("serve")
        iteration_counters = {
            kind: serve_metrics.counter("iterations", labels={"kind": kind})
            for kind in ("prefill", "decode")
        }
        iteration_histograms = {
            kind: serve_metrics.histogram(
                "iteration_s", labels={"kind": kind}
            )
            for kind in ("prefill", "decode")
        }
        admitted_counter = serve_metrics.counter("admitted_requests")
        completed_counter = serve_metrics.counter("completed_requests")
        wait_histogram = serve_metrics.histogram("wait_s")
        if hold.managed:
            # The stream arrives incrementally; the request count is
            # only known at finalization (set there, first, so the
            # attribute set matches a monolithic run's exactly).
            run_span = tracer.start(
                "serve run", engine.now, category="run"
            )
        else:
            run_span = tracer.start(
                "serve run",
                engine.now,
                category="run",
                requests=len(state.pending),
            )
        kv = self.kv
        if kv is not None:
            kv.bind_run(tracer, run_span)
        observer = self.observer
        if observer is not None:
            observer.bind_run(telemetry, run_span)

        latest_checkpoint: Optional[dict] = restore

        def absorb_arrivals(now: float) -> int:
            while (
                state.next_arrival < len(state.pending)
                and state.pending[state.next_arrival].arrival_s <= now
            ):
                request = self._request(state.pending[state.next_arrival])
                heapq.heappush(
                    state.waiting,
                    (
                        request.qos.priority,
                        request.spec.arrival_s,
                        request.spec.request_id,
                        request,
                    ),
                )
                if observer is not None:
                    observer.on_arrival(request.spec)
                state.next_arrival += 1
            return state.next_arrival

        def finish(request: ServeRequest) -> None:
            if kv is not None:
                kv.release(request.spec.request_id)
            record = RequestRecord.from_request(request)
            state.records.append(record)
            engine.trace.record(
                TraceRecord(
                    label=f"req {record.request_id}",
                    stream=f"qos:{record.qos_class}",
                    category="request",
                    start=record.arrival_s,
                    end=record.finished_s,
                    meta={
                        "ttft_s": round(record.ttft_s, 6),
                        "tbt_s": round(record.tbt_s, 6),
                        "e2e_s": round(record.e2e_s, 6),
                        "wait_s": round(record.wait_s, 6),
                        "slo_met": record.slo_met,
                        "qos": record.qos_class,
                    },
                )
            )
            completed_counter.inc()
            wait_histogram.observe(record.wait_s)
            serve_metrics.histogram(
                "ttft_s", labels={"qos": record.qos_class}
            ).observe(record.ttft_s)
            serve_metrics.histogram(
                "e2e_s", labels={"qos": record.qos_class}
            ).observe(record.e2e_s)
            tracer.span(
                f"req {record.request_id}",
                record.arrival_s,
                record.finished_s,
                parent=run_span,
                category="request",
                qos=record.qos_class,
                prompt_len=record.prompt_len,
                gen_len=record.gen_len,
                ttft_s=round(record.ttft_s, 6),
                tbt_s=round(record.tbt_s, 6),
                wait_s=round(record.wait_s, 6),
                slo_met=record.slo_met,
            ).event(
                "admitted", record.admitted_s
            ).event(
                "first_token", record.arrival_s + record.ttft_s
            )
            if observer is not None:
                observer.on_finish(record)

        def retry_client(spec: RequestSpec, now: float) -> None:
            """Re-enter a shed request as a later client attempt."""
            attempt = state.attempts.get(spec.request_id, 1) + 1
            state.attempts[spec.request_id] = attempt
            arrival = now + resilience.client_backoff_s(attempt)
            retry_spec = dataclasses.replace(spec, arrival_s=arrival)
            key = (arrival, spec.request_id)
            index = state.next_arrival
            pending = state.pending
            while index < len(pending) and (
                (pending[index].arrival_s, pending[index].request_id)
                <= key
            ):
                index += 1
            pending.insert(index, retry_spec)
            state.client_retries += 1
            serve_metrics.counter("client_retries").inc()
            run_span.event(
                "client_retry",
                now,
                request=spec.request_id,
                attempt=attempt,
                arrival_s=round(arrival, 6),
            )

        def shed_one(spec: RequestSpec, now: float, reason: str) -> None:
            if kv is not None:
                kv.release(spec.request_id, now)
            state.shed_records.append(
                ShedRecord(
                    request_id=spec.request_id,
                    qos_class=spec.qos_class,
                    arrival_s=spec.arrival_s,
                    shed_s=now,
                    reason=reason,
                )
            )
            engine.trace.record(
                TraceRecord(
                    label=f"shed {spec.request_id}",
                    stream=f"qos:{spec.qos_class}",
                    category="shed",
                    start=spec.arrival_s,
                    end=now,
                    meta={"reason": reason, "qos": spec.qos_class},
                )
            )
            serve_metrics.counter(
                "shed_requests", labels={"reason": reason}
            ).inc()
            tracer.span(
                f"shed {spec.request_id}",
                spec.arrival_s,
                max(now, spec.arrival_s),
                parent=run_span,
                category="shed",
                qos=spec.qos_class,
                reason=reason,
            )
            if observer is not None:
                observer.on_shed(state.shed_records[-1])
            if (
                resilience is not None
                and resilience.retry_shed
                and reason in RETRYABLE_SHED_REASONS
                and state.attempts.get(spec.request_id, 1)
                < resilience.retry_max_attempts
            ):
                retry_client(spec, now)

        def shed_waiting(
            now: float, reason: str, sheddable_only: bool
        ) -> None:
            kept: List[Tuple[int, float, int, ServeRequest]] = []
            for entry in state.waiting:
                request = entry[-1]
                if (
                    sheddable_only
                    and request.qos.priority
                    < resilience.shed_priority_floor
                ):
                    kept.append(entry)
                else:
                    shed_one(request.spec, now, reason)
            heapq.heapify(kept)
            state.waiting = kept

        def shed_ids(
            ids: Sequence[int], now: float, reason: str
        ) -> None:
            """Shed specific requests wherever they currently live."""
            id_set = set(ids)
            if not id_set:
                return
            kept_running: List[ServeRequest] = []
            for request in state.running:
                if request.spec.request_id in id_set:
                    shed_one(request.spec, now, reason)
                else:
                    kept_running.append(request)
            state.running = kept_running
            kept_waiting: List[Tuple[int, float, int, ServeRequest]] = []
            changed = False
            for entry in state.waiting:
                if entry[-1].spec.request_id in id_set:
                    shed_one(entry[-1].spec, now, reason)
                    changed = True
                else:
                    kept_waiting.append(entry)
            if changed:
                heapq.heapify(kept_waiting)
                state.waiting = kept_waiting

        def sweep_deadlines(now: float) -> None:
            kept: List[Tuple[int, float, int, ServeRequest]] = []
            changed = False
            for entry in state.waiting:
                request = entry[-1]
                if (
                    now - request.spec.arrival_s
                    > resilience.queue_deadline_s
                ):
                    state.timeouts += 1
                    serve_metrics.counter("timeouts").inc()
                    shed_one(request.spec, now, "timeout")
                    changed = True
                else:
                    kept.append(entry)
            if changed:
                heapq.heapify(kept)
                state.waiting = kept

        def structural_step(now: float) -> None:
            """React to runtime changes in the hierarchy's shape."""
            kv_events = kv.sync_structure(injector, now)
            lost_any = False
            for event, tier in kv_events:
                if event == "lost":
                    state.tier_losses += 1
                    lost_any = True
                    serve_metrics.counter("tier_losses").inc()
                    run_span.event("tier_lost", now, tier=tier)
                    if self._rescue_kv:
                        outcome = kv.rescue_tier(
                            tier, now, injector=injector, retry=retry
                        )
                        state.rescued_requests += outcome.moved_requests
                        serve_metrics.counter("rescued_requests").inc(
                            outcome.moved_requests
                        )
                        run_span.event(
                            "kv_rescue",
                            now,
                            tier=tier,
                            moved=outcome.moved_requests,
                            failed=len(outcome.failed),
                            rescue_s=round(outcome.rescue_s, 6),
                        )
                        shed_ids(outcome.failed, now, "rescue_failed")
                    else:
                        shed_ids(
                            kv.fail_tier(tier, now), now, "kv_lost"
                        )
                elif event == "shrunk":
                    run_span.event("tier_shrunk", now, tier=tier)
                    shed_ids(
                        kv.spill_overflow(tier, now), now, "kv_shrink"
                    )
                elif event == "restored":
                    run_span.event("tier_restored", now, tier=tier)
            if (
                lost_any
                and resilience is not None
                and resilience.replan
                and self.replanner is not None
            ):
                severity = max(
                    resilience.tier_loss_severity, state.replan_severity
                )
                if not state.replanned or severity > state.replan_severity:
                    outcome = self.replanner(severity)
                    state.active_costs = outcome.costs
                    state.effective_max = max(
                        1, min(self.max_batch, outcome.max_batch)
                    )
                    state.replanned = True
                    state.replan_severity = severity
                    state.replans += 1
                    serve_metrics.counter("replans").inc()
                    run_span.event(
                        "replan",
                        now,
                        label=outcome.label,
                        max_batch=state.effective_max,
                    )
                state.structural_replan = True
            if (
                state.structural_replan
                and not kv.lost_tiers
                and not state.degraded_mode
            ):
                # Every lost tier came back: return to the nominal
                # plan (a concurrent bandwidth degradation keeps it).
                state.structural_replan = False
                state.replanned = False
                state.replan_severity = 0.0
                state.active_costs = self.costs
                state.effective_max = self.max_batch
                run_span.event("replan_reset", now)

        def priced_iteration(
            kind: str, batch: int, tokens: int, now: float, health
        ) -> float:
            """Price one iteration's duration under the injector."""
            # A re-planned cost model bakes the derated bandwidths into
            # its parts, so it is used (at scale 1.0 — re-applying the
            # live slowdown would double-count) only while the tier is
            # actually degraded; healthy boundaries inside a
            # not-yet-recovered event are priced off the nominal model.
            # A *structural* re-plan (tier lost) stays active for its
            # whole loss window — the hierarchy is still short a tier
            # even when the surviving links are healthy.
            degraded_now = health is not None and health.slowdown > 1.0
            model = (
                state.active_costs
                if state.replanned
                and (degraded_now or state.structural_replan)
                else self.costs
            )
            if (
                self.iteration_fault_pricing
                and model is self.costs
                and hasattr(self.costs, "faulted_parts")
            ):
                # Per-layer pricing: the event backend walks the
                # executor's layer schedule and prices every layer's
                # host/disk transfer through the injector individually
                # — retries land on the layer that failed instead of
                # inflating the whole iteration.
                faulted = self.costs.faulted_parts(
                    kind, batch, tokens, now,
                    injector=injector, retry=retry,
                )
                if faulted is not None:
                    if faulted.retried_layers:
                        state.retried_iterations += 1
                        state.retry_overhead_s += faulted.retry_overhead_s
                    return faulted.total_s()
            nominal = (
                self.costs.prefill_parts(batch, tokens)
                if kind == "prefill"
                else self.costs.decode_parts(batch, tokens)
            )
            # Retries and failed attempts are always priced off the
            # *nominal* transfer time — the injector applies the live
            # slowdown itself, and the degraded model's parts already
            # include it (feeding them in would double-count).
            outcome = injector.price_transfer(
                self.fault_targets, nominal.transfer_s, now, retry
            )
            if model is self.costs:
                parts, scale = nominal, outcome.slowdown
            else:
                parts = (
                    model.prefill_parts(batch, tokens)
                    if kind == "prefill"
                    else model.decode_parts(batch, tokens)
                )
                scale = 1.0
            extra = outcome.wasted_s + outcome.retry_delay_s
            if outcome.retried:
                state.retried_iterations += 1
                state.retry_overhead_s += extra
            return parts.total_s(scale) + extra

        def evict_running(now: float) -> None:
            """Preempt sheddable running requests, freeing KV slots."""
            kept: List[ServeRequest] = []
            for request in state.running:
                if request.qos.priority < resilience.shed_priority_floor:
                    kept.append(request)
                else:
                    shed_one(request.spec, now, "degraded")
            state.running = kept

        def record_stall(now: float, duration_s: float) -> None:
            serve_metrics.counter("stalls").inc()
            serve_metrics.counter("stall_s").inc(duration_s)
            run_span.event("stall", now, duration_s=round(duration_s, 6))

        def abort_run(now: float) -> None:
            """Permanent outage: fail everything outstanding."""
            run_span.event("abort", now)
            shed_waiting(now, "outage", sheddable_only=False)
            for request in state.running:
                shed_one(request.spec, now, "outage")
            state.running = []
            for index in range(state.next_arrival, len(state.pending)):
                spec = state.pending[index]
                shed_one(spec, max(now, spec.arrival_s), "outage")
            state.aborted = True

        while True:
            if (
                len(state.records) + len(state.shed_records)
                >= len(state.pending)
            ):
                if not hold.open:
                    break
                # Drained but the stream is still open: park until the
                # router pushes more work (or closes the stream).
                yield "drained"
                continue
            now = engine.now
            if now >= hold.horizon:
                # The horizon is checked before the boundary counter
                # so parked passes burn no boundaries; `>=` makes a
                # boundary landing exactly on an arrival's horizon
                # park first — the push lands, then the boundary
                # absorbs it, matching the monolithic ordering.
                yield "horizon"
                continue
            boundary = state.boundary + 1
            if checkpoint is not None:
                if (
                    latest_checkpoint is None
                    or boundary % checkpoint.every == 0
                ):
                    latest_checkpoint = self._build_checkpoint(
                        state, engine, telemetry
                    )
                    if checkpoint.sink is not None:
                        checkpoint.sink(latest_checkpoint)
                if (
                    checkpoint.crash_at is not None
                    and boundary >= checkpoint.crash_at
                ):
                    raise SimulatedCrash(boundary, latest_checkpoint)
            state.boundary = boundary
            absorb_arrivals(now)
            if observer is not None:
                observer.on_boundary(now)

            if (
                resilience is not None
                and resilience.queue_deadline_s is not None
                and state.waiting
            ):
                sweep_deadlines(now)

            if structural_faults and kv is not None:
                structural_step(now)

            health = None
            if injector is not None:
                health = injector.health(self.fault_targets, now)
                degraded_now = (
                    health.down
                    or health.slowdown >= resilience.degraded_threshold
                )
                if degraded_now:
                    state.degraded_streak += 1
                    state.ok_streak = 0
                else:
                    state.ok_streak += 1
                    state.degraded_streak = 0
                if (
                    not state.degraded_mode
                    and state.degraded_streak
                    >= resilience.sustain_iterations
                ):
                    state.degraded_mode = True
                    state.events += 1
                    serve_metrics.counter("degradation_events").inc()
                    run_span.event(
                        "degraded_enter", now,
                        slowdown=round(health.slowdown, 4),
                        down=health.down,
                    )
                    if resilience.evict and state.running:
                        evict_running(now)
                    if kv is not None and self._demote_kv:
                        kv.on_degraded(now, max(1.0, health.slowdown))
                    severity = max(1.0, health.slowdown)
                    if state.structural_replan:
                        # Keep planning for the worse of the two
                        # conditions while a tier is also lost.
                        severity = max(severity, state.replan_severity)
                    if (
                        resilience.replan
                        and self.replanner is not None
                        and severity >= resilience.degraded_threshold
                    ):
                        outcome = self.replanner(severity)
                        state.active_costs = outcome.costs
                        state.effective_max = max(
                            1, min(self.max_batch, outcome.max_batch)
                        )
                        state.replanned = True
                        state.replan_severity = severity
                        state.replans += 1
                        serve_metrics.counter("replans").inc()
                        run_span.event(
                            "replan", now,
                            label=outcome.label,
                            max_batch=state.effective_max,
                        )
                    elif resilience.shrink_batch and severity > 1.0:
                        state.effective_max = max(
                            1, int(self.max_batch / severity)
                        )
                elif (
                    state.degraded_mode
                    and state.ok_streak >= resilience.recover_iterations
                ):
                    state.degraded_mode = False
                    run_span.event("degraded_exit", now)
                    if not state.structural_replan:
                        state.replanned = False
                        state.replan_severity = 0.0
                        state.active_costs = self.costs
                        state.effective_max = self.max_batch
                if (
                    state.degraded_mode
                    and resilience.shed
                    and state.waiting
                ):
                    shed_waiting(now, "degraded", sheddable_only=True)

            if sanitizer is not None:
                sanitizer.observe(
                    boundary=state.boundary,
                    now=now,
                    state=state,
                    scheduler=self,
                    engine=engine,
                )

            if not state.waiting and not state.running:
                if state.next_arrival >= len(state.pending):
                    if hold.open:
                        # More arrivals may still be pushed.
                        yield "idle"
                        continue
                    # Shedding just emptied the queue and every
                    # request is accounted for; nothing left to serve.
                    break
                # Idle server: jump to the next arrival — but never
                # past the horizon, where later-routed work may land.
                target = state.pending[state.next_arrival].arrival_s
                if target > hold.horizon:
                    yield "idle"
                    continue
                engine.clock.advance_to(target)
                continue

            if health is not None and health.down:
                # The tier is unusable: no iteration can run.  Spend
                # one retry budget discovering that, then reassess.
                state.stall_streak += 1
                state.stalls += 1
                state.stall_s += retry.timeout_s
                record_stall(now, retry.timeout_s)
                if state.stall_streak >= resilience.stall_limit:
                    abort_run(now)
                    break
                engine.clock.advance_to(now + retry.timeout_s)
                continue

            limit = state.effective_max
            if kv is not None:
                kv_limit = kv.admission_limit()
                if kv_limit is not None:
                    # Admit against real tier capacity: scale by the
                    # degraded shrink factor so a degraded batch cap
                    # still caps a capacity-admitted batch.
                    limit = max(
                        1,
                        int(
                            kv_limit
                            * state.effective_max
                            / self.max_batch
                        ),
                    )
            free = limit - len(state.running)
            admitted: List[ServeRequest] = []
            kv_surcharge = 0.0
            if state.waiting and free > 0:
                while state.waiting and len(admitted) < free:
                    entry = heapq.heappop(state.waiting)
                    request = entry[-1]
                    if kv is not None:
                        ok, surcharge = kv.try_admit(request.spec, now)
                        if not ok:
                            if not admitted and not state.running:
                                # The server is idle and the tiers are
                                # as free as they will ever be: this
                                # window can never fit.  Shed it
                                # rather than wait forever.
                                shed_one(
                                    request.spec, now, "kv_capacity"
                                )
                            else:
                                # Head-of-line: wait for running
                                # requests to release their KV.
                                heapq.heappush(state.waiting, entry)
                            break
                        kv_surcharge += surcharge
                    admitted.append(request)
                if not admitted and not state.running:
                    # The head-of-line request was shed; reassess.
                    continue
            if admitted:
                if self.prefix_cache is None:
                    prompt_max = max(r.spec.prompt_len for r in admitted)
                else:
                    prompt_max = max(
                        self.prefix_cache.effective_prompt_len(r.spec, now)
                        for r in admitted
                    )
                if injector is None:
                    duration = self.costs.prefill_time(
                        len(admitted), prompt_max
                    )
                else:
                    try:
                        duration = priced_iteration(
                            "prefill", len(admitted), prompt_max,
                            now, health,
                        )
                    except TransferError as error:
                        # Exhausted retries: put the batch back, stall
                        # for the time the attempts consumed.
                        for request in admitted:
                            if kv is not None:
                                kv.release(request.spec.request_id, now)
                            heapq.heappush(
                                state.waiting,
                                (
                                    request.qos.priority,
                                    request.spec.arrival_s,
                                    request.spec.request_id,
                                    request,
                                ),
                            )
                        state.stall_streak += 1
                        state.stalls += 1
                        state.stall_s += error.elapsed_s
                        record_stall(now, error.elapsed_s)
                        if state.stall_streak >= resilience.stall_limit:
                            abort_run(now)
                            break
                        engine.clock.advance_to(now + error.elapsed_s)
                        continue
                if kv is not None:
                    # The static policy's surcharge is exactly 0.0;
                    # dynamic policies charge admission-time demotions
                    # here.
                    duration += kv_surcharge
                state.stall_streak = 0
                gpu.enqueue(
                    duration,
                    label=f"prefill x{len(admitted)}",
                    category="prefill",
                    meta={
                        "batch": len(admitted),
                        "prompt_len": prompt_max,
                        "requests": [r.spec.request_id for r in admitted],
                        "degraded": state.degraded_mode,
                    },
                )
                engine.run()
                done_at = engine.now
                state.gpu_busy += duration
                state.prefills += 1
                admitted_counter.inc(len(admitted))
                iteration_counters["prefill"].inc()
                iteration_histograms["prefill"].observe(duration)
                tracer.span(
                    f"prefill x{len(admitted)}", now, done_at,
                    parent=run_span, category="iteration",
                    kind="prefill", batch=len(admitted),
                    tokens=prompt_max, degraded=state.degraded_mode,
                )
                if observer is not None:
                    observer.on_iteration(
                        "prefill", len(admitted), done_at
                    )
                if state.degraded_mode:
                    state.degraded_iterations += 1
                for request in admitted:
                    request.admitted_s = now
                    request.token_times.append(done_at)
                    if request.done:
                        finish(request)
                    else:
                        state.running.append(request)
                state.timeline.append(
                    IterationSample(
                        time_s=done_at,
                        kind="prefill",
                        batch=len(admitted),
                        waiting=len(state.waiting),
                        running_after=len(state.running),
                        degraded=state.degraded_mode,
                    )
                )
                continue

            # Decode: one token for every running sequence.
            decode_batch = len(state.running)
            context = max(
                request.context_len for request in state.running
            )
            if injector is None:
                duration = self.costs.decode_time(decode_batch, context)
            else:
                try:
                    duration = priced_iteration(
                        "decode", decode_batch, context, now, health,
                    )
                except TransferError as error:
                    state.stall_streak += 1
                    state.stalls += 1
                    state.stall_s += error.elapsed_s
                    record_stall(now, error.elapsed_s)
                    if state.stall_streak >= resilience.stall_limit:
                        abort_run(now)
                        break
                    engine.clock.advance_to(now + error.elapsed_s)
                    continue
            if kv is not None:
                # Slow-tier KV reads for this pass, drained demotion
                # time, and passive promotions (0.0 for the static
                # policy).
                duration += kv.on_decode(state.running, now)
            state.stall_streak = 0
            gpu.enqueue(
                duration,
                label=f"decode x{decode_batch}",
                category="decode",
                meta={
                    "batch": decode_batch,
                    "context_len": context,
                    "degraded": state.degraded_mode,
                },
            )
            engine.run()
            done_at = engine.now
            state.gpu_busy += duration
            state.decodes += 1
            iteration_counters["decode"].inc()
            iteration_histograms["decode"].observe(duration)
            tracer.span(
                f"decode x{decode_batch}", now, done_at,
                parent=run_span, category="iteration",
                kind="decode", batch=decode_batch,
                tokens=context, degraded=state.degraded_mode,
            )
            if observer is not None:
                observer.on_iteration("decode", decode_batch, done_at)
            if state.degraded_mode:
                state.degraded_iterations += 1
            still_running: List[ServeRequest] = []
            for request in state.running:
                request.token_times.append(done_at)
                if request.done:
                    finish(request)
                else:
                    still_running.append(request)
            state.running = still_running
            state.timeline.append(
                IterationSample(
                    time_s=done_at,
                    kind="decode",
                    batch=decode_batch,
                    waiting=len(state.waiting),
                    running_after=len(state.running),
                    degraded=state.degraded_mode,
                )
            )

        if sanitizer is not None:
            sanitizer.finish(
                state=state, scheduler=self, engine=engine
            )

        if observer is not None:
            observer.finalize(engine.now)

        if hold.managed:
            run_span.set("requests", len(state.pending))
        run_span.set("completed", len(state.records))
        run_span.set("shed", len(state.shed_records))
        run_span.set("iterations", state.prefills + state.decodes)
        run_span.set("aborted", state.aborted)
        run_span.end(engine.now)
        serve_metrics.gauge("span_s").set(engine.now)
        serve_metrics.gauge("gpu_busy_s").set(state.gpu_busy)

        state.records.sort(key=lambda record: record.request_id)
        state.shed_records.sort(key=lambda record: record.request_id)
        return SchedulerRun(
            records=tuple(state.records),
            timeline=tuple(state.timeline),
            trace=engine.trace,
            span_s=engine.now,
            gpu_busy_s=state.gpu_busy,
            prefill_iterations=state.prefills,
            decode_iterations=state.decodes,
            shed=tuple(state.shed_records),
            faults=FaultSummary(
                degradation_events=state.events,
                degraded_iterations=state.degraded_iterations,
                retried_iterations=state.retried_iterations,
                retry_overhead_s=state.retry_overhead_s,
                replans=state.replans,
                stalls=state.stalls,
                stall_s=state.stall_s,
                shed_requests=len(state.shed_records),
                aborted=state.aborted,
                tier_losses=state.tier_losses,
                rescued_requests=state.rescued_requests,
                client_retries=state.client_retries,
                timeouts=state.timeouts,
            ),
        )
