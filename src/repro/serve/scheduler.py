"""Continuous batching over the discrete-event engine.

vLLM-style iteration-level scheduling: the GPU runs one *iteration*
at a time (a prefill pass over newly admitted prompts, or a decode
pass producing one token for every running sequence), and scheduling
decisions happen only at iteration boundaries:

* arrivals whose time has come join the waiting queue;
* waiting requests are admitted — highest QoS priority first, FIFO
  within a class — while the running batch has free KV slots (the
  admission limit from :mod:`repro.core.batching`'s GPU memory plan);
* newly admitted requests run a dedicated prefill iteration (decode
  pauses, as in vLLM's default prefill-prioritizing scheduler); their
  first token appears when it completes;
* otherwise the running batch decodes one token each; finished
  sequences retire and free their slots.

Every iteration is an operation on the
:class:`~repro.sim.engine.SimEngine`'s ``gpu`` stream, so the run
leaves a full virtual-time trace; per-request spans are appended per
QoS class, which makes the whole run exportable through
:func:`repro.sim.chrome_trace.save_chrome_trace`.

**Fault injection and graceful degradation.**  With a
:class:`~repro.faults.injector.FaultInjector` attached, every
iteration's transfer component is priced through the injector
(degradation slowdowns, transient-failure retries, outages), and a
:class:`~repro.serve.resilience.ResiliencePolicy` drives the
degraded-mode playbook: shed low-priority waiting requests, shrink
the admitted batch, optionally re-plan placement against the degraded
bandwidth map — at most once per degradation event.  A tier that
stays down past the stall budget aborts the run by shedding all
outstanding work instead of hanging.  Without an injector the code
path is bit-identical to the fault-free scheduler.

**Telemetry.**  With a :class:`repro.telemetry.Telemetry` attached
(explicitly or ambiently), the run additionally emits a span tree —
one run span, one span per iteration, one per request (with
admission/first-token events) and per shed — plus ``serve/*``
registry counters and virtual-time histograms.  All instruments are
no-ops on the inert default and never perturb priced results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    TransferError,
    WorkloadError,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import HOST_TARGET, PCIE_TARGET
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.serve.request import (
    QosClass,
    RequestRecord,
    RequestSpec,
    ServeRequest,
    ShedRecord,
    class_index,
)
from repro.serve.resilience import (
    DEFAULT_RESILIENCE,
    Replanner,
    ResiliencePolicy,
)
from repro.sim.engine import SimEngine
from repro.sim.trace import Trace, TraceRecord
from repro.telemetry import Telemetry, resolve_telemetry

#: Targets consulted when the caller does not name the platform's own
#: link/region labels.
DEFAULT_FAULT_TARGETS: Tuple[str, ...] = (HOST_TARGET, PCIE_TARGET)


@dataclass(frozen=True)
class IterationSample:
    """Queue/batch occupancy at one iteration boundary."""

    time_s: float
    kind: str  # "prefill" | "decode"
    batch: int
    waiting: int
    running_after: int
    #: Whether the scheduler was in degraded mode at this boundary.
    degraded: bool = False


@dataclass(frozen=True)
class FaultSummary:
    """Resilience/fault accounting for one scheduler pass."""

    #: OK -> degraded transitions (each may trigger one re-plan).
    degradation_events: int = 0
    #: Iterations executed while in degraded mode.
    degraded_iterations: int = 0
    #: Iterations whose transfers needed at least one retry.
    retried_iterations: int = 0
    #: Virtual time spent in backoffs and wasted (failed) attempts.
    retry_overhead_s: float = 0.0
    #: Placement re-plans performed.
    replans: int = 0
    #: Boundaries where the tier was unusable and the scheduler
    #: stalled for a retry budget.
    stalls: int = 0
    stall_s: float = 0.0
    #: Requests rejected by load shedding / outage abort.
    shed_requests: int = 0
    #: The run was abandoned because a tier stayed down past the
    #: stall budget.
    aborted: bool = False


@dataclass(frozen=True)
class SchedulerRun:
    """Everything one scheduler pass produced."""

    records: Tuple[RequestRecord, ...]
    timeline: Tuple[IterationSample, ...]
    trace: Trace
    span_s: float
    gpu_busy_s: float
    prefill_iterations: int
    decode_iterations: int
    #: Requests rejected under degraded operation (empty without
    #: fault injection).
    shed: Tuple[ShedRecord, ...] = ()
    faults: FaultSummary = field(default_factory=FaultSummary)

    @property
    def iterations(self) -> int:
        return self.prefill_iterations + self.decode_iterations

    @property
    def utilization(self) -> float:
        """Fraction of virtual time the GPU spent on iterations."""
        if self.span_s <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_s / self.span_s)


class ContinuousBatchingScheduler:
    """Iteration-level scheduler with multi-tenant priority admission."""

    def __init__(
        self,
        costs,
        classes: Sequence[QosClass],
        max_batch: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        replanner: Optional[Replanner] = None,
        fault_targets: Sequence[str] = DEFAULT_FAULT_TARGETS,
        telemetry: Optional[Telemetry] = None,
        kv=None,
        iteration_fault_pricing: bool = False,
    ) -> None:
        self.costs = costs
        self.classes = class_index(classes)
        if max_batch is None:
            max_batch = costs.max_concurrency()
        if max_batch < 1:
            raise ConfigurationError(
                "the placement admits no sequences (max_batch < 1); "
                "even a single prompt's KV cache does not fit"
            )
        self.max_batch = int(max_batch)
        self.injector = injector
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        if resilience is None and injector is not None:
            resilience = DEFAULT_RESILIENCE
        self.resilience = resilience
        self.replanner = replanner
        self.fault_targets = tuple(fault_targets)
        #: Explicit telemetry, or None to use the ambient instance at
        #: :meth:`run` time.  The inert default makes every instrument
        #: call a no-op, keeping the fault-free path bit-identical.
        self.telemetry = telemetry
        #: Optional :class:`repro.kv.KvCacheManager`.  The static
        #: policy is accounting-only (admission, durations, and every
        #: priced result stay bit-identical to ``kv=None``); dynamic
        #: policies admit against real tier capacity and surcharge
        #: iterations with migration and slow-tier KV read time.
        self.kv = kv
        #: Price each iteration's transfers per layer through the
        #: injector (``EventBackend.faulted_iteration_parts``) instead
        #: of as one lump sum.  Needs an event cost model; ignored
        #: when the model cannot price per layer.
        self.iteration_fault_pricing = bool(iteration_fault_pricing)

    def _request(self, spec: RequestSpec) -> ServeRequest:
        try:
            qos = self.classes[spec.qos_class]
        except KeyError:
            raise WorkloadError(
                f"request {spec.request_id} names unknown QoS class "
                f"{spec.qos_class!r}; configured: "
                f"{', '.join(sorted(self.classes))}"
            ) from None
        return ServeRequest(spec=spec, qos=qos)

    def run(self, specs: Sequence[RequestSpec]) -> SchedulerRun:
        """Serve the whole stream; returns per-request records."""
        if not specs:
            raise WorkloadError("nothing to serve: empty request stream")
        pending = sorted(specs, key=lambda s: (s.arrival_s, s.request_id))
        engine = SimEngine()
        gpu = engine.stream("gpu")

        injector = self.injector
        resilience = self.resilience
        retry = self.retry

        # Telemetry: every instrument below is a no-op on the inert
        # default, and nothing here reads wall-clock time or touches
        # the RNG — an instrumented run is bit-identical to a bare one.
        telemetry = resolve_telemetry(self.telemetry)
        tracer = telemetry.tracer
        serve_metrics = telemetry.scoped("serve")
        iteration_counters = {
            kind: serve_metrics.counter("iterations", labels={"kind": kind})
            for kind in ("prefill", "decode")
        }
        iteration_histograms = {
            kind: serve_metrics.histogram(
                "iteration_s", labels={"kind": kind}
            )
            for kind in ("prefill", "decode")
        }
        admitted_counter = serve_metrics.counter("admitted_requests")
        completed_counter = serve_metrics.counter("completed_requests")
        wait_histogram = serve_metrics.histogram("wait_s")
        run_span = tracer.start(
            "serve run", 0.0, category="run", requests=len(pending)
        )
        kv = self.kv
        if kv is not None:
            kv.bind_run(tracer, run_span)

        #: (priority, arrival, id) heap of waiting requests.
        waiting: List[Tuple[int, float, int, ServeRequest]] = []
        running: List[ServeRequest] = []
        records: List[RequestRecord] = []
        shed_records: List[ShedRecord] = []
        timeline: List[IterationSample] = []
        next_arrival = 0
        prefills = decodes = 0
        gpu_busy = 0.0

        # Degraded-mode state machine.
        active_costs = self.costs
        effective_max = self.max_batch
        degraded_mode = False
        replanned = False
        degraded_streak = ok_streak = stall_streak = 0
        events = replans = stalls = 0
        stall_s = 0.0
        degraded_iterations = retried_iterations = 0
        retry_overhead_s = 0.0
        aborted = False

        def absorb_arrivals(now: float) -> int:
            nonlocal next_arrival
            while (
                next_arrival < len(pending)
                and pending[next_arrival].arrival_s <= now
            ):
                request = self._request(pending[next_arrival])
                heapq.heappush(
                    waiting,
                    (
                        request.qos.priority,
                        request.spec.arrival_s,
                        request.spec.request_id,
                        request,
                    ),
                )
                next_arrival += 1
            return next_arrival

        def finish(request: ServeRequest) -> None:
            if kv is not None:
                kv.release(request.spec.request_id)
            record = RequestRecord.from_request(request)
            records.append(record)
            engine.trace.record(
                TraceRecord(
                    label=f"req {record.request_id}",
                    stream=f"qos:{record.qos_class}",
                    category="request",
                    start=record.arrival_s,
                    end=record.finished_s,
                    meta={
                        "ttft_s": round(record.ttft_s, 6),
                        "tbt_s": round(record.tbt_s, 6),
                        "e2e_s": round(record.e2e_s, 6),
                        "wait_s": round(record.wait_s, 6),
                        "slo_met": record.slo_met,
                        "qos": record.qos_class,
                    },
                )
            )
            completed_counter.inc()
            wait_histogram.observe(record.wait_s)
            serve_metrics.histogram(
                "ttft_s", labels={"qos": record.qos_class}
            ).observe(record.ttft_s)
            serve_metrics.histogram(
                "e2e_s", labels={"qos": record.qos_class}
            ).observe(record.e2e_s)
            tracer.span(
                f"req {record.request_id}",
                record.arrival_s,
                record.finished_s,
                parent=run_span,
                category="request",
                qos=record.qos_class,
                prompt_len=record.prompt_len,
                gen_len=record.gen_len,
                ttft_s=round(record.ttft_s, 6),
                tbt_s=round(record.tbt_s, 6),
                wait_s=round(record.wait_s, 6),
                slo_met=record.slo_met,
            ).event(
                "admitted", record.admitted_s
            ).event(
                "first_token", record.arrival_s + record.ttft_s
            )

        def shed_one(spec: RequestSpec, now: float, reason: str) -> None:
            if kv is not None:
                kv.release(spec.request_id, now)
            shed_records.append(
                ShedRecord(
                    request_id=spec.request_id,
                    qos_class=spec.qos_class,
                    arrival_s=spec.arrival_s,
                    shed_s=now,
                    reason=reason,
                )
            )
            engine.trace.record(
                TraceRecord(
                    label=f"shed {spec.request_id}",
                    stream=f"qos:{spec.qos_class}",
                    category="shed",
                    start=spec.arrival_s,
                    end=now,
                    meta={"reason": reason, "qos": spec.qos_class},
                )
            )
            serve_metrics.counter(
                "shed_requests", labels={"reason": reason}
            ).inc()
            tracer.span(
                f"shed {spec.request_id}",
                spec.arrival_s,
                max(now, spec.arrival_s),
                parent=run_span,
                category="shed",
                qos=spec.qos_class,
                reason=reason,
            )

        def shed_waiting(
            now: float, reason: str, sheddable_only: bool
        ) -> None:
            nonlocal waiting
            kept: List[Tuple[int, float, int, ServeRequest]] = []
            for entry in waiting:
                request = entry[-1]
                if (
                    sheddable_only
                    and request.qos.priority
                    < resilience.shed_priority_floor
                ):
                    kept.append(entry)
                else:
                    shed_one(request.spec, now, reason)
            heapq.heapify(kept)
            waiting = kept

        def priced_iteration(
            kind: str, batch: int, tokens: int, now: float, health
        ) -> float:
            """Price one iteration's duration under the injector."""
            nonlocal retried_iterations, retry_overhead_s
            # A re-planned cost model bakes the derated bandwidths into
            # its parts, so it is used (at scale 1.0 — re-applying the
            # live slowdown would double-count) only while the tier is
            # actually degraded; healthy boundaries inside a
            # not-yet-recovered event are priced off the nominal model.
            degraded_now = health is not None and health.slowdown > 1.0
            model = active_costs if (replanned and degraded_now) else self.costs
            if (
                self.iteration_fault_pricing
                and model is self.costs
                and hasattr(self.costs, "faulted_parts")
            ):
                # Per-layer pricing: the event backend walks the
                # executor's layer schedule and prices every layer's
                # host/disk transfer through the injector individually
                # — retries land on the layer that failed instead of
                # inflating the whole iteration.
                faulted = self.costs.faulted_parts(
                    kind, batch, tokens, now,
                    injector=injector, retry=retry,
                )
                if faulted is not None:
                    if faulted.retried_layers:
                        retried_iterations += 1
                        retry_overhead_s += faulted.retry_overhead_s
                    return faulted.total_s()
            nominal = (
                self.costs.prefill_parts(batch, tokens)
                if kind == "prefill"
                else self.costs.decode_parts(batch, tokens)
            )
            # Retries and failed attempts are always priced off the
            # *nominal* transfer time — the injector applies the live
            # slowdown itself, and the degraded model's parts already
            # include it (feeding them in would double-count).
            outcome = injector.price_transfer(
                self.fault_targets, nominal.transfer_s, now, retry
            )
            if model is self.costs:
                parts, scale = nominal, outcome.slowdown
            else:
                parts = (
                    model.prefill_parts(batch, tokens)
                    if kind == "prefill"
                    else model.decode_parts(batch, tokens)
                )
                scale = 1.0
            extra = outcome.wasted_s + outcome.retry_delay_s
            if outcome.retried:
                retried_iterations += 1
                retry_overhead_s += extra
            return parts.total_s(scale) + extra

        def evict_running(now: float) -> None:
            """Preempt sheddable running requests, freeing KV slots."""
            nonlocal running
            kept: List[ServeRequest] = []
            for request in running:
                if request.qos.priority < resilience.shed_priority_floor:
                    kept.append(request)
                else:
                    shed_one(request.spec, now, "degraded")
            running = kept

        def record_stall(now: float, duration_s: float) -> None:
            serve_metrics.counter("stalls").inc()
            serve_metrics.counter("stall_s").inc(duration_s)
            run_span.event("stall", now, duration_s=round(duration_s, 6))

        def abort_run(now: float) -> None:
            """Permanent outage: fail everything outstanding."""
            nonlocal aborted, running
            run_span.event("abort", now)
            shed_waiting(now, "outage", sheddable_only=False)
            for request in running:
                shed_one(request.spec, now, "outage")
            running = []
            for index in range(next_arrival, len(pending)):
                spec = pending[index]
                shed_one(spec, max(now, spec.arrival_s), "outage")
            aborted = True

        while len(records) + len(shed_records) < len(pending):
            now = engine.now
            absorb_arrivals(now)

            health = None
            if injector is not None:
                health = injector.health(self.fault_targets, now)
                degraded_now = (
                    health.down
                    or health.slowdown >= resilience.degraded_threshold
                )
                if degraded_now:
                    degraded_streak += 1
                    ok_streak = 0
                else:
                    ok_streak += 1
                    degraded_streak = 0
                if (
                    not degraded_mode
                    and degraded_streak >= resilience.sustain_iterations
                ):
                    degraded_mode = True
                    events += 1
                    serve_metrics.counter("degradation_events").inc()
                    run_span.event(
                        "degraded_enter", now,
                        slowdown=round(health.slowdown, 4),
                        down=health.down,
                    )
                    if resilience.evict and running:
                        evict_running(now)
                    if kv is not None and resilience.demote_kv:
                        kv.on_degraded(now, max(1.0, health.slowdown))
                    severity = max(1.0, health.slowdown)
                    if (
                        resilience.replan
                        and self.replanner is not None
                        and severity >= resilience.degraded_threshold
                    ):
                        outcome = self.replanner(severity)
                        active_costs = outcome.costs
                        effective_max = max(
                            1, min(self.max_batch, outcome.max_batch)
                        )
                        replanned = True
                        replans += 1
                        serve_metrics.counter("replans").inc()
                        run_span.event(
                            "replan", now,
                            label=outcome.label,
                            max_batch=effective_max,
                        )
                    elif resilience.shrink_batch and severity > 1.0:
                        effective_max = max(
                            1, int(self.max_batch / severity)
                        )
                elif (
                    degraded_mode
                    and ok_streak >= resilience.recover_iterations
                ):
                    degraded_mode = False
                    replanned = False
                    active_costs = self.costs
                    effective_max = self.max_batch
                    run_span.event("degraded_exit", now)
                if degraded_mode and resilience.shed and waiting:
                    shed_waiting(now, "degraded", sheddable_only=True)

            if not waiting and not running:
                if next_arrival >= len(pending):
                    # Shedding just emptied the queue and every
                    # request is accounted for; nothing left to serve.
                    break
                # Idle server: jump to the next arrival.
                engine.clock.advance_to(pending[next_arrival].arrival_s)
                continue

            if health is not None and health.down:
                # The tier is unusable: no iteration can run.  Spend
                # one retry budget discovering that, then reassess.
                stall_streak += 1
                stalls += 1
                stall_s += retry.timeout_s
                record_stall(now, retry.timeout_s)
                if stall_streak >= resilience.stall_limit:
                    abort_run(now)
                    break
                engine.clock.advance_to(now + retry.timeout_s)
                continue

            limit = effective_max
            if kv is not None:
                kv_limit = kv.admission_limit()
                if kv_limit is not None:
                    # Admit against real tier capacity: scale by the
                    # degraded shrink factor so a degraded batch cap
                    # still caps a capacity-admitted batch.
                    limit = max(
                        1, int(kv_limit * effective_max / self.max_batch)
                    )
            free = limit - len(running)
            admitted: List[ServeRequest] = []
            kv_surcharge = 0.0
            if waiting and free > 0:
                while waiting and len(admitted) < free:
                    entry = heapq.heappop(waiting)
                    request = entry[-1]
                    if kv is not None:
                        ok, surcharge = kv.try_admit(request.spec, now)
                        if not ok:
                            if not admitted and not running:
                                # The server is idle and the tiers are
                                # as free as they will ever be: this
                                # window can never fit.  Shed it
                                # rather than wait forever.
                                shed_one(
                                    request.spec, now, "kv_capacity"
                                )
                            else:
                                # Head-of-line: wait for running
                                # requests to release their KV.
                                heapq.heappush(waiting, entry)
                            break
                        kv_surcharge += surcharge
                    admitted.append(request)
                if not admitted and not running:
                    # The head-of-line request was shed; reassess.
                    continue
            if admitted:
                prompt_max = max(r.spec.prompt_len for r in admitted)
                if injector is None:
                    duration = self.costs.prefill_time(
                        len(admitted), prompt_max
                    )
                else:
                    try:
                        duration = priced_iteration(
                            "prefill", len(admitted), prompt_max,
                            now, health,
                        )
                    except TransferError as error:
                        # Exhausted retries: put the batch back, stall
                        # for the time the attempts consumed.
                        for request in admitted:
                            if kv is not None:
                                kv.release(request.spec.request_id, now)
                            heapq.heappush(
                                waiting,
                                (
                                    request.qos.priority,
                                    request.spec.arrival_s,
                                    request.spec.request_id,
                                    request,
                                ),
                            )
                        stall_streak += 1
                        stalls += 1
                        stall_s += error.elapsed_s
                        record_stall(now, error.elapsed_s)
                        if stall_streak >= resilience.stall_limit:
                            abort_run(now)
                            break
                        engine.clock.advance_to(now + error.elapsed_s)
                        continue
                if kv is not None:
                    # The static policy's surcharge is exactly 0.0;
                    # dynamic policies charge admission-time demotions
                    # here.
                    duration += kv_surcharge
                stall_streak = 0
                gpu.enqueue(
                    duration,
                    label=f"prefill x{len(admitted)}",
                    category="prefill",
                    meta={
                        "batch": len(admitted),
                        "prompt_len": prompt_max,
                        "requests": [r.spec.request_id for r in admitted],
                        "degraded": degraded_mode,
                    },
                )
                engine.run()
                done_at = engine.now
                gpu_busy += duration
                prefills += 1
                admitted_counter.inc(len(admitted))
                iteration_counters["prefill"].inc()
                iteration_histograms["prefill"].observe(duration)
                tracer.span(
                    f"prefill x{len(admitted)}", now, done_at,
                    parent=run_span, category="iteration",
                    kind="prefill", batch=len(admitted),
                    tokens=prompt_max, degraded=degraded_mode,
                )
                if degraded_mode:
                    degraded_iterations += 1
                for request in admitted:
                    request.admitted_s = now
                    request.token_times.append(done_at)
                    if request.done:
                        finish(request)
                    else:
                        running.append(request)
                timeline.append(
                    IterationSample(
                        time_s=done_at,
                        kind="prefill",
                        batch=len(admitted),
                        waiting=len(waiting),
                        running_after=len(running),
                        degraded=degraded_mode,
                    )
                )
                continue

            # Decode: one token for every running sequence.
            decode_batch = len(running)
            context = max(request.context_len for request in running)
            if injector is None:
                duration = self.costs.decode_time(decode_batch, context)
            else:
                try:
                    duration = priced_iteration(
                        "decode", decode_batch, context, now, health,
                    )
                except TransferError as error:
                    stall_streak += 1
                    stalls += 1
                    stall_s += error.elapsed_s
                    record_stall(now, error.elapsed_s)
                    if stall_streak >= resilience.stall_limit:
                        abort_run(now)
                        break
                    engine.clock.advance_to(now + error.elapsed_s)
                    continue
            if kv is not None:
                # Slow-tier KV reads for this pass, drained demotion
                # time, and passive promotions (0.0 for the static
                # policy).
                duration += kv.on_decode(running, now)
            stall_streak = 0
            gpu.enqueue(
                duration,
                label=f"decode x{decode_batch}",
                category="decode",
                meta={
                    "batch": decode_batch,
                    "context_len": context,
                    "degraded": degraded_mode,
                },
            )
            engine.run()
            done_at = engine.now
            gpu_busy += duration
            decodes += 1
            iteration_counters["decode"].inc()
            iteration_histograms["decode"].observe(duration)
            tracer.span(
                f"decode x{decode_batch}", now, done_at,
                parent=run_span, category="iteration",
                kind="decode", batch=decode_batch,
                tokens=context, degraded=degraded_mode,
            )
            if degraded_mode:
                degraded_iterations += 1
            still_running: List[ServeRequest] = []
            for request in running:
                request.token_times.append(done_at)
                if request.done:
                    finish(request)
                else:
                    still_running.append(request)
            running = still_running
            timeline.append(
                IterationSample(
                    time_s=done_at,
                    kind="decode",
                    batch=decode_batch,
                    waiting=len(waiting),
                    running_after=len(running),
                    degraded=degraded_mode,
                )
            )

        run_span.set("completed", len(records))
        run_span.set("shed", len(shed_records))
        run_span.set("iterations", prefills + decodes)
        run_span.set("aborted", aborted)
        run_span.end(engine.now)
        serve_metrics.gauge("span_s").set(engine.now)
        serve_metrics.gauge("gpu_busy_s").set(gpu_busy)

        records.sort(key=lambda record: record.request_id)
        shed_records.sort(key=lambda record: record.request_id)
        return SchedulerRun(
            records=tuple(records),
            timeline=tuple(timeline),
            trace=engine.trace,
            span_s=engine.now,
            gpu_busy_s=gpu_busy,
            prefill_iterations=prefills,
            decode_iterations=decodes,
            shed=tuple(shed_records),
            faults=FaultSummary(
                degradation_events=events,
                degraded_iterations=degraded_iterations,
                retried_iterations=retried_iterations,
                retry_overhead_s=retry_overhead_s,
                replans=replans,
                stalls=stalls,
                stall_s=stall_s,
                shed_requests=len(shed_records),
                aborted=aborted,
            ),
        )
