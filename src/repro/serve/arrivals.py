"""Arrival processes for the open-loop serving simulator.

Three workload shapes:

* :class:`PoissonProcess` — memoryless arrivals at a constant rate,
  the standard open-loop load model.
* :class:`MmppProcess` — a two-state Markov-modulated Poisson process
  alternating between a base rate and a burst rate; reproduces the
  bursty traffic tiered-memory serving studies (ITME) evaluate under.
* :class:`TraceReplay` — replays a recorded request trace verbatim,
  for production traces or regression workloads.

:func:`generate_requests` samples a full request stream (arrival
times, per-request prompt/gen lengths, tenant classes)
deterministically from one seed; :func:`save_trace` /
:func:`load_trace` round-trip streams through JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.serve.request import STANDARD, QosClass, RequestSpec
from repro.workloads.lengths import LengthDistribution

#: Default mix: one tenant, the paper's shape.
DEFAULT_MIX: Tuple[Tuple[QosClass, float], ...] = ((STANDARD, 1.0),)


@dataclass(frozen=True)
class PoissonProcess:
    """Constant-rate memoryless arrivals."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise WorkloadError("arrival rate must be positive")

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class MmppProcess:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *base* state and a *burst* state;
    sojourn times in each state are exponential with the given means,
    and arrivals within a state are Poisson at that state's rate.
    """

    base_rate_rps: float
    burst_rate_rps: float
    mean_base_s: float
    mean_burst_s: float

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0 or self.burst_rate_rps <= 0:
            raise WorkloadError("MMPP rates must be positive")
        if self.burst_rate_rps <= self.base_rate_rps:
            raise WorkloadError("burst rate must exceed the base rate")
        if self.mean_base_s <= 0 or self.mean_burst_s <= 0:
            raise WorkloadError("MMPP sojourn times must be positive")

    @property
    def mean_rate_rps(self) -> float:
        """Time-averaged arrival rate across both states."""
        total = self.mean_base_s + self.mean_burst_s
        return (
            self.base_rate_rps * self.mean_base_s
            + self.burst_rate_rps * self.mean_burst_s
        ) / total

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        times: List[float] = []
        now = 0.0
        burst = False
        while len(times) < num_requests:
            rate = self.burst_rate_rps if burst else self.base_rate_rps
            mean = self.mean_burst_s if burst else self.mean_base_s
            state_end = now + rng.exponential(mean)
            clock = now
            while len(times) < num_requests:
                clock += rng.exponential(1.0 / rate)
                if clock >= state_end:
                    break
                times.append(clock)
            now = state_end
            burst = not burst
        return np.asarray(times[:num_requests])


@dataclass(frozen=True)
class TraceReplay:
    """A pre-recorded request stream, replayed verbatim."""

    specs: Tuple[RequestSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise WorkloadError("a trace replay needs at least one request")


ArrivalProcess = Union[PoissonProcess, MmppProcess]


def generate_requests(
    process: Union[ArrivalProcess, TraceReplay],
    num_requests: int,
    prompt_lengths: LengthDistribution = LengthDistribution.fixed(128),
    gen_lengths: LengthDistribution = LengthDistribution.fixed(21),
    class_mix: Sequence[Tuple[QosClass, float]] = DEFAULT_MIX,
    seed: int = 0,
) -> Tuple[RequestSpec, ...]:
    """Sample one deterministic request stream.

    A :class:`TraceReplay` process short-circuits sampling and returns
    its recorded stream (truncated to ``num_requests`` when shorter).
    """
    if isinstance(process, TraceReplay):
        specs = process.specs[:num_requests] if num_requests else process.specs
        return tuple(sorted(specs, key=lambda s: (s.arrival_s, s.request_id)))
    if num_requests < 1:
        raise WorkloadError("request count must be positive")
    if not class_mix:
        raise WorkloadError("class mix cannot be empty")
    weights = np.asarray([weight for _, weight in class_mix], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise WorkloadError("class weights must be non-negative, sum > 0")

    rng = np.random.default_rng(seed)
    times = process.arrival_times(num_requests, rng)
    prompts = prompt_lengths.sample(rng, num_requests)
    gens = gen_lengths.sample(rng, num_requests)
    names = [qos.name for qos, _ in class_mix]
    picks = rng.choice(len(names), size=num_requests, p=weights / weights.sum())
    return tuple(
        RequestSpec(
            request_id=index,
            arrival_s=float(times[index]),
            prompt_len=int(prompts[index]),
            gen_len=int(gens[index]),
            qos_class=names[picks[index]],
        )
        for index in range(num_requests)
    )


def assign_prefix_groups(
    specs: Sequence[RequestSpec],
    num_groups: int = 4,
    prefix_len: int = 64,
    skew: float = 1.5,
    seed: int = 0,
) -> Tuple[RequestSpec, ...]:
    """Tag a request stream with skewed shared-prefix tenant groups.

    Group popularity follows a Zipf-like law with exponent ``skew``
    (group 0 is the hot tenant), modelling the multi-tenant
    shared-system-prompt traffic a prefix-affinity router exploits.
    Each tagged request shares its first ``prefix_len`` prompt tokens
    with its group, clamped to ``prompt_len - 1``; one-token prompts
    stay untagged.  Deterministic in ``seed`` and independent of the
    stream's own sampling.
    """
    if num_groups < 1:
        raise WorkloadError("need at least one prefix group")
    if prefix_len < 1:
        raise WorkloadError("prefix length must be >= 1")
    weights = np.asarray(
        [1.0 / (rank + 1.0) ** skew for rank in range(num_groups)]
    )
    rng = np.random.default_rng(seed)
    picks = rng.choice(num_groups, size=len(specs), p=weights / weights.sum())
    tagged: List[RequestSpec] = []
    for spec, pick in zip(specs, picks):
        share = min(prefix_len, spec.prompt_len - 1)
        if share < 1:
            tagged.append(spec)
            continue
        tagged.append(
            replace(
                spec,
                prefix_group=f"tenant-{int(pick)}",
                prefix_len=int(share),
            )
        )
    return tuple(tagged)


# ----------------------------------------------------------------------
# Trace files (JSONL, one request per line)
# ----------------------------------------------------------------------

_TRACE_FIELDS = ("request_id", "arrival_s", "prompt_len", "gen_len", "qos_class")


def save_trace(specs: Sequence[RequestSpec], path: str) -> None:
    """Write a request stream as a JSONL trace file.

    Prefix-sharing fields are emitted only when set, so traces written
    from untagged streams remain byte-identical to earlier releases.
    """
    with open(path, "w") as handle:
        for spec in specs:
            payload = {name: getattr(spec, name) for name in _TRACE_FIELDS}
            if spec.prefix_group is not None:
                payload["prefix_group"] = spec.prefix_group
                payload["prefix_len"] = spec.prefix_len
            handle.write(json.dumps(payload) + "\n")


def load_trace(path: str) -> Tuple[RequestSpec, ...]:
    """Read a JSONL trace file back into a request stream."""
    specs: List[RequestSpec] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                group = payload.get("prefix_group")
                specs.append(
                    RequestSpec(
                        request_id=int(payload["request_id"]),
                        arrival_s=float(payload["arrival_s"]),
                        prompt_len=int(payload["prompt_len"]),
                        gen_len=int(payload["gen_len"]),
                        qos_class=str(payload.get("qos_class", STANDARD.name)),
                        prefix_group=None if group is None else str(group),
                        prefix_len=int(payload.get("prefix_len", 0)),
                    )
                )
            except (KeyError, ValueError, json.JSONDecodeError) as error:
                raise WorkloadError(
                    f"{path}:{line_no}: bad trace record: {error}"
                ) from None
    if not specs:
        raise WorkloadError(f"{path}: empty trace")
    return tuple(specs)
