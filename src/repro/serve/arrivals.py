"""Arrival processes for the open-loop serving simulator.

Five workload shapes:

* :class:`PoissonProcess` — memoryless arrivals at a constant rate,
  the standard open-loop load model.
* :class:`MmppProcess` — a two-state Markov-modulated Poisson process
  alternating between a base rate and a burst rate; reproduces the
  bursty traffic tiered-memory serving studies (ITME) evaluate under.
* :class:`DiurnalProcess` — a non-homogeneous Poisson process whose
  rate swings sinusoidally between a trough and a peak (the diurnal
  day/night cycle an autoscaler must ride), sampled by thinning.
* :class:`FlashCrowdProcess` — steady base traffic plus one
  ramp-hold-decay surge (a flash crowd / retweet spike), also by
  thinning.
* :class:`TraceReplay` — replays a recorded request trace verbatim,
  for production traces or regression workloads.

:func:`generate_requests` samples a full request stream (arrival
times, per-request prompt/gen lengths, tenant classes)
deterministically from one seed; :func:`save_trace` /
:func:`load_trace` round-trip streams through JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import WorkloadError
from repro.serve.request import STANDARD, QosClass, RequestSpec
from repro.workloads.lengths import LengthDistribution

#: Default mix: one tenant, the paper's shape.
DEFAULT_MIX: Tuple[Tuple[QosClass, float], ...] = ((STANDARD, 1.0),)


@dataclass(frozen=True)
class PoissonProcess:
    """Constant-rate memoryless arrivals."""

    rate_rps: float

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise WorkloadError("arrival rate must be positive")

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class MmppProcess:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *base* state and a *burst* state;
    sojourn times in each state are exponential with the given means,
    and arrivals within a state are Poisson at that state's rate.
    """

    base_rate_rps: float
    burst_rate_rps: float
    mean_base_s: float
    mean_burst_s: float

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0 or self.burst_rate_rps <= 0:
            raise WorkloadError("MMPP rates must be positive")
        if self.burst_rate_rps <= self.base_rate_rps:
            raise WorkloadError("burst rate must exceed the base rate")
        if self.mean_base_s <= 0 or self.mean_burst_s <= 0:
            raise WorkloadError("MMPP sojourn times must be positive")

    @property
    def mean_rate_rps(self) -> float:
        """Time-averaged arrival rate across both states."""
        total = self.mean_base_s + self.mean_burst_s
        return (
            self.base_rate_rps * self.mean_base_s
            + self.burst_rate_rps * self.mean_burst_s
        ) / total

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        times: List[float] = []
        now = 0.0
        burst = False
        while len(times) < num_requests:
            rate = self.burst_rate_rps if burst else self.base_rate_rps
            mean = self.mean_burst_s if burst else self.mean_base_s
            state_end = now + rng.exponential(mean)
            clock = now
            while len(times) < num_requests:
                clock += rng.exponential(1.0 / rate)
                if clock >= state_end:
                    break
                times.append(clock)
            now = state_end
            burst = not burst
        return np.asarray(times[:num_requests])


def _thin_arrivals(
    num_requests: int,
    rng: np.random.Generator,
    envelope_rps: float,
    rate_at,
) -> np.ndarray:
    """Sample a non-homogeneous Poisson process by thinning.

    Candidate arrivals are drawn from a homogeneous process at the
    envelope rate (an upper bound on ``rate_at``); each candidate at
    time ``t`` is kept with probability ``rate_at(t) / envelope``.
    Exactly two RNG draws per candidate, so the stream is a
    deterministic function of the seed.
    """
    times: List[float] = []
    now = 0.0
    while len(times) < num_requests:
        now += rng.exponential(1.0 / envelope_rps)
        if rng.random() * envelope_rps <= rate_at(now):
            times.append(now)
    return np.asarray(times)


@dataclass(frozen=True)
class DiurnalProcess:
    """Sinusoidal day/night arrival cycle (non-homogeneous Poisson).

    The instantaneous rate swings between ``base_rate_rps`` (the
    trough) and ``peak_rate_rps`` over one ``period_s`` cycle:
    ``rate(t) = base + (peak - base) x (1 - cos(2 pi (t - phase) /
    period)) / 2`` — the cycle *starts at the trough*, so a run
    warms up under light load before the first peak hits.
    """

    base_rate_rps: float
    peak_rate_rps: float
    period_s: float
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0:
            raise WorkloadError("diurnal base rate must be positive")
        if self.peak_rate_rps <= self.base_rate_rps:
            raise WorkloadError("diurnal peak rate must exceed the base rate")
        if self.period_s <= 0:
            raise WorkloadError("diurnal period must be positive")

    def rate_at(self, time_s: float) -> float:
        """Instantaneous arrival rate at virtual ``time_s``."""
        swing = self.peak_rate_rps - self.base_rate_rps
        phase = 2.0 * np.pi * (time_s - self.phase_s) / self.period_s
        return self.base_rate_rps + swing * (1.0 - float(np.cos(phase))) / 2.0

    @property
    def mean_rate_rps(self) -> float:
        """Time-averaged rate over one full cycle."""
        return (self.base_rate_rps + self.peak_rate_rps) / 2.0

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        return _thin_arrivals(
            num_requests, rng, self.peak_rate_rps, self.rate_at
        )


@dataclass(frozen=True)
class FlashCrowdProcess:
    """Steady base traffic plus one ramp-hold-decay surge.

    The rate is ``base_rate_rps`` until ``start_s``, ramps linearly
    to ``peak_rate_rps`` over ``ramp_s``, holds the peak for
    ``hold_s``, then decays linearly back over ``decay_s`` — the
    flash-crowd shape (a viral link, a failover of a sibling region)
    that static capacity either over-provisions for or sheds.
    """

    base_rate_rps: float
    peak_rate_rps: float
    start_s: float
    ramp_s: float
    hold_s: float
    decay_s: float

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0:
            raise WorkloadError("flash-crowd base rate must be positive")
        if self.peak_rate_rps <= self.base_rate_rps:
            raise WorkloadError(
                "flash-crowd peak rate must exceed the base rate"
            )
        if self.start_s < 0:
            raise WorkloadError("flash-crowd start must be >= 0")
        if self.ramp_s < 0 or self.hold_s < 0 or self.decay_s < 0:
            raise WorkloadError("flash-crowd phase durations must be >= 0")

    def rate_at(self, time_s: float) -> float:
        """Instantaneous arrival rate at virtual ``time_s``."""
        swing = self.peak_rate_rps - self.base_rate_rps
        t = time_s - self.start_s
        if t < 0:
            return self.base_rate_rps
        if t < self.ramp_s:
            return self.base_rate_rps + swing * t / self.ramp_s
        t -= self.ramp_s
        if t < self.hold_s:
            return self.peak_rate_rps
        t -= self.hold_s
        if self.decay_s > 0 and t < self.decay_s:
            return self.peak_rate_rps - swing * t / self.decay_s
        return self.base_rate_rps

    def arrival_times(
        self, num_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        return _thin_arrivals(
            num_requests, rng, self.peak_rate_rps, self.rate_at
        )


@dataclass(frozen=True)
class TraceReplay:
    """A pre-recorded request stream, replayed verbatim."""

    specs: Tuple[RequestSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise WorkloadError("a trace replay needs at least one request")


ArrivalProcess = Union[
    PoissonProcess, MmppProcess, DiurnalProcess, FlashCrowdProcess
]


def generate_requests(
    process: Union[ArrivalProcess, TraceReplay],
    num_requests: int,
    prompt_lengths: LengthDistribution = LengthDistribution.fixed(128),
    gen_lengths: LengthDistribution = LengthDistribution.fixed(21),
    class_mix: Sequence[Tuple[QosClass, float]] = DEFAULT_MIX,
    seed: int = 0,
) -> Tuple[RequestSpec, ...]:
    """Sample one deterministic request stream.

    A :class:`TraceReplay` process short-circuits sampling and returns
    its recorded stream (truncated to ``num_requests`` when shorter).
    """
    if isinstance(process, TraceReplay):
        specs = process.specs[:num_requests] if num_requests else process.specs
        return tuple(sorted(specs, key=lambda s: (s.arrival_s, s.request_id)))
    if num_requests < 1:
        raise WorkloadError("request count must be positive")
    if not class_mix:
        raise WorkloadError("class mix cannot be empty")
    weights = np.asarray([weight for _, weight in class_mix], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise WorkloadError("class weights must be non-negative, sum > 0")

    rng = np.random.default_rng(seed)
    times = process.arrival_times(num_requests, rng)
    prompts = prompt_lengths.sample(rng, num_requests)
    gens = gen_lengths.sample(rng, num_requests)
    names = [qos.name for qos, _ in class_mix]
    picks = rng.choice(len(names), size=num_requests, p=weights / weights.sum())
    return tuple(
        RequestSpec(
            request_id=index,
            arrival_s=float(times[index]),
            prompt_len=int(prompts[index]),
            gen_len=int(gens[index]),
            qos_class=names[picks[index]],
        )
        for index in range(num_requests)
    )


def assign_prefix_groups(
    specs: Sequence[RequestSpec],
    num_groups: int = 4,
    prefix_len: int = 64,
    skew: float = 1.5,
    seed: int = 0,
) -> Tuple[RequestSpec, ...]:
    """Tag a request stream with skewed shared-prefix tenant groups.

    Group popularity follows a Zipf-like law with exponent ``skew``
    (group 0 is the hot tenant), modelling the multi-tenant
    shared-system-prompt traffic a prefix-affinity router exploits.
    Each tagged request shares its first ``prefix_len`` prompt tokens
    with its group, clamped to ``prompt_len - 1``; one-token prompts
    stay untagged.  Deterministic in ``seed`` and independent of the
    stream's own sampling.
    """
    if num_groups < 1:
        raise WorkloadError("need at least one prefix group")
    if prefix_len < 1:
        raise WorkloadError("prefix length must be >= 1")
    weights = np.asarray(
        [1.0 / (rank + 1.0) ** skew for rank in range(num_groups)]
    )
    rng = np.random.default_rng(seed)
    picks = rng.choice(num_groups, size=len(specs), p=weights / weights.sum())
    tagged: List[RequestSpec] = []
    for spec, pick in zip(specs, picks):
        share = min(prefix_len, spec.prompt_len - 1)
        if share < 1:
            tagged.append(spec)
            continue
        tagged.append(
            replace(
                spec,
                prefix_group=f"tenant-{int(pick)}",
                prefix_len=int(share),
            )
        )
    return tuple(tagged)


# ----------------------------------------------------------------------
# Trace files (JSONL, one request per line)
# ----------------------------------------------------------------------

_TRACE_FIELDS = ("request_id", "arrival_s", "prompt_len", "gen_len", "qos_class")


def save_trace(specs: Sequence[RequestSpec], path: str) -> None:
    """Write a request stream as a JSONL trace file.

    Prefix-sharing fields are emitted only when set, so traces written
    from untagged streams remain byte-identical to earlier releases.
    """
    with open(path, "w") as handle:
        for spec in specs:
            payload = {name: getattr(spec, name) for name in _TRACE_FIELDS}
            if spec.prefix_group is not None:
                payload["prefix_group"] = spec.prefix_group
                payload["prefix_len"] = spec.prefix_len
            handle.write(json.dumps(payload) + "\n")


def _validate_trace_record(spec: RequestSpec) -> None:
    """Bounds-check one decoded trace record.

    ``int()``/``float()`` casts alone would happily load a zero-token
    prompt, a negative generation length, or an arrival before time
    zero — records that crash (or silently corrupt metrics) deep
    inside the scheduler instead of failing at the file boundary.
    """
    if spec.request_id < 0:
        raise ValueError(f"request_id {spec.request_id} must be >= 0")
    if not np.isfinite(spec.arrival_s) or spec.arrival_s < 0:
        raise ValueError(
            f"arrival_s {spec.arrival_s} must be finite and >= 0"
        )
    if spec.prompt_len < 1:
        raise ValueError(f"prompt_len {spec.prompt_len} must be >= 1")
    if spec.gen_len < 1:
        raise ValueError(f"gen_len {spec.gen_len} must be >= 1")
    if spec.prefix_len < 0:
        raise ValueError(f"prefix_len {spec.prefix_len} must be >= 0")
    if spec.prefix_group is not None and spec.prefix_len >= spec.prompt_len:
        raise ValueError(
            f"prefix_len {spec.prefix_len} must be shorter than "
            f"prompt_len {spec.prompt_len}"
        )


def load_trace(path: str) -> Tuple[RequestSpec, ...]:
    """Read a JSONL trace file back into a request stream.

    Every record is bounds-checked as it is decoded; a bad line fails
    with its ``path:line_no`` location rather than corrupting a run.
    """
    specs: List[RequestSpec] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                group = payload.get("prefix_group")
                spec = RequestSpec(
                    request_id=int(payload["request_id"]),
                    arrival_s=float(payload["arrival_s"]),
                    prompt_len=int(payload["prompt_len"]),
                    gen_len=int(payload["gen_len"]),
                    qos_class=str(payload.get("qos_class", STANDARD.name)),
                    prefix_group=None if group is None else str(group),
                    prefix_len=int(payload.get("prefix_len", 0)),
                )
                _validate_trace_record(spec)
                specs.append(spec)
            except (
                KeyError,
                ValueError,
                WorkloadError,
                json.JSONDecodeError,
            ) as error:
                raise WorkloadError(
                    f"{path}:{line_no}: bad trace record: {error}"
                ) from None
    if not specs:
        raise WorkloadError(f"{path}: empty trace")
    return tuple(specs)
