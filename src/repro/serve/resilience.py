"""Graceful-degradation policy for the serving scheduler.

When a host tier degrades (GC pause, media wear, link flap), an
unprepared scheduler keeps admitting work the hardware can no longer
serve: every class's latency balloons together and the interactive
SLO is lost along with everything else.  The resilience policy
encodes the operator playbook instead:

1. **Shed** — reject waiting/arriving requests of the lowest-priority
   (batch) classes while degraded, and preempt running ones on entry
   into the event, preserving capacity for interactive tenants.
2. **Shrink** — cap the admitted batch at the degraded tier's
   effective capacity (``nominal / slowdown``).
3. **Re-plan** — re-run the placement algorithm against the degraded
   bandwidth map (:func:`repro.faults.degraded_host_config`), pricing
   iterations and the admission limit off what the hardware actually
   delivers.  Triggered at most once per degradation event.

All reactions are driven by the same seeded
:class:`~repro.faults.injector.FaultInjector` that prices the faults,
so a resilient chaos run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the scheduler's degraded-mode behavior."""

    #: Transfer slowdown at which a tier counts as degraded.
    degraded_threshold: float = 2.0
    #: Consecutive degraded iteration boundaries before reacting
    #: (debounces sub-second blips).
    sustain_iterations: int = 3
    #: Consecutive healthy boundaries before leaving degraded mode.
    recover_iterations: int = 3
    #: Reject waiting/arriving requests of sheddable classes while
    #: degraded.
    shed: bool = True
    #: Also preempt *running* sheddable requests on entry into a
    #: degradation event, freeing their KV slots for interactive
    #: admissions.  Without eviction, batch-tier sequences admitted
    #: before the event hold every slot for the whole (slowed) rest of
    #: their generation, and rejecting waiting work alone cannot
    #: protect the interactive tier.
    evict: bool = True
    #: QoS priorities >= this are sheddable (default: everything below
    #: the interactive tier, whose priority is 0).
    shed_priority_floor: int = 1
    #: Shrink the admitted batch to ``nominal / slowdown``.
    shrink_batch: bool = True
    #: Re-run placement against the degraded bandwidth map on entry
    #: into a degradation event (needs a replanner).
    replan: bool = True
    #: With a KV manager attached, demote KV resident on the degraded
    #: host tier to storage on entry into a degradation event (dynamic
    #: policies only; the migration is priced into the next
    #: iteration).
    demote_kv: bool = True
    #: Consecutive fully-stalled boundaries (tier down) before the run
    #: aborts by shedding all outstanding work — the backstop that
    #: keeps a permanent outage from hanging the simulation.
    stall_limit: int = 20

    def __post_init__(self) -> None:
        if self.degraded_threshold < 1.0:
            raise ConfigurationError("degraded_threshold must be >= 1")
        if self.sustain_iterations < 1 or self.recover_iterations < 1:
            raise ConfigurationError(
                "sustain/recover iteration counts must be >= 1"
            )
        if self.stall_limit < 1:
            raise ConfigurationError("stall_limit must be >= 1")


#: The default playbook: shed + shrink + re-plan.
DEFAULT_RESILIENCE = ResiliencePolicy()

#: Price the faults honestly but react to nothing — the baseline the
#: ablation compares against.
NO_RESILIENCE = ResiliencePolicy(
    shed=False, evict=False, shrink_batch=False, replan=False,
    demote_kv=False,
)


@dataclass
class ReplanOutcome:
    """What a placement re-plan produced."""

    #: A cost model priced against the degraded bandwidth map.
    costs: object
    #: The degraded admission limit.
    max_batch: int
    label: str = ""


#: severity (observed slowdown) -> degraded cost model + limit.
Replanner = Callable[[float], ReplanOutcome]


def engine_replanner(engine, overlap: bool = True) -> Replanner:
    """A :data:`Replanner` that re-runs ``engine``'s placement against
    the degraded bandwidth map via
    :meth:`~repro.core.engine.OffloadEngine.replan_for_degradation`.

    Outcomes are cached per rounded severity so repeated degradation
    events at the same intensity reuse one degraded engine.  The
    degraded cost model inherits ``engine``'s pricing backend and uses
    the sibling engine's own (fresh) price cache — the nominal
    engine's cache is invalidated by the re-plan itself.
    """
    cache: dict = {}

    def replan(severity: float) -> ReplanOutcome:
        key = round(max(1.0, severity), 2)
        if key not in cache:
            degraded_engine = engine.replan_for_degradation(
                host_slowdown=key
            )
            costs = degraded_engine.cost_model(overlap=overlap)
            cache[key] = ReplanOutcome(
                costs=costs,
                max_batch=costs.max_concurrency(),
                label=f"replan@{key:g}x",
            )
        return cache[key]

    return replan
