"""Graceful-degradation policy for the serving scheduler.

When a host tier degrades (GC pause, media wear, link flap), an
unprepared scheduler keeps admitting work the hardware can no longer
serve: every class's latency balloons together and the interactive
SLO is lost along with everything else.  The resilience policy
encodes the operator playbook instead:

1. **Shed** — reject waiting/arriving requests of the lowest-priority
   (batch) classes while degraded, and preempt running ones on entry
   into the event, preserving capacity for interactive tenants.
2. **Shrink** — cap the admitted batch at the degraded tier's
   effective capacity (``nominal / slowdown``).
3. **Re-plan** — re-run the placement algorithm against the degraded
   bandwidth map (:func:`repro.faults.degraded_host_config`), pricing
   iterations and the admission limit off what the hardware actually
   delivers.  Triggered at most once per degradation event.

All reactions are driven by the same seeded
:class:`~repro.faults.injector.FaultInjector` that prices the faults,
so a resilient chaos run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the scheduler's degraded-mode behavior."""

    #: Transfer slowdown at which a tier counts as degraded.
    degraded_threshold: float = 2.0
    #: Consecutive degraded iteration boundaries before reacting
    #: (debounces sub-second blips).
    sustain_iterations: int = 3
    #: Consecutive healthy boundaries before leaving degraded mode.
    recover_iterations: int = 3
    #: Reject waiting/arriving requests of sheddable classes while
    #: degraded.
    shed: bool = True
    #: Also preempt *running* sheddable requests on entry into a
    #: degradation event, freeing their KV slots for interactive
    #: admissions.  Without eviction, batch-tier sequences admitted
    #: before the event hold every slot for the whole (slowed) rest of
    #: their generation, and rejecting waiting work alone cannot
    #: protect the interactive tier.
    evict: bool = True
    #: QoS priorities >= this are sheddable (default: everything below
    #: the interactive tier, whose priority is 0).
    shed_priority_floor: int = 1
    #: Shrink the admitted batch to ``nominal / slowdown``.
    shrink_batch: bool = True
    #: Re-run placement against the degraded bandwidth map on entry
    #: into a degradation event (needs a replanner).
    replan: bool = True
    #: With a KV manager attached, demote KV resident on the degraded
    #: host tier to storage on entry into a degradation event (dynamic
    #: policies only; the migration is priced into the next
    #: iteration).  Tri-state: ``None`` auto-enables when a KV manager
    #: is attached at use-site; an explicit ``True`` with no manager
    #: is a contradiction and raises ``ConfigurationError`` there
    #: instead of silently doing nothing.
    demote_kv: Optional[bool] = None
    #: Emergency-migrate KV off a *structurally lost* tier (rescue)
    #: instead of shedding every request whose KV it held.  Tri-state
    #: like ``demote_kv``: ``None`` auto-enables with a dynamic KV
    #: manager; explicit ``True`` without one raises at use-site;
    #: ``False`` is the shed-only baseline chaos runs compare against.
    rescue_kv: Optional[bool] = None
    #: Consecutive fully-stalled boundaries (tier down) before the run
    #: aborts by shedding all outstanding work — the backstop that
    #: keeps a permanent outage from hanging the simulation.
    stall_limit: int = 20
    #: Per-request queueing deadline: a request still waiting this
    #: long after arrival is shed with reason ``"timeout"``.  ``None``
    #: (default) disables deadlines — bit-identical to the pre-chaos
    #: scheduler.
    queue_deadline_s: Optional[float] = None
    #: Client-side retry of shed requests: requests shed for a
    #: *recoverable* reason (timeout, lost KV, failed rescue) re-enter
    #: the arrival stream after a deterministic exponential backoff,
    #: modeling a well-behaved client.  Permanent rejections
    #: (``degraded`` load shedding, outage aborts) are not retried.
    retry_shed: bool = False
    #: Maximum client attempts per request (1 = no retry).
    retry_max_attempts: int = 3
    #: First client backoff, doubled (``retry_backoff_multiplier``)
    #: per subsequent attempt.  Deterministic — no jitter, no RNG.
    retry_backoff_s: float = 30.0
    retry_backoff_multiplier: float = 2.0
    #: Severity fed to the replanner when a tier is structurally lost
    #: (bandwidth degradations report their own slowdown; a loss has
    #: none, so the playbook plans for this effective derating).
    tier_loss_severity: float = 8.0

    def __post_init__(self) -> None:
        if self.degraded_threshold < 1.0:
            raise ConfigurationError("degraded_threshold must be >= 1")
        if self.sustain_iterations < 1 or self.recover_iterations < 1:
            raise ConfigurationError(
                "sustain/recover iteration counts must be >= 1"
            )
        if self.stall_limit < 1:
            raise ConfigurationError("stall_limit must be >= 1")
        if self.shed_priority_floor < 0:
            raise ConfigurationError("shed_priority_floor must be >= 0")
        if not self.shed and self.evict:
            raise ConfigurationError(
                "evict=True contradicts shed=False: eviction preempts "
                "running requests by shedding them, which the policy "
                "just forbade — enable shed or disable evict"
            )
        if self.queue_deadline_s is not None and self.queue_deadline_s <= 0:
            raise ConfigurationError("queue_deadline_s must be positive")
        if self.retry_shed:
            if self.retry_max_attempts < 2:
                raise ConfigurationError(
                    "retry_shed=True contradicts retry_max_attempts < 2: "
                    "the first attempt is the original request, so at "
                    "least one more is needed for a retry to exist"
                )
            if self.retry_backoff_s <= 0:
                raise ConfigurationError("retry_backoff_s must be positive")
            if self.retry_backoff_multiplier < 1.0:
                raise ConfigurationError(
                    "retry_backoff_multiplier must be >= 1"
                )
        if self.tier_loss_severity < 1.0:
            raise ConfigurationError("tier_loss_severity must be >= 1")

    def wants_demote_kv(self, kv) -> bool:
        """Resolve the tri-state ``demote_kv`` against the manager
        actually attached; raises on the contradictory combination."""
        return _resolve_kv_flag("demote_kv", self.demote_kv, kv)

    def wants_rescue_kv(self, kv) -> bool:
        """Resolve the tri-state ``rescue_kv`` likewise."""
        return _resolve_kv_flag("rescue_kv", self.rescue_kv, kv)

    def client_backoff_s(self, attempt: int) -> float:
        """Backoff before client attempt ``attempt`` (2 = first
        retry).  Deterministic exponential — no RNG."""
        return self.retry_backoff_s * (
            self.retry_backoff_multiplier ** max(0, attempt - 2)
        )


def _resolve_kv_flag(name: str, value: Optional[bool], kv) -> bool:
    if value is None:
        return kv is not None
    if value and kv is None:
        raise ConfigurationError(
            f"{name}=True needs a KV manager attached to the scheduler "
            "(kv=...): there is no KV to act on, so the flag would be "
            "a silent no-op — pass a manager or leave the flag None"
        )
    return bool(value)


#: The default playbook: shed + shrink + re-plan.
DEFAULT_RESILIENCE = ResiliencePolicy()

#: Price the faults honestly but react to nothing — the baseline the
#: ablation compares against.
NO_RESILIENCE = ResiliencePolicy(
    shed=False, evict=False, shrink_batch=False, replan=False,
    demote_kv=False, rescue_kv=False,
)


@dataclass
class ReplanOutcome:
    """What a placement re-plan produced."""

    #: A cost model priced against the degraded bandwidth map.
    costs: object
    #: The degraded admission limit.
    max_batch: int
    label: str = ""


#: severity (observed slowdown) -> degraded cost model + limit.
Replanner = Callable[[float], ReplanOutcome]


def engine_replanner(engine, overlap: bool = True) -> Replanner:
    """A :data:`Replanner` that re-runs ``engine``'s placement against
    the degraded bandwidth map via
    :meth:`~repro.core.engine.OffloadEngine.replan_for_degradation`.

    Outcomes are cached per rounded severity so repeated degradation
    events at the same intensity reuse one degraded engine.  The
    degraded cost model inherits ``engine``'s pricing backend and uses
    the sibling engine's own (fresh) price cache — the nominal
    engine's cache is invalidated by the re-plan itself.
    """
    cache: dict = {}

    def replan(severity: float) -> ReplanOutcome:
        key = round(max(1.0, severity), 2)
        if key not in cache:
            degraded_engine = engine.replan_for_degradation(
                host_slowdown=key
            )
            costs = degraded_engine.cost_model(overlap=overlap)
            cache[key] = ReplanOutcome(
                costs=costs,
                max_batch=costs.max_concurrency(),
                label=f"replan@{key:g}x",
            )
        return cache[key]

    return replan
