"""Simulated devices: GPU, CPU (host memory), and disk.

A :class:`~repro.devices.device.Device` is a capacity-accounted
allocator that tensors live on.  Tensors
(:class:`~repro.devices.tensor.SimTensor`) come in two flavours:

* **real** — backed by a numpy array; used by the functional backend
  to actually run small OPT models end to end;
* **virtual** — size-only; used by the timing backend to place and
  move OPT-30B/175B without 324 GiB of RAM.

The GPU additionally carries a roofline compute model
(:class:`~repro.devices.gpu.GpuComputeModel`) used to cost kernels.
"""

from repro.devices.device import Device, DeviceKind
from repro.devices.tensor import SimTensor
from repro.devices.gpu import A100_SPEC, GpuComputeModel, GpuDevice, GpuSpec
from repro.devices.cpu import CpuComputeModel, CpuDevice
from repro.devices.disk import DiskDevice

__all__ = [
    "Device",
    "DeviceKind",
    "SimTensor",
    "GpuDevice",
    "GpuSpec",
    "GpuComputeModel",
    "A100_SPEC",
    "CpuDevice",
    "CpuComputeModel",
    "DiskDevice",
]
