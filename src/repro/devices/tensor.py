"""Simulated tensors: real (numpy-backed) or virtual (size-only)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import AllocationError
from repro.devices.device import Device
from repro.units import fmt_bytes

_DTYPE_BYTES = {
    "float16": 2,
    "float32": 4,
    "int8": 1,
    "uint8": 1,
    "int32": 4,
    "int64": 8,
}


def dtype_bytes(dtype: str) -> int:
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError:
        raise AllocationError(f"unsupported dtype {dtype!r}") from None


class SimTensor:
    """A tensor with a home device.

    A *real* tensor carries a numpy array (functional backend); a
    *virtual* tensor carries only its byte size (timing backend).
    Moving a tensor between devices is done by the owning runtime,
    which releases and re-reserves capacity; the tensor itself only
    records where it lives.
    """

    def __init__(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: str = "float16",
        data: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
    ) -> None:
        self.name = name
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = dtype
        self.data = data
        if data is not None and tuple(data.shape) != self.shape:
            raise AllocationError(
                f"tensor {name!r}: data shape {data.shape} does not match "
                f"declared shape {self.shape}"
            )
        if nbytes is None:
            count = 1
            for dim in self.shape:
                count *= dim
            nbytes = count * dtype_bytes(dtype)
        self.nbytes = int(nbytes)
        self.device: Optional[Device] = None
        self._handle: Optional[int] = None

    @property
    def is_virtual(self) -> bool:
        return self.data is None

    @property
    def is_placed(self) -> bool:
        return self.device is not None

    def place_on(self, device: Device) -> None:
        """Allocate this tensor on ``device`` (moving it if placed)."""
        handle = device.allocate(self.nbytes, label=self.name)
        self.release()
        self.device = device
        self._handle = handle

    def release(self) -> None:
        """Free this tensor's allocation, if any."""
        if self.device is not None and self._handle is not None:
            self.device.free(self._handle)
        self.device = None
        self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.device.name if self.device else "unplaced"
        kind = "virtual" if self.is_virtual else "real"
        return (
            f"<SimTensor {self.name!r} {self.shape} {self.dtype} "
            f"{fmt_bytes(self.nbytes)} {kind} on {where}>"
        )
