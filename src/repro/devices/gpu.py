"""GPU device and roofline compute model (Table I: A100-PCIe 40 GB).

The paper's evaluation never needs cycle-level GPU detail: every
result is a function of (a) how long kernels take and (b) how long
weight transfers take.  Kernels are costed with a two-term roofline —
``max(flops / peak_flops, bytes / hbm_bandwidth)`` plus launch
overhead — and, when weights arrive group-wise quantized, an
additional dequantization term proportional to the compressed bytes
(FlexGen decompresses on the fly, which is why the paper sees compute
inflate 2.5x-13x under compression).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import Device, DeviceKind
from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.units import MIB


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU."""

    name: str
    #: Total on-board memory (nvidia-smi reports 40536 MiB for A100-40GB).
    hbm_bytes: int
    hbm_bandwidth: float
    fp16_flops: float
    #: Memory reserved by the CUDA context/driver, unavailable to tensors.
    context_reserve_bytes: int = 600 * MIB
    #: Fraction of the remainder lost to fragmentation/allocator slack.
    fragmentation_reserve: float = 0.05

    def __post_init__(self) -> None:
        if self.hbm_bytes <= 0 or self.hbm_bandwidth <= 0 or self.fp16_flops <= 0:
            raise ConfigurationError("GPU spec values must be positive")
        if not (0 <= self.fragmentation_reserve < 1):
            raise ConfigurationError("fragmentation reserve must be in [0, 1)")

    @property
    def usable_bytes(self) -> int:
        """Memory actually available for weights/KV/workspace."""
        after_context = self.hbm_bytes - self.context_reserve_bytes
        return int(after_context * (1.0 - self.fragmentation_reserve))


#: The evaluation platform's GPU.
A100_SPEC = GpuSpec(
    name="NVIDIA A100-PCIe-40GB",
    hbm_bytes=40536 * MIB,
    hbm_bandwidth=cal.GPU_HBM_BANDWIDTH,
    fp16_flops=cal.GPU_FP16_TFLOPS,
)


@dataclass(frozen=True)
class GpuComputeModel:
    """Roofline kernel-time model for one GPU."""

    spec: GpuSpec = A100_SPEC
    gemm_efficiency: float = cal.GPU_GEMM_EFFICIENCY
    hbm_efficiency: float = cal.GPU_HBM_EFFICIENCY
    launch_overhead_s: float = cal.GPU_KERNEL_LAUNCH_OVERHEAD
    kernels_per_layer: int = cal.GPU_KERNELS_PER_LAYER
    dequant_throughput: float = cal.GPU_DEQUANT_THROUGHPUT

    @property
    def effective_flops(self) -> float:
        return self.spec.fp16_flops * self.gemm_efficiency

    @property
    def effective_hbm_bandwidth(self) -> float:
        return self.spec.hbm_bandwidth * self.hbm_efficiency

    def kernel_time(self, flops: float, hbm_bytes: float) -> float:
        """Roofline time for one layer's worth of kernels."""
        if flops < 0 or hbm_bytes < 0:
            raise ConfigurationError("flops and bytes must be >= 0")
        roofline = max(
            flops / self.effective_flops,
            hbm_bytes / self.effective_hbm_bandwidth,
        )
        return roofline + self.kernels_per_layer * self.launch_overhead_s

    def dequant_time(self, compressed_bytes: float) -> float:
        """On-the-fly group-wise dequantization cost."""
        if compressed_bytes < 0:
            raise ConfigurationError("compressed bytes must be >= 0")
        return compressed_bytes / self.dequant_throughput


class GpuDevice(Device):
    """An allocatable GPU with its compute model attached."""

    def __init__(
        self,
        spec: GpuSpec = A100_SPEC,
        compute: GpuComputeModel = None,
    ) -> None:
        super().__init__(
            name=spec.name, kind=DeviceKind.GPU, capacity_bytes=spec.usable_bytes
        )
        self.spec = spec
        self.compute = compute if compute is not None else GpuComputeModel(spec)
