"""Storage-tier device (NVMe SSD or Optane FSDAX)."""

from __future__ import annotations

from repro.devices.device import Device, DeviceKind
from repro.errors import ConfigurationError
from repro.memory.hierarchy import HostMemoryConfig


class DiskDevice(Device):
    """The storage tier, sized from a host-memory configuration."""

    def __init__(self, config: HostMemoryConfig) -> None:
        region = config.disk_region
        if region is None:
            raise ConfigurationError(
                f"configuration {config.label!r} has no storage tier"
            )
        super().__init__(
            name=f"disk[{config.label}]",
            kind=DeviceKind.DISK,
            capacity_bytes=region.capacity_bytes,
        )
        self.config = config
        self.region = region
