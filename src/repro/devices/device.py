"""Capacity-accounted device allocator."""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import AllocationError, CapacityError
from repro.units import fmt_bytes


class DeviceKind(enum.Enum):
    """The three tiers of FlexGen's memory hierarchy."""

    GPU = "gpu"
    CPU = "cpu"
    DISK = "disk"


class Device:
    """A memory device that tensors are allocated on.

    Tracks usage against capacity and refuses over-allocation — this
    is what makes max-batch-size searches honest.
    """

    def __init__(self, name: str, kind: DeviceKind, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise AllocationError(f"device {name!r}: capacity must be positive")
        self.name = name
        self.kind = kind
        self.capacity_bytes = int(capacity_bytes)
        self._used_bytes = 0
        self._allocations: Dict[int, int] = {}
        self._next_handle = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def allocate(self, nbytes: int, label: Optional[str] = None) -> int:
        """Reserve ``nbytes``; returns an allocation handle.

        Raises:
            CapacityError: If the device cannot hold the allocation.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise AllocationError(
                f"device {self.name!r}: cannot allocate {nbytes} bytes"
            )
        if nbytes > self.free_bytes:
            raise CapacityError(self.name, nbytes, self.free_bytes)
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = nbytes
        self._used_bytes += nbytes
        return handle

    def free(self, handle: int) -> None:
        try:
            nbytes = self._allocations.pop(handle)
        except KeyError:
            raise AllocationError(
                f"device {self.name!r}: unknown or double-freed handle {handle}"
            ) from None
        self._used_bytes -= nbytes

    def can_fit(self, nbytes: int) -> bool:
        return 0 <= nbytes <= self.free_bytes

    def reset(self) -> None:
        """Drop all allocations (start of a fresh run)."""
        self._allocations.clear()
        self._used_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Device {self.name!r} {self.kind.value} "
            f"{fmt_bytes(self._used_bytes)}/{fmt_bytes(self.capacity_bytes)}>"
        )
