"""Host-memory device (the "CPU" tier) and the CPU compute model.

The capacity-accounting device is sized from a host-memory
configuration; the compute model costs the work FlexGen can delegate
to the CPU — most importantly attention over a host-resident KV cache
(``cpu_cache_compute``), which trades streaming the cache over PCIe
for computing next to it at host-memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import Device, DeviceKind
from repro.errors import ConfigurationError
from repro.memory import calibration as cal
from repro.memory.hierarchy import HostMemoryConfig


class CpuDevice(Device):
    """The host-memory tier, sized from a host-memory configuration.

    The *performance* of this tier comes from the configuration's host
    region (DRAM, Optane, Memory Mode, CXL, ...); the device object
    only does capacity accounting.
    """

    def __init__(self, config: HostMemoryConfig) -> None:
        region = config.host_region
        super().__init__(
            name=f"cpu[{config.label}]",
            kind=DeviceKind.CPU,
            capacity_bytes=region.capacity_bytes,
        )
        self.config = config
        self.region = region


@dataclass(frozen=True)
class CpuComputeModel:
    """Roofline model for CPU-delegated kernels.

    The memory term is bounded by the *host technology's* streaming
    read rate (attention over a cache in Optane runs at Optane speed),
    capped by what the CPU cores themselves can stream.
    """

    effective_flops: float = cal.CPU_EFFECTIVE_FLOPS
    effective_mem_bw: float = cal.CPU_EFFECTIVE_MEM_BW
    dispatch_overhead_s: float = cal.CPU_ATTENTION_OVERHEAD

    def kernel_time(
        self, flops: float, mem_bytes: float, memory_bandwidth: float = None
    ) -> float:
        """Roofline time for one CPU-delegated kernel.

        Args:
            memory_bandwidth: Streaming rate of the memory the kernel
                reads (e.g. Optane's); capped at the CPU's own limit.
        """
        if flops < 0 or mem_bytes < 0:
            raise ConfigurationError("flops and bytes must be >= 0")
        bandwidth = self.effective_mem_bw
        if memory_bandwidth is not None:
            if memory_bandwidth <= 0:
                raise ConfigurationError("memory bandwidth must be positive")
            bandwidth = min(bandwidth, memory_bandwidth)
        roofline = max(flops / self.effective_flops, mem_bytes / bandwidth)
        return roofline + self.dispatch_overhead_s
