"""``repro-simulate`` — one-off serving simulations from the shell.

Examples::

    repro-simulate --model opt-175b --host NVDRAM --placement helm \
        --compress --batch 1
    repro-simulate --host MemoryMode --placement allcpu --batch max \
        --compress --energy
    repro-simulate --target-tbt 4.5 --compress          # QoS planning
    repro-simulate --placement helm --compress --trace run.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.engine import OffloadEngine
from repro.core.policy import Policy, default_policy
from repro.core.qos import QosTarget, plan_for_qos
from repro.core.serving import serve
from repro.errors import ReproError
from repro.memory.hierarchy import HOST_CONFIG_LABELS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description=(
            "Simulate out-of-core LLM serving on heterogeneous host "
            "memory (IISWC 2025 reproduction)."
        ),
    )
    parser.add_argument("--model", default="opt-175b")
    parser.add_argument(
        "--host", default="NVDRAM",
        help=f"one of {', '.join(HOST_CONFIG_LABELS)}",
    )
    parser.add_argument(
        "--placement", default="baseline",
        help="baseline | helm | allcpu",
    )
    parser.add_argument(
        "--batch", default="1",
        help="batch size, or 'max' for the largest feasible batch",
    )
    parser.add_argument("--prompt-len", type=int, default=128)
    parser.add_argument("--gen-len", type=int, default=21)
    parser.add_argument(
        "--compress", action="store_true",
        help="4-bit group-wise weight quantization",
    )
    parser.add_argument(
        "--kv-gpu-percent", type=float, default=100.0,
        help="share of the KV cache resident on the GPU",
    )
    parser.add_argument(
        "--gpu-batches", type=int, default=1,
        help="zig-zag micro-batches per layer pass",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="serve the batch N times (paper methodology when N=10)",
    )
    parser.add_argument(
        "--energy", action="store_true", help="print an energy estimate"
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a chrome://tracing JSON of the run",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="write the summary as JSON"
    )
    parser.add_argument(
        "--target-tbt", type=float,
        help="plan placement/batch for a TBT bound (seconds) instead "
        "of running one configuration",
    )
    parser.add_argument(
        "--target-throughput", type=float,
        help="plan for a minimum tokens/s",
    )
    return parser


def _make_policy(args) -> Policy:
    base = default_policy(args.model, args.host)
    policy = base.with_compression(args.compress)
    if args.kv_gpu_percent != 100.0:
        policy = policy.with_kv(gpu_percent=args.kv_gpu_percent)
    if args.gpu_batches != 1:
        policy = policy.with_gpu_batches(args.gpu_batches)
    return policy


def _print_kv(pairs) -> None:
    width = max(len(key) for key, _ in pairs)
    for key, value in pairs:
        print(f"  {key:<{width}} : {value}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.target_tbt or args.target_throughput:
            target = QosTarget(
                max_tbt_s=args.target_tbt,
                min_throughput_tps=args.target_throughput,
            )
            plan = plan_for_qos(
                target,
                model=args.model,
                host=args.host,
                compress_weights=args.compress,
                prompt_len=args.prompt_len,
                gen_len=args.gen_len,
            )
            summary = plan.summary()
            print("QoS plan:")
            _print_kv(sorted(summary.items()))
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(summary, handle, indent=1)
            return 0 if plan.meets_target else 2

        policy = _make_policy(args)
        probe = OffloadEngine(
            model=args.model, host=args.host, placement=args.placement,
            policy=policy, batch_size=1,
            prompt_len=args.prompt_len, gen_len=args.gen_len,
        )
        batch = (
            probe.max_batch_size()
            if args.batch == "max"
            else int(args.batch)
        )
        engine = OffloadEngine(
            model=args.model, host=args.host, placement=args.placement,
            policy=policy, batch_size=batch,
            prompt_len=args.prompt_len, gen_len=args.gen_len,
        )
        if args.repeats > 1:
            report = serve(engine, repeats=args.repeats)
            summary = report.summary()
        else:
            metrics = engine.run_timing()
            summary = metrics.summary()
        summary["model"] = args.model
        summary["host"] = args.host
        summary["placement"] = args.placement
        summary["batch_size"] = batch
        if engine.spill_log:
            summary["spilled"] = list(engine.spill_log)

        print(f"{args.model} on {args.host}, {args.placement}, batch {batch}:")
        _print_kv(sorted(summary.items()))

        if args.energy:
            from repro.analysis.energy import estimate_energy

            metrics = engine.run_timing()
            energy = estimate_energy(engine, metrics)
            print("energy estimate:")
            _print_kv(sorted(energy.as_dict().items()))
            summary["energy"] = energy.as_dict()

        if args.trace:
            from repro.sim.chrome_trace import save_chrome_trace

            if not hasattr(engine, "last_trace"):
                engine.run_timing()
            save_chrome_trace(engine.last_trace, args.trace)
            print(f"trace written to {args.trace}")

        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=1)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
