"""KV-cache footprint accounting.

Section V of the paper: for OPT-175B at batch 1 and context 2048 the
KV cache is the second-largest memory consumer after the weights.  We
use the standard fp16 arithmetic (K and V, each ``tokens x hidden``
per decoder block); FlexGen pre-allocates the cache for the full
``prompt_len + gen_len`` window, which is what gates the maximum
batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.config import OptConfig


def kv_bytes_per_token(config: OptConfig, dtype_bytes: float = None) -> int:
    """KV bytes one token adds across *all* decoder blocks.

    ``dtype_bytes`` may be fractional (0.5625 for 4-bit group-wise
    quantized cache entries including group metadata).
    """
    width = config.dtype_bytes if dtype_bytes is None else dtype_bytes
    return int(round(2 * config.shard_hidden * width * config.num_decoder_blocks))


def kv_bytes_per_token_per_block(
    config: OptConfig, dtype_bytes: float = None
) -> int:
    """Per-block KV bytes; a TP shard holds only its heads' K/V."""
    width = config.dtype_bytes if dtype_bytes is None else dtype_bytes
    return int(round(2 * config.shard_hidden * width))


def kv_cache_bytes(
    config: OptConfig,
    batch_size: int,
    tokens: int,
    dtype_bytes: float = None,
) -> int:
    """Total KV footprint for ``batch_size`` prompts of ``tokens`` each."""
    if batch_size <= 0 or tokens <= 0:
        raise ConfigurationError("batch size and token count must be positive")
    return batch_size * tokens * kv_bytes_per_token(config, dtype_bytes)


@dataclass(frozen=True)
class KvCachePlan:
    """A pre-allocated KV cache for one generation run."""

    config: OptConfig
    batch_size: int
    prompt_len: int
    gen_len: int
    #: Element width; 2 for fp16, ~0.5625 for a 4-bit group-wise
    #: quantized cache (including group metadata).
    dtype_bytes: float = 2

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        if self.prompt_len <= 0 or self.gen_len <= 0:
            raise ConfigurationError("sequence lengths must be positive")
        if self.capacity_tokens > self.config.max_position:
            raise ConfigurationError(
                f"{self.config.name}: prompt {self.prompt_len} + gen "
                f"{self.gen_len} exceeds max position {self.config.max_position}"
            )

    @property
    def capacity_tokens(self) -> int:
        return self.prompt_len + self.gen_len

    @property
    def total_bytes(self) -> int:
        """Footprint of the fully pre-allocated cache."""
        return kv_cache_bytes(
            self.config, self.batch_size, self.capacity_tokens, self.dtype_bytes
        )

    @property
    def per_block_bytes(self) -> int:
        return (
            self.batch_size
            * self.capacity_tokens
            * kv_bytes_per_token_per_block(self.config, self.dtype_bytes)
        )

    def read_bytes_at(self, context_len: int) -> int:
        """HBM bytes one decode step reads from one block's cache."""
        if context_len <= 0:
            return 0
        return (
            self.batch_size
            * min(context_len, self.capacity_tokens)
            * kv_bytes_per_token_per_block(self.config, self.dtype_bytes)
        )

    def write_bytes_per_step(self, new_tokens: int = 1) -> int:
        """HBM bytes one step appends to one block's cache."""
        return (
            self.batch_size
            * new_tokens
            * kv_bytes_per_token_per_block(self.config, self.dtype_bytes)
        )
