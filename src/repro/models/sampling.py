"""Token sampling strategies."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


def greedy_sample(logits: np.ndarray) -> np.ndarray:
    """Argmax over the vocabulary axis; (batch, vocab) -> (batch,)."""
    if logits.ndim != 2:
        raise ConfigurationError("logits must be (batch, vocab)")
    return logits.argmax(axis=-1).astype(np.int64)


def top_k_sample(
    logits: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    temperature: float = 1.0,
) -> np.ndarray:
    """Sample from the top-k tokens of each row."""
    if logits.ndim != 2:
        raise ConfigurationError("logits must be (batch, vocab)")
    if k <= 0 or k > logits.shape[1]:
        raise ConfigurationError(
            f"k must be in [1, vocab]; got {k} for vocab {logits.shape[1]}"
        )
    if temperature <= 0:
        raise ConfigurationError("temperature must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)

    scaled = logits.astype(np.float64) / temperature
    out = np.empty(logits.shape[0], dtype=np.int64)
    for row in range(scaled.shape[0]):
        top = np.argpartition(scaled[row], -k)[-k:]
        weights = scaled[row, top] - scaled[row, top].max()
        probs = np.exp(weights)
        probs /= probs.sum()
        out[row] = rng.choice(top, p=probs)
    return out
