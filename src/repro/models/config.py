"""OPT model-family configurations (Zhang et al., arXiv:2205.01068).

The paper evaluates OPT-30B (48 decoder blocks, hidden 7168) and
OPT-175B (96 blocks, hidden 12288).  The smaller family members are
included both for completeness and because the functional backend
runs tiny configurations for correctness validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OptConfig:
    """Architecture hyper-parameters of one OPT model."""

    name: str
    hidden_size: int
    num_decoder_blocks: int
    num_heads: int
    vocab_size: int = 50272
    max_position: int = 2050
    ffn_multiplier: int = 4
    dtype_bytes: int = 2  # fp16 weights, as FlexGen serves them
    #: Tensor-parallel degree this configuration describes ONE shard of.
    #: Attention heads, FFN columns, and the vocabulary are split this
    #: many ways (Megatron-style); activations stay full-width.
    tensor_parallel: int = 1
    #: Pipeline stages other than the first/last drop the embedding
    #: and head layers respectively.
    include_embed: bool = True
    include_head: bool = True

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.num_decoder_blocks <= 0:
            raise ConfigurationError(f"{self.name}: sizes must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ConfigurationError(
                f"{self.name}: hidden size {self.hidden_size} is not "
                f"divisible by {self.num_heads} heads"
            )
        if self.tensor_parallel < 1:
            raise ConfigurationError(
                f"{self.name}: tensor_parallel must be >= 1"
            )
        if self.num_heads % self.tensor_parallel != 0:
            raise ConfigurationError(
                f"{self.name}: {self.num_heads} heads are not divisible "
                f"by tensor_parallel={self.tensor_parallel}"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def ffn_dim(self) -> int:
        return self.hidden_size * self.ffn_multiplier

    @property
    def shard_heads(self) -> int:
        """Attention heads owned by this tensor-parallel shard."""
        return self.num_heads // self.tensor_parallel

    @property
    def shard_hidden(self) -> int:
        """Projection width of this shard (``head_dim * shard_heads``).

        Equals ``hidden_size`` at ``tensor_parallel=1`` — divisibility
        is guaranteed because ``tensor_parallel`` divides ``num_heads``
        and ``num_heads`` divides ``hidden_size``.
        """
        return self.hidden_size // self.tensor_parallel

    @property
    def shard_ffn_dim(self) -> int:
        """FFN intermediate columns owned by this shard."""
        return self.ffn_dim // self.tensor_parallel

    @property
    def shard_vocab(self) -> int:
        """Vocabulary rows owned by this shard (ceil split)."""
        tp = self.tensor_parallel
        return (self.vocab_size + tp - 1) // tp

    @property
    def num_hidden_layers(self) -> int:
        """MHA + FFN layers, as FlexGen schedules them (Section III-B:
        96 and 192 for OPT-30B/175B)."""
        return 2 * self.num_decoder_blocks

    @property
    def num_layers(self) -> int:
        """Hidden layers plus the embedding/head layers this stage
        carries (98 and 194 for full OPT-30B/175B)."""
        return (
            self.num_hidden_layers
            + int(self.include_embed)
            + int(self.include_head)
        )

    @property
    def decoder_block_params(self) -> int:
        """Parameters in one decoder block (matrices + biases + norms),
        for the slice this shard owns."""
        h = self.hidden_size
        w = self.shard_hidden
        f_w = self.shard_ffn_dim
        mha = 4 * h * w + 3 * w + h + 2 * h      # QKVO + biases + LN
        ffn = 2 * h * f_w + f_w + h + 2 * h      # FC1/FC2 + biases + LN
        return mha + ffn

    @property
    def param_count(self) -> int:
        h = self.hidden_size
        v_w = self.shard_vocab
        embed = (v_w * h + self.max_position * h) if self.include_embed else 0
        head = (v_w * h + 2 * h) if self.include_head else 0
        return (
            self.num_decoder_blocks * self.decoder_block_params + embed + head
        )

    @property
    def weight_bytes(self) -> int:
        return self.param_count * self.dtype_bytes


def _cfg(name: str, hidden: int, blocks: int, heads: int, **kw) -> OptConfig:
    return OptConfig(
        name=name,
        hidden_size=hidden,
        num_decoder_blocks=blocks,
        num_heads=heads,
        **kw,
    )


#: Published OPT sizes plus tiny configurations for functional tests.
OPT_CONFIGS = {
    cfg.name: cfg
    for cfg in (
        # Tiny configs: real numpy execution in tests/examples.
        _cfg("opt-tiny", 64, 2, 4, vocab_size=512, max_position=128),
        _cfg("opt-mini", 128, 4, 8, vocab_size=1024, max_position=256),
        # The published family.
        _cfg("opt-125m", 768, 12, 12),
        _cfg("opt-350m", 1024, 24, 16),
        _cfg("opt-1.3b", 2048, 24, 32),
        _cfg("opt-2.7b", 2560, 32, 32),
        _cfg("opt-6.7b", 4096, 32, 32),
        _cfg("opt-13b", 5120, 40, 40),
        _cfg("opt-30b", 7168, 48, 56),
        _cfg("opt-66b", 9216, 64, 72),
        _cfg("opt-175b", 12288, 96, 96),
    )
}


def opt_config(name: str) -> OptConfig:
    """Look up a configuration by name (e.g. ``"opt-175b"``)."""
    key = name.lower()
    try:
        return OPT_CONFIGS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown OPT configuration {name!r}; "
            f"available: {sorted(OPT_CONFIGS)}"
        ) from None
