"""Per-layer weight inventories, exactly as FlexGen's allocator sees them.

FlexGen schedules a model as a flat list of *layers*: the input
embedding, then an alternating sequence of MHA and FFN layers (two per
decoder block), then the output embedding/head (Section III-B: 98 and
194 layers for OPT-30B and OPT-175B).  Each layer owns an ordered list
of :class:`WeightSpec` — the ``weight_specs`` that Listing 2's
``init_weight_list`` iterates over.  The order below matches the
FlexGen artifact's (projection matrices first, then biases, then
layer norms), which is what makes the baseline allocator's achieved
split come out to the paper's (0, 91.7, 8.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.models.config import OptConfig


class LayerKind(enum.Enum):
    """FlexGen layer kinds."""

    EMBED = "embed"
    MHA = "mha"
    FFN = "ffn"
    HEAD = "head"

    @property
    def is_hidden(self) -> bool:
        return self in (LayerKind.MHA, LayerKind.FFN)


class WeightCategory(enum.Enum):
    MATRIX = "matrix"
    BIAS = "bias"
    NORM = "norm"
    EMBEDDING = "embedding"


@dataclass(frozen=True)
class WeightSpec:
    """One weight tensor within a layer."""

    name: str
    shape: Tuple[int, ...]
    dtype_bytes: int
    category: WeightCategory

    @property
    def param_count(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def size(self) -> int:
        """Byte size (the ``spec.size`` of Listing 2)."""
        return self.param_count * self.dtype_bytes


@dataclass(frozen=True)
class LayerSpec:
    """One schedulable layer and its ordered weights."""

    index: int
    kind: LayerKind
    weights: Tuple[WeightSpec, ...]

    @property
    def total_bytes(self) -> int:
        return sum(spec.size for spec in self.weights)

    @property
    def matrix_bytes(self) -> int:
        return sum(
            spec.size
            for spec in self.weights
            if spec.category
            in (WeightCategory.MATRIX, WeightCategory.EMBEDDING)
        )

    def weight(self, name: str) -> WeightSpec:
        for spec in self.weights:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"layer {self.index} ({self.kind.value}) has no weight "
            f"{name!r}"
        )


def mha_weight_specs(config: OptConfig) -> Tuple[WeightSpec, ...]:
    """Weights of one multi-head-attention layer, in FlexGen order.

    Under tensor parallelism the Q/K/V projections are column-parallel
    (each shard owns ``shard_hidden`` output rows and their biases),
    the output projection is row-parallel (full output, ``shard_hidden``
    input columns), and the norms plus output bias are replicated.
    """
    h = config.hidden_size
    w = config.shard_hidden
    b = config.dtype_bytes
    return (
        WeightSpec("w_q", (w, h), b, WeightCategory.MATRIX),
        WeightSpec("w_k", (w, h), b, WeightCategory.MATRIX),
        WeightSpec("w_v", (w, h), b, WeightCategory.MATRIX),
        WeightSpec("w_out", (h, w), b, WeightCategory.MATRIX),
        WeightSpec("b_q", (w,), b, WeightCategory.BIAS),
        WeightSpec("b_k", (w,), b, WeightCategory.BIAS),
        WeightSpec("b_v", (w,), b, WeightCategory.BIAS),
        WeightSpec("b_out", (h,), b, WeightCategory.BIAS),
        WeightSpec("ln_w", (h,), b, WeightCategory.NORM),
        WeightSpec("ln_b", (h,), b, WeightCategory.NORM),
    )


def ffn_weight_specs(config: OptConfig) -> Tuple[WeightSpec, ...]:
    """Weights of one feed-forward layer, in FlexGen order.

    FC1 is column-parallel (shard owns ``shard_ffn_dim`` intermediate
    rows), FC2 row-parallel; the FC2 bias and norms are replicated.
    """
    h = config.hidden_size
    f_w = config.shard_ffn_dim
    b = config.dtype_bytes
    return (
        WeightSpec("w_fc1", (f_w, h), b, WeightCategory.MATRIX),
        WeightSpec("w_fc2", (h, f_w), b, WeightCategory.MATRIX),
        WeightSpec("b_fc1", (f_w,), b, WeightCategory.BIAS),
        WeightSpec("b_fc2", (h,), b, WeightCategory.BIAS),
        WeightSpec("ln_w", (h,), b, WeightCategory.NORM),
        WeightSpec("ln_b", (h,), b, WeightCategory.NORM),
    )


def embed_weight_specs(config: OptConfig) -> Tuple[WeightSpec, ...]:
    h = config.hidden_size
    b = config.dtype_bytes
    return (
        WeightSpec(
            "token_emb", (config.shard_vocab, h), b, WeightCategory.EMBEDDING
        ),
        WeightSpec(
            "pos_emb", (config.max_position, h), b, WeightCategory.EMBEDDING
        ),
    )


def head_weight_specs(config: OptConfig) -> Tuple[WeightSpec, ...]:
    h = config.hidden_size
    b = config.dtype_bytes
    return (
        WeightSpec(
            "lm_head", (config.shard_vocab, h), b, WeightCategory.EMBEDDING
        ),
        WeightSpec("ln_w", (h,), b, WeightCategory.NORM),
        WeightSpec("ln_b", (h,), b, WeightCategory.NORM),
    )


def model_layers(config: OptConfig) -> Tuple[LayerSpec, ...]:
    """The full layer sequence FlexGen iterates over (Listing 1).

    Pipeline stages drop the embedding (non-first) and head (non-last)
    layers via the config's ``include_embed``/``include_head`` flags;
    indices stay contiguous within the stage.
    """
    layers = []
    index = 0
    if config.include_embed:
        layers.append(LayerSpec(0, LayerKind.EMBED, embed_weight_specs(config)))
        index = 1
    for _ in range(config.num_decoder_blocks):
        layers.append(LayerSpec(index, LayerKind.MHA, mha_weight_specs(config)))
        index += 1
        layers.append(LayerSpec(index, LayerKind.FFN, ffn_weight_specs(config)))
        index += 1
    if config.include_head:
        layers.append(
            LayerSpec(index, LayerKind.HEAD, head_weight_specs(config))
        )
    return tuple(layers)


def model_weight_bytes(config: OptConfig) -> int:
    """Total model weight footprint in bytes."""
    return sum(layer.total_bytes for layer in model_layers(config))


def decoder_block_bytes(config: OptConfig) -> int:
    """Bytes of one decoder block (MHA + FFN); 3.375 GiB for OPT-175B,
    the paper's "3.38 GB"."""
    return sum(spec.size for spec in mha_weight_specs(config)) + sum(
        spec.size for spec in ffn_weight_specs(config)
    )
