"""Arithmetic and HBM-traffic counts per layer, for the roofline model.

These counts follow the standard decoder-only transformer accounting
(Section II-A): prefill runs GEMMs over the whole prompt, decode runs
GEMV-shaped work over one token per prompt with reads of the growing
KV cache.  The GPU compute model turns them into kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.config import OptConfig
from repro.models.weights import LayerKind


@dataclass(frozen=True)
class LayerWork:
    """What one layer's kernels must do."""

    flops: float
    hbm_bytes: float

    def __add__(self, other: "LayerWork") -> "LayerWork":
        return LayerWork(self.flops + other.flops, self.hbm_bytes + other.hbm_bytes)


_ACT_BYTES = 2  # activations kept in fp16


def mha_work(
    config: OptConfig,
    batch: int,
    new_tokens: int,
    context_len: int,
    weight_hbm_bytes: float,
) -> LayerWork:
    """One MHA layer: QKV/output projections plus attention.

    Args:
        new_tokens: Tokens processed this step (prompt length during
            prefill, 1 during decode).
        context_len: Total attended context including the new tokens.
        weight_hbm_bytes: Bytes of weights the kernels read from HBM
            (fp16 after any dequantization).
    """
    _validate(batch, new_tokens, context_len)
    h = config.hidden_size
    w = config.shard_hidden  # projection width owned by this TP shard
    proj_flops = 8.0 * batch * new_tokens * h * w      # Q,K,V,O projections
    attn_flops = 4.0 * batch * new_tokens * context_len * w
    kv_token_bytes = 2 * w * _ACT_BYTES                # K and V per token
    kv_read = batch * context_len * kv_token_bytes
    kv_write = batch * new_tokens * kv_token_bytes
    act = 3.0 * batch * new_tokens * h * _ACT_BYTES    # full-width residual
    return LayerWork(
        flops=proj_flops + attn_flops,
        hbm_bytes=weight_hbm_bytes + kv_read + kv_write + act,
    )


def ffn_work(
    config: OptConfig,
    batch: int,
    new_tokens: int,
    weight_hbm_bytes: float,
) -> LayerWork:
    """One FFN layer: two linear layers through the 4h intermediate."""
    _validate(batch, new_tokens, 1)
    h = config.hidden_size
    f_w = config.shard_ffn_dim  # intermediate columns on this TP shard
    flops = 4.0 * batch * new_tokens * h * f_w         # 2 matmuls x 2 flops
    act = batch * new_tokens * (2 * h + f_w) * _ACT_BYTES
    return LayerWork(flops=flops, hbm_bytes=weight_hbm_bytes + act)


def embed_work(
    config: OptConfig, batch: int, new_tokens: int
) -> LayerWork:
    """Input embedding lookup (gather plus positional add)."""
    _validate(batch, new_tokens, 1)
    h = config.hidden_size
    rows = batch * new_tokens * h * _ACT_BYTES
    return LayerWork(flops=batch * new_tokens * h, hbm_bytes=3.0 * rows)


def head_work(
    config: OptConfig, batch: int, weight_hbm_bytes: float
) -> LayerWork:
    """Output head: logits for the final position of each prompt."""
    _validate(batch, 1, 1)
    h = config.hidden_size
    v_w = config.shard_vocab  # vocabulary rows owned by this TP shard
    flops = 2.0 * batch * h * v_w
    logits = batch * v_w * 4  # fp32 logits
    return LayerWork(flops=flops, hbm_bytes=weight_hbm_bytes + logits)


def layer_work(
    config: OptConfig,
    kind: LayerKind,
    *,
    batch: int,
    new_tokens: int,
    context_len: int,
    weight_hbm_bytes: float,
) -> LayerWork:
    """Dispatch on layer kind."""
    if kind is LayerKind.MHA:
        return mha_work(config, batch, new_tokens, context_len, weight_hbm_bytes)
    if kind is LayerKind.FFN:
        return ffn_work(config, batch, new_tokens, weight_hbm_bytes)
    if kind is LayerKind.EMBED:
        return embed_work(config, batch, new_tokens)
    if kind is LayerKind.HEAD:
        return head_work(config, batch, weight_hbm_bytes)
    raise ConfigurationError(f"unknown layer kind {kind!r}")


def _validate(batch: int, new_tokens: int, context_len: int) -> None:
    if batch <= 0 or new_tokens <= 0 or context_len <= 0:
        raise ConfigurationError(
            "batch, new_tokens, and context_len must be positive"
        )
