"""OPT model family: configurations, weight inventories, and a real
numpy implementation.

Two views of a model coexist:

* a **spec view** (`config`, `weights`, `kv_cache`, `hidden`, `flops`)
  that knows shapes, byte sizes, and arithmetic counts — everything
  the timing backend and the placement policies need; and
* a **functional view** (`transformer`, `sampling`) that runs real
  numpy math for small configs, used to validate the offloading
  engine end to end.
"""

from repro.models.config import (
    OPT_CONFIGS,
    OptConfig,
    opt_config,
)
from repro.models.weights import (
    LayerKind,
    LayerSpec,
    WeightSpec,
    model_layers,
    model_weight_bytes,
)
from repro.models.kv_cache import kv_bytes_per_token, kv_cache_bytes
from repro.models.hidden import hidden_state_bytes

__all__ = [
    "OptConfig",
    "OPT_CONFIGS",
    "opt_config",
    "LayerKind",
    "LayerSpec",
    "WeightSpec",
    "model_layers",
    "model_weight_bytes",
    "kv_bytes_per_token",
    "kv_cache_bytes",
    "hidden_state_bytes",
]
