"""Hidden-state (activation) footprint accounting."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.config import OptConfig


def hidden_state_bytes(
    config: OptConfig, batch_size: int, tokens: int, dtype_bytes: int = None
) -> int:
    """Bytes of one hidden-state buffer (``batch x tokens x hidden``)."""
    if batch_size <= 0 or tokens <= 0:
        raise ConfigurationError("batch size and token count must be positive")
    width = config.dtype_bytes if dtype_bytes is None else dtype_bytes
    return batch_size * tokens * config.hidden_size * width


def workspace_hidden_bytes(
    config: OptConfig, batch_size: int, tokens: int
) -> int:
    """Peak activation workspace during one layer's computation.

    The FFN intermediate (``batch x tokens x 4h``) dominates; we keep
    two hidden buffers (input/output) plus the intermediate.
    """
    base = hidden_state_bytes(config, batch_size, tokens)
    intermediate = base * config.ffn_multiplier
    return 2 * base + intermediate
