"""A real numpy implementation of the OPT decoder architecture.

This is the functional backend's math: pre-layer-norm decoder blocks
with multi-head attention, ReLU feed-forward networks, learned
positional embeddings with OPT's offset of 2, and a tied-style LM
head stored as its own matrix (matching the weight inventory in
:mod:`repro.models.weights`).

Weights are stored fp16 (as FlexGen serves them) and all arithmetic
runs in fp32.  The per-layer entry points (``mha_forward`` etc.) are
deliberately stateless so the offloading engine can call them one
layer at a time with whatever weight payloads its placement policy
has staged; :func:`reference_generate` chains them densely and serves
as the correctness oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.models.config import OptConfig
from repro.models.weights import LayerKind, LayerSpec, model_layers

#: OPT's learned positional embeddings are offset by 2 (positions 0/1
#: are reserved for padding bookkeeping in the original checkpoint).
POSITION_OFFSET = 2

KvState = Tuple[np.ndarray, np.ndarray]  # (keys, values): (b, t, h) each


def layer_norm(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """LayerNorm over the last axis, fp32."""
    x = x.astype(np.float32)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    return normed * weight.astype(np.float32) + bias.astype(np.float32)


def _linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Torch-style linear: ``x @ W.T + b`` with W of shape (out, in)."""
    return x @ weight.astype(np.float32).T + bias.astype(np.float32)


def _split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    batch, tokens, hidden = x.shape
    head_dim = hidden // num_heads
    return x.reshape(batch, tokens, num_heads, head_dim).transpose(0, 2, 1, 3)


def _merge_heads(x: np.ndarray) -> np.ndarray:
    batch, heads, tokens, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, tokens, heads * head_dim)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def embed_forward(
    config: OptConfig,
    weights: Dict[str, np.ndarray],
    token_ids: np.ndarray,
    past_len: int,
) -> np.ndarray:
    """Token + positional embedding for ``token_ids`` of shape (b, t)."""
    if token_ids.ndim != 2:
        raise ConfigurationError("token_ids must be (batch, tokens)")
    token_emb = weights["token_emb"].astype(np.float32)
    pos_emb = weights["pos_emb"].astype(np.float32)
    tokens = token_ids.shape[1]
    positions = np.arange(past_len, past_len + tokens) + POSITION_OFFSET
    if positions[-1] >= pos_emb.shape[0]:
        raise ConfigurationError(
            f"sequence length {past_len + tokens} exceeds the positional "
            f"table ({pos_emb.shape[0] - POSITION_OFFSET})"
        )
    return token_emb[token_ids] + pos_emb[positions][None, :, :]


def mha_forward(
    config: OptConfig,
    weights: Dict[str, np.ndarray],
    hidden: np.ndarray,
    kv: Optional[KvState],
) -> Tuple[np.ndarray, KvState]:
    """One pre-LN multi-head-attention layer with KV caching.

    Args:
        hidden: (batch, new_tokens, hidden) residual stream.
        kv: Cached (keys, values) from earlier steps, or None.

    Returns:
        The updated residual stream and the extended KV state.
    """
    x = hidden.astype(np.float32)
    normed = layer_norm(x, weights["ln_w"], weights["ln_b"])
    query = _linear(normed, weights["w_q"], weights["b_q"])
    key_new = _linear(normed, weights["w_k"], weights["b_k"])
    value_new = _linear(normed, weights["w_v"], weights["b_v"])

    if kv is not None:
        keys = np.concatenate([kv[0].astype(np.float32), key_new], axis=1)
        values = np.concatenate([kv[1].astype(np.float32), value_new], axis=1)
    else:
        keys, values = key_new, value_new

    past_len = keys.shape[1] - query.shape[1]
    q_heads = _split_heads(query, config.num_heads)
    k_heads = _split_heads(keys, config.num_heads)
    v_heads = _split_heads(values, config.num_heads)

    scale = 1.0 / np.sqrt(config.head_dim)
    scores = (q_heads @ k_heads.transpose(0, 1, 3, 2)) * scale

    new_tokens = query.shape[1]
    total = keys.shape[1]
    # Causal mask: query position (past_len + i) attends keys <= itself.
    q_pos = past_len + np.arange(new_tokens)[:, None]
    k_pos = np.arange(total)[None, :]
    mask = k_pos > q_pos
    scores = np.where(mask[None, None, :, :], -1e9, scores)

    attn = softmax(scores, axis=-1) @ v_heads
    merged = _merge_heads(attn)
    out = _linear(merged, weights["w_out"], weights["b_out"])
    return x + out, (keys, values)


def ffn_forward(
    config: OptConfig, weights: Dict[str, np.ndarray], hidden: np.ndarray
) -> np.ndarray:
    """One pre-LN feed-forward layer (ReLU, as in OPT)."""
    x = hidden.astype(np.float32)
    normed = layer_norm(x, weights["ln_w"], weights["ln_b"])
    inner = np.maximum(_linear(normed, weights["w_fc1"], weights["b_fc1"]), 0.0)
    out = _linear(inner, weights["w_fc2"], weights["b_fc2"])
    return x + out


def head_forward(
    config: OptConfig, weights: Dict[str, np.ndarray], hidden: np.ndarray
) -> np.ndarray:
    """Final layer norm + LM head; logits for every position given."""
    normed = layer_norm(hidden, weights["ln_w"], weights["ln_b"])
    return normed @ weights["lm_head"].astype(np.float32).T


@dataclass
class OptWeights:
    """All weights of one model, keyed by (layer index, weight name)."""

    config: OptConfig
    layers: List[Dict[str, np.ndarray]]

    @classmethod
    def init_random(
        cls, config: OptConfig, seed: int = 0, scale: float = 0.02
    ) -> "OptWeights":
        """Random fp16 weights with transformer-typical initialization."""
        rng = np.random.default_rng(seed)
        layer_payloads: List[Dict[str, np.ndarray]] = []
        for layer in model_layers(config):
            payload: Dict[str, np.ndarray] = {}
            for spec in layer.weights:
                if spec.name in ("ln_w",):
                    array = np.ones(spec.shape, dtype=np.float16)
                elif spec.name.startswith(("b_", "ln_b")):
                    array = np.zeros(spec.shape, dtype=np.float16)
                else:
                    array = rng.normal(0.0, scale, size=spec.shape).astype(
                        np.float16
                    )
                payload[spec.name] = array
            layer_payloads.append(payload)
        return cls(config=config, layers=layer_payloads)

    def layer_payload(self, index: int) -> Dict[str, np.ndarray]:
        return self.layers[index]


def forward_layer(
    config: OptConfig,
    layer: LayerSpec,
    weights: Dict[str, np.ndarray],
    hidden: Optional[np.ndarray],
    kv: Optional[KvState],
    token_ids: Optional[np.ndarray] = None,
    past_len: int = 0,
) -> Tuple[np.ndarray, Optional[KvState]]:
    """Run one layer; the uniform signature the offload engine drives."""
    if layer.kind is LayerKind.EMBED:
        if token_ids is None:
            raise ConfigurationError("embedding layer needs token_ids")
        return embed_forward(config, weights, token_ids, past_len), None
    if layer.kind is LayerKind.MHA:
        return mha_forward(config, weights, hidden, kv)
    if layer.kind is LayerKind.FFN:
        return ffn_forward(config, weights, hidden), None
    if layer.kind is LayerKind.HEAD:
        return head_forward(config, weights, hidden), None
    raise ConfigurationError(f"unknown layer kind {layer.kind!r}")


def reference_generate(
    weights: OptWeights,
    token_ids: np.ndarray,
    gen_len: int,
    kv_transform: Optional[
        "Callable[[KvState, int], KvState]"
    ] = None,
) -> np.ndarray:
    """Dense greedy generation — the correctness oracle.

    Args:
        token_ids: (batch, prompt_len) int array.
        gen_len: Number of tokens to generate.
        kv_transform: Optional hook applied to each layer's KV state
            after every step, receiving ``(kv, new_token_count)`` —
            used to model compressed cache storage (e.g.
            :func:`repro.quant.groupwise.quantize_kv_slice`).

    Returns:
        (batch, prompt_len + gen_len) array including the prompt.
    """
    config = weights.config
    layers = model_layers(config)
    sequences = token_ids.astype(np.int64)
    kv_states: List[Optional[KvState]] = [None] * len(layers)

    new_ids = sequences
    past_len = 0
    for _ in range(gen_len):
        hidden: Optional[np.ndarray] = None
        for layer in layers:
            payload = weights.layer_payload(layer.index)
            hidden, kv = forward_layer(
                config,
                layer,
                payload,
                hidden,
                kv_states[layer.index],
                token_ids=new_ids,
                past_len=past_len,
            )
            if kv is not None:
                if kv_transform is not None:
                    kv = kv_transform(kv, new_ids.shape[1])
                kv_states[layer.index] = kv
        logits = hidden[:, -1, :]
        next_ids = logits.argmax(axis=-1).astype(np.int64)[:, None]
        sequences = np.concatenate([sequences, next_ids], axis=1)
        past_len += new_ids.shape[1]
        new_ids = next_ids
    return sequences
