"""Discrete-event simulation engine.

Models the GPU's execution model the way FlexGen uses it: a small set
of in-order *streams* (compute, host-to-device copy, device-to-host
copy) whose operations have known durations and explicit cross-stream
dependencies.  The engine executes the resulting DAG in virtual time
and records a trace from which the paper's compute/communication
overlap figures are computed.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Operation, SimEngine, Stream
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "SimClock",
    "SimEngine",
    "Stream",
    "Operation",
    "Trace",
    "TraceRecord",
]
