"""Heap-based discrete-event engine with in-order streams.

The execution model mirrors CUDA streams as FlexGen uses them:

* A :class:`Stream` executes its operations strictly in submission
  order (like a CUDA stream).
* An :class:`Operation` may additionally depend on operations in
  other streams (like ``cudaStreamWaitEvent``).
* Durations are supplied at enqueue time (from the platform's
  bandwidth/roofline models); the engine resolves start times.

Typical use::

    engine = SimEngine()
    h2d = engine.stream("h2d")
    compute = engine.stream("compute")
    load0 = h2d.enqueue(0.010, label="load L0")
    comp0 = compute.enqueue(0.002, label="compute L0", deps=[load0])
    engine.run()
    assert comp0.end_time == 0.012
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.trace import Trace, TraceRecord


@dataclass(eq=False)
class Operation:
    """One unit of work on a stream.

    Operations compare by identity (two distinct ops are never equal,
    even with identical parameters)."""

    op_id: int
    stream: "Stream"
    duration: float
    label: str
    category: str
    deps: Tuple["Operation", ...]
    meta: Dict[str, object] = field(default_factory=dict)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Operations whose start is gated on this one completing.
    _dependents: List["Operation"] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.end_time is not None

    @property
    def started(self) -> bool:
        return self.start_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Operation {self.op_id} {self.label!r} on "
            f"{self.stream.name!r} dur={self.duration:.6f}>"
        )


class Stream:
    """An in-order execution queue (a simulated CUDA stream)."""

    def __init__(self, engine: "SimEngine", name: str) -> None:
        self.engine = engine
        self.name = name
        self._queue: List[Operation] = []
        self._next_index = 0       # first not-yet-completed op
        self._running: Optional[Operation] = None

    def enqueue(
        self,
        duration: float,
        *,
        label: str = "",
        category: str = "op",
        deps: Iterable[Operation] = (),
        meta: Optional[Dict[str, object]] = None,
    ) -> Operation:
        """Append an operation to this stream.

        Args:
            duration: Execution time in seconds (must be >= 0; zero-
                duration ops are useful as synchronization markers).
            label: Trace label.
            category: Trace category (e.g. ``"transfer"``/``"compute"``).
            deps: Operations (any stream) that must finish first.
            meta: Arbitrary metadata copied into the trace record.
        """
        if duration < 0:
            raise SimulationError(
                f"operation {label!r}: duration must be >= 0"
            )
        deps = tuple(deps)
        for dep in deps:
            if dep.engine_ref is not self.engine:
                raise SimulationError(
                    f"operation {label!r} depends on an operation from a "
                    "different engine"
                )
        op = Operation(
            op_id=self.engine._next_op_id(),
            stream=self,
            duration=float(duration),
            label=label,
            category=category,
            deps=deps,
            meta=dict(meta or {}),
        )
        op.engine_ref = self.engine  # type: ignore[attr-defined]
        for dep in deps:
            if not dep.done:
                dep._dependents.append(op)
        self._queue.append(op)
        self.engine._notify_enqueued(self)
        return op

    def barrier(self, deps: Iterable[Operation], label: str = "sync") -> Operation:
        """A zero-duration op that orders this stream after ``deps``."""
        return self.enqueue(0.0, label=label, category="sync", deps=deps)

    # -- engine internals --------------------------------------------------

    def _head(self) -> Optional[Operation]:
        if self._next_index < len(self._queue):
            return self._queue[self._next_index]
        return None

    def _head_ready(self) -> bool:
        head = self._head()
        if head is None or self._running is not None or head.started:
            return False
        return all(dep.done for dep in head.deps)

    @property
    def busy_until(self) -> float:
        """Completion time of the last finished or running op."""
        if self._running is not None:
            assert self._running.start_time is not None
            return self._running.start_time + self._running.duration
        if self._next_index > 0:
            last = self._queue[self._next_index - 1]
            assert last.end_time is not None
            return last.end_time
        return 0.0

    @property
    def idle(self) -> bool:
        return self._running is None and self._next_index >= len(self._queue)

    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._queue)


class SimEngine:
    """Coordinates streams over one virtual clock and records a trace."""

    def __init__(self) -> None:
        self.clock = SimClock()
        self.trace = Trace()
        self._streams: Dict[str, Stream] = {}
        self._event_heap: List[Tuple[float, int, Operation]] = []
        self._op_counter = itertools.count()
        self._event_counter = itertools.count()

    # -- construction ------------------------------------------------------

    def stream(self, name: str) -> Stream:
        """Get or create the named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(self, name)
        return self._streams[name]

    @property
    def streams(self) -> Tuple[Stream, ...]:
        return tuple(self._streams.values())

    def _next_op_id(self) -> int:
        return next(self._op_counter)

    # -- execution ---------------------------------------------------------

    def _notify_enqueued(self, stream: Stream) -> None:
        if stream._head_ready():
            self._start(stream._head())

    def _start(self, op: Operation) -> None:
        assert op is not None and not op.started
        op.start_time = self.clock.now
        op.stream._running = op
        heapq.heappush(
            self._event_heap,
            (op.start_time + op.duration, next(self._event_counter), op),
        )

    def _complete(self, op: Operation) -> None:
        op.end_time = self.clock.now
        stream = op.stream
        assert stream._running is op
        stream._running = None
        stream._next_index += 1
        self.trace.record(
            TraceRecord(
                label=op.label,
                stream=stream.name,
                category=op.category,
                start=op.start_time or 0.0,
                end=op.end_time,
                meta=dict(op.meta),
            )
        )
        # Ops waiting on this one may now be startable, as may this
        # stream's next op.
        candidates = [stream] + [dep.stream for dep in op._dependents]
        for candidate in candidates:
            if candidate._head_ready():
                self._start(candidate._head())

    def run(self) -> float:
        """Process events until every stream drains; returns final time."""
        # Kick any streams whose heads became ready before run().
        for stream in self._streams.values():
            if stream._head_ready():
                self._start(stream._head())
        while self._event_heap:
            timestamp, _, op = heapq.heappop(self._event_heap)
            self.clock.advance_to(timestamp)
            self._complete(op)
        for stream in self._streams.values():
            if not stream.idle:
                head = stream._head()
                raise SimulationError(
                    f"deadlock: stream {stream.name!r} cannot start "
                    f"{head.label!r} (unsatisfied dependency)"
                )
        return self.clock.now

    @property
    def now(self) -> float:
        return self.clock.now
