"""Export simulation traces to Chrome's trace-event format.

Load the resulting JSON at ``chrome://tracing`` (or Perfetto) to see
the zig-zag pipeline — compute on one track, H2D/D2H copies on others
— exactly as one would inspect a real FlexGen run with Nsight.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import SimulationError
from repro.sim.trace import Trace

#: Trace-event categories are colored by name in the viewer.
_CATEGORY_COLOURS = {
    "transfer": "rail_load",
    "compute": "rail_animation",
    "sync": "rail_idle",
}


def trace_to_chrome_events(trace: Trace) -> List[Dict[str, object]]:
    """Convert a :class:`~repro.sim.trace.Trace` to trace-event dicts."""
    events: List[Dict[str, object]] = []
    stream_ids: Dict[str, int] = {}
    for record in trace.records:
        if record.stream not in stream_ids:
            tid = len(stream_ids)
            stream_ids[record.stream] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": record.stream},
                }
            )
        if record.end < record.start:
            raise SimulationError(
                f"record {record.label!r} ends before it starts"
            )
        events.append(
            {
                "name": record.label or record.category,
                "cat": record.category,
                "ph": "X",
                "pid": 0,
                "tid": stream_ids[record.stream],
                "ts": record.start * 1e6,       # microseconds
                "dur": record.duration * 1e6,
                "cname": _CATEGORY_COLOURS.get(record.category),
                "args": {
                    str(key): str(value) for key, value in record.meta.items()
                },
            }
        )
    return events


def save_chrome_trace(trace: Trace, path: str) -> None:
    """Write ``trace`` as a Chrome trace JSON file."""
    payload = {
        "traceEvents": trace_to_chrome_events(trace),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
