"""Execution traces and overlap analysis helpers.

Every completed simulated operation leaves a :class:`TraceRecord`.
The paper's Figures 5, 6, 8, 11a, 12d/e and Table IV are all computed
from these records (average transfer time vs. average compute time,
per category/stage/layer-kind).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One completed operation in virtual time."""

    label: str
    stream: str
    category: str
    start: float
    end: float
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only list of trace records with query helpers."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def record(self, record: TraceRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def filter(
        self,
        *,
        category: Optional[str] = None,
        stream: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        **meta_filters: object,
    ) -> Tuple[TraceRecord, ...]:
        """Records matching all given criteria.

        ``meta_filters`` match against ``record.meta`` keys, e.g.
        ``trace.filter(category="compute", stage="decode")``.
        """
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if stream is not None and record.stream != stream:
                continue
            if predicate is not None and not predicate(record):
                continue
            if any(
                record.meta.get(key) != value
                for key, value in meta_filters.items()
            ):
                continue
            out.append(record)
        return tuple(out)

    def total_time(
        self, *, category: Optional[str] = None, **meta_filters: object
    ) -> float:
        return sum(
            record.duration
            for record in self.filter(category=category, **meta_filters)
        )

    def mean_duration(
        self, *, category: Optional[str] = None, **meta_filters: object
    ) -> float:
        records = self.filter(category=category, **meta_filters)
        if not records:
            return 0.0
        return sum(record.duration for record in records) / len(records)

    def makespan(self) -> float:
        """End time of the last record (0 for an empty trace)."""
        if not self._records:
            return 0.0
        return max(record.end for record in self._records)

    def stream_busy_time(self, stream: str) -> float:
        return sum(
            record.duration for record in self._records
            if record.stream == stream
        )

    def overlap_fraction(self, stream_a: str, stream_b: str) -> float:
        """Fraction of stream A's busy time that overlaps stream B.

        Computed over wall-clock intervals; used to sanity-check that
        the zig-zag schedule actually overlaps compute with transfer.
        """
        a_intervals = _merge_intervals(
            (r.start, r.end) for r in self._records if r.stream == stream_a
        )
        b_intervals = _merge_intervals(
            (r.start, r.end) for r in self._records if r.stream == stream_b
        )
        a_total = sum(end - start for start, end in a_intervals)
        if a_total <= 0:
            return 0.0
        overlap = _intersection_length(a_intervals, b_intervals)
        return overlap / a_total


def _merge_intervals(
    intervals: Iterable[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    items = sorted(
        (start, end) for start, end in intervals if end > start
    )
    merged: List[Tuple[float, float]] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersection_length(
    a_intervals: List[Tuple[float, float]],
    b_intervals: List[Tuple[float, float]],
) -> float:
    total = 0.0
    i = j = 0
    while i < len(a_intervals) and j < len(b_intervals):
        a_start, a_end = a_intervals[i]
        b_start, b_end = b_intervals[j]
        lo = max(a_start, b_start)
        hi = min(a_end, b_end)
        if hi > lo:
            total += hi - lo
        if a_end <= b_end:
            i += 1
        else:
            j += 1
    return total
