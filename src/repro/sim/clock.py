"""Virtual clock for the discrete-event engine."""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonically advancing virtual time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            SimulationError: If ``timestamp`` is in the past; the
                engine must never process events out of order.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def reset(self) -> None:
        self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock now={self._now:.9f}>"
