"""Minimal, dependency-free SVG chart primitives.

Three chart kinds cover every figure in the paper: line charts
(Figs. 3, 7a), grouped bars (Figs. 4, 5, 8, 11, 12, 13), and stacked
bars (Figs. 7b/7c, 10).  The output is a complete standalone SVG
document string.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.errors import ConfigurationError

#: Colour-blind-safe qualitative palette (Okabe-Ito).
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
)

_MARGIN = {"left": 64, "right": 16, "top": 34, "bottom": 46}


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    name: str
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} has no points")


class _SvgDoc:
    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._parts: List[str] = []

    def add(self, element: str) -> None:
        self._parts.append(element)

    def text(
        self, x: float, y: float, content: str, *, size: int = 12,
        anchor: str = "middle", rotate: float = None, bold: bool = False,
    ) -> None:
        transform = (
            f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
            if rotate is not None else ""
        )
        weight = ' font-weight="bold"' if bold else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" font-family="sans-serif"{weight}'
            f'{transform}>{escape(content)}</text>'
        )

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        *, colour: str = "#444", width: float = 1.0, dash: str = None,
    ) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.add(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{colour}" stroke-width="{width}"'
            f'{dash_attr} />'
        )

    def rect(
        self, x: float, y: float, w: float, h: float, colour: str
    ) -> None:
        self.add(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{colour}" />'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], colour: str) -> None:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.add(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2" />'
        )

    def circle(self, x: float, y: float, colour: str, r: float = 3.0) -> None:
        self.add(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{colour}" />'
        )

    def render(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" '
            f'fill="white" />\n{body}\n</svg>\n'
        )


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, count - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    start = math.floor(low / step) * step
    ticks = []
    value = start
    while value <= high + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:g}"


def _legend(doc: _SvgDoc, names: Sequence[str], x: float, y: float) -> None:
    for index, name in enumerate(names):
        colour = PALETTE[index % len(PALETTE)]
        row_y = y + index * 16
        doc.rect(x, row_y - 9, 10, 10, colour)
        doc.text(x + 14, row_y, name, size=11, anchor="start")


def line_chart(
    series: Sequence[Series],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 640,
    height: int = 400,
    log_x: bool = False,
) -> str:
    """A multi-series line chart with markers."""
    if not series:
        raise ConfigurationError("a chart needs at least one series")
    doc = _SvgDoc(width, height)
    plot_x0 = _MARGIN["left"]
    plot_y0 = _MARGIN["top"]
    plot_w = width - _MARGIN["left"] - _MARGIN["right"] - 150  # legend room
    plot_h = height - _MARGIN["top"] - _MARGIN["bottom"]

    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    if log_x and min(xs) <= 0:
        raise ConfigurationError("log x-axis requires positive x values")

    def tx(x: float) -> float:
        if log_x:
            lo, hi = math.log10(min(xs)), math.log10(max(xs))
            frac = 0.5 if hi == lo else (math.log10(x) - lo) / (hi - lo)
        else:
            lo, hi = min(xs), max(xs)
            frac = 0.5 if hi == lo else (x - lo) / (hi - lo)
        return plot_x0 + frac * plot_w

    y_ticks = _nice_ticks(0.0, max(ys))
    y_hi = y_ticks[-1]

    def ty(y: float) -> float:
        return plot_y0 + plot_h * (1 - y / y_hi) if y_hi else plot_y0 + plot_h

    # Axes and grid.
    doc.line(plot_x0, plot_y0 + plot_h, plot_x0 + plot_w, plot_y0 + plot_h)
    doc.line(plot_x0, plot_y0, plot_x0, plot_y0 + plot_h)
    for tick in y_ticks:
        y_pixel = ty(tick)
        doc.line(plot_x0, y_pixel, plot_x0 + plot_w, y_pixel,
                 colour="#ddd", width=0.5)
        doc.text(plot_x0 - 6, y_pixel + 4, _fmt(tick), size=10, anchor="end")
    x_tick_values = sorted(set(xs)) if len(set(xs)) <= 10 else _nice_ticks(
        min(xs), max(xs)
    )
    for tick in x_tick_values:
        x_pixel = tx(tick)
        doc.line(x_pixel, plot_y0 + plot_h, x_pixel, plot_y0 + plot_h + 4)
        doc.text(x_pixel, plot_y0 + plot_h + 16, _fmt(tick), size=10)

    for index, one in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        pixels = [(tx(x), ty(y)) for x, y in sorted(one.points)]
        doc.polyline(pixels, colour)
        for x_pixel, y_pixel in pixels:
            doc.circle(x_pixel, y_pixel, colour)

    doc.text(width / 2, 18, title, size=14, bold=True)
    doc.text(plot_x0 + plot_w / 2, height - 10, x_label, size=12)
    doc.text(16, plot_y0 + plot_h / 2, y_label, size=12, rotate=-90)
    _legend(doc, [s.name for s in series], plot_x0 + plot_w + 14, plot_y0 + 10)
    return doc.render()


def grouped_bar_chart(
    categories: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    *,
    title: str,
    y_label: str,
    width: int = 640,
    height: int = 400,
    overlay: Sequence[float] = None,
    overlay_name: str = None,
) -> str:
    """Grouped bars, optionally with an overlaid line (the paper's
    transfer-bars + compute-line figures)."""
    if not categories or not series:
        raise ConfigurationError("bar chart needs categories and series")
    for name, values in series:
        if len(values) != len(categories):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    if overlay is not None and len(overlay) != len(categories):
        raise ConfigurationError("overlay length must match categories")

    doc = _SvgDoc(width, height)
    plot_x0 = _MARGIN["left"]
    plot_y0 = _MARGIN["top"]
    plot_w = width - _MARGIN["left"] - _MARGIN["right"] - 150
    plot_h = height - _MARGIN["top"] - _MARGIN["bottom"]

    all_values = [v for _, values in series for v in values]
    if overlay is not None:
        all_values.extend(overlay)
    y_ticks = _nice_ticks(0.0, max(all_values))
    y_hi = y_ticks[-1]

    def ty(y: float) -> float:
        return plot_y0 + plot_h * (1 - y / y_hi) if y_hi else plot_y0 + plot_h

    doc.line(plot_x0, plot_y0 + plot_h, plot_x0 + plot_w, plot_y0 + plot_h)
    doc.line(plot_x0, plot_y0, plot_x0, plot_y0 + plot_h)
    for tick in y_ticks:
        y_pixel = ty(tick)
        doc.line(plot_x0, y_pixel, plot_x0 + plot_w, y_pixel,
                 colour="#ddd", width=0.5)
        doc.text(plot_x0 - 6, y_pixel + 4, _fmt(tick), size=10, anchor="end")

    group_w = plot_w / len(categories)
    bar_w = group_w * 0.8 / len(series)
    centers = []
    for cat_index, category in enumerate(categories):
        group_x = plot_x0 + cat_index * group_w + group_w * 0.1
        centers.append(plot_x0 + cat_index * group_w + group_w / 2)
        for series_index, (name, values) in enumerate(series):
            value = values[cat_index]
            x = group_x + series_index * bar_w
            y = ty(value)
            doc.rect(
                x, y, bar_w - 1, plot_y0 + plot_h - y,
                PALETTE[series_index % len(PALETTE)],
            )
        doc.text(
            centers[-1], plot_y0 + plot_h + 16, category, size=10
        )

    names = [name for name, _ in series]
    if overlay is not None:
        colour = PALETTE[len(series) % len(PALETTE)]
        doc.polyline(
            [(cx, ty(v)) for cx, v in zip(centers, overlay)], colour
        )
        for cx, v in zip(centers, overlay):
            doc.circle(cx, ty(v), colour)
        names.append(overlay_name or "overlay")

    doc.text(width / 2, 18, title, size=14, bold=True)
    doc.text(16, plot_y0 + plot_h / 2, y_label, size=12, rotate=-90)
    _legend(doc, names, plot_x0 + plot_w + 14, plot_y0 + 10)
    return doc.render()


def stacked_bar_chart(
    categories: Sequence[str],
    layers: Sequence[Tuple[str, Sequence[float]]],
    *,
    title: str,
    y_label: str,
    width: int = 520,
    height: int = 360,
) -> str:
    """Stacked shares per category (the weight-distribution figures)."""
    if not categories or not layers:
        raise ConfigurationError("stacked chart needs categories and layers")
    for name, values in layers:
        if len(values) != len(categories):
            raise ConfigurationError(
                f"layer {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    doc = _SvgDoc(width, height)
    plot_x0 = _MARGIN["left"]
    plot_y0 = _MARGIN["top"]
    plot_w = width - _MARGIN["left"] - _MARGIN["right"] - 120
    plot_h = height - _MARGIN["top"] - _MARGIN["bottom"]

    totals = [
        sum(values[i] for _, values in layers)
        for i in range(len(categories))
    ]
    y_hi = max(totals) or 1.0

    doc.line(plot_x0, plot_y0 + plot_h, plot_x0 + plot_w, plot_y0 + plot_h)
    doc.line(plot_x0, plot_y0, plot_x0, plot_y0 + plot_h)
    for tick in _nice_ticks(0.0, y_hi):
        if tick > y_hi * 1.001:
            break
        y_pixel = plot_y0 + plot_h * (1 - tick / y_hi)
        doc.text(plot_x0 - 6, y_pixel + 4, _fmt(tick), size=10, anchor="end")
        doc.line(plot_x0, y_pixel, plot_x0 + plot_w, y_pixel,
                 colour="#ddd", width=0.5)

    group_w = plot_w / len(categories)
    bar_w = group_w * 0.6
    for cat_index, category in enumerate(categories):
        x = plot_x0 + cat_index * group_w + (group_w - bar_w) / 2
        running = 0.0
        for layer_index, (name, values) in enumerate(layers):
            value = values[cat_index]
            y_top = plot_y0 + plot_h * (1 - (running + value) / y_hi)
            bar_h = plot_h * value / y_hi
            doc.rect(x, y_top, bar_w, bar_h,
                     PALETTE[layer_index % len(PALETTE)])
            running += value
        doc.text(
            x + bar_w / 2, plot_y0 + plot_h + 16, category, size=10
        )

    doc.text(width / 2, 18, title, size=14, bold=True)
    doc.text(16, plot_y0 + plot_h / 2, y_label, size=12, rotate=-90)
    _legend(
        doc, [name for name, _ in layers], plot_x0 + plot_w + 14,
        plot_y0 + 10,
    )
    return doc.render()
