"""Figure rendering: pure-stdlib SVG charts for the paper's plots.

The original artifact ships an ``output/`` directory with raw data
and plotting scripts; this package is the equivalent.  Charts are
written as standalone SVG (no matplotlib — nothing beyond the
standard library), and :mod:`repro.viz.figures` maps each experiment
to the figure the paper plots from it:

    python -m repro.experiments figures out/
"""

from repro.viz.charts import Series, grouped_bar_chart, line_chart, stacked_bar_chart
from repro.viz.figures import FIGURES, render_figure, render_all_figures

__all__ = [
    "Series",
    "line_chart",
    "grouped_bar_chart",
    "stacked_bar_chart",
    "FIGURES",
    "render_figure",
    "render_all_figures",
]
