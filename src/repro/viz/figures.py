"""Map experiments to rendered SVG figures.

Each builder consumes the structured ``data`` of one experiment (see
:mod:`repro.experiments`) and returns ``(filename, svg)`` pairs.
Together they regenerate every plot in the paper's evaluation:

    python -m repro.experiments figures out/
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Tuple

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import run_experiment
from repro.viz.charts import (
    Series,
    grouped_bar_chart,
    line_chart,
    stacked_bar_chart,
)

Rendered = List[Tuple[str, str]]


def _fig3(result: ExperimentResult) -> Rendered:
    samples = result.data["samples"]
    out: Rendered = []
    for direction, title in (
        ("h2g", "Fig 3a: Host to GPU bandwidth"),
        ("g2h", "Fig 3b: GPU to host bandwidth"),
    ):
        regions = sorted({s["region"] for s in samples})
        series = []
        for region in regions:
            points = tuple(
                (s["buffer_bytes"] / 2**20, s["gb_per_s"])
                for s in samples
                if s["region"] == region and s["direction"] == direction
            )
            series.append(Series(name=region, points=points))
        out.append(
            (
                f"fig3_{direction}.svg",
                line_chart(
                    series,
                    title=title,
                    x_label="buffer size (MiB, log)",
                    y_label="GB/s",
                    log_x=True,
                ),
            )
        )
    return out


def _fig4(result: ExperimentResult) -> Rendered:
    data = result.data
    matrix = {
        "opt-30b": (("DRAM", "NVDRAM", "MemoryMode"), (1, 32)),
        "opt-175b": (("SSD", "FSDAX", "NVDRAM", "MemoryMode"), (1, 8)),
    }
    out: Rendered = []
    for metric, label in (
        ("ttft_s", "TTFT (s)"),
        ("tbt_s", "TBT (s)"),
        ("throughput_tps", "throughput (tokens/s)"),
    ):
        for model, (hosts, batches) in matrix.items():
            series = [
                (
                    f"batch {batch}",
                    [data[f"{model}/{host}/b{batch}"][metric] for host in hosts],
                )
                for batch in batches
            ]
            out.append(
                (
                    f"fig4_{model.replace('-', '')}_{metric}.svg",
                    grouped_bar_chart(
                        list(hosts),
                        series,
                        title=f"Fig 4: {model} {label}",
                        y_label=label,
                    ),
                )
            )
    return out


def _fig5(result: ExperimentResult) -> Rendered:
    data = result.data
    matrix = {
        "opt-30b": (("DRAM", "NVDRAM", "MemoryMode"), (1, 32)),
        "opt-175b": (("SSD", "FSDAX", "NVDRAM", "MemoryMode"), (1, 8)),
    }
    out: Rendered = []
    for model, (hosts, batches) in matrix.items():
        for stage in ("prefill", "decode"):
            categories = []
            transfer = []
            compute = []
            for host in hosts:
                for batch in batches:
                    key = f"{model}/{host}/b{batch}/{stage}"
                    categories.append(f"{host} b{batch}")
                    transfer.append(data[key]["avg_transfer_ms"])
                    compute.append(data[key]["avg_compute_ms"])
            out.append(
                (
                    f"fig5_{model.replace('-', '')}_{stage}.svg",
                    grouped_bar_chart(
                        categories,
                        [("weight transfer", transfer)],
                        overlay=compute,
                        overlay_name="compute",
                        title=f"Fig 5: {model} {stage} overlap",
                        y_label="avg time per layer (ms)",
                    ),
                )
            )
    return out


def _fig6(result: ExperimentResult) -> Rendered:
    data = result.data
    categories = []
    transfer = []
    compute = []
    for host in ("NVDRAM", "MemoryMode", "DRAM"):
        for compressed, suffix in (("fp16", ""), ("c", "(c)")):
            key = f"{host}/{compressed}/decode"
            categories.append(f"{host}{suffix}")
            transfer.append(data[key]["avg_transfer_ms"])
            compute.append(data[key]["avg_compute_ms"])
    return [
        (
            "fig6_compression.svg",
            grouped_bar_chart(
                categories,
                [("weight transfer", transfer)],
                overlay=compute,
                overlay_name="compute",
                title="Fig 6: OPT-175B decode overlap with compression",
                y_label="avg time per layer (ms)",
            ),
        )
    ]


def _fig7(result: ExperimentResult) -> Rendered:
    data = result.data
    out: Rendered = []
    series = []
    for host, loads in data["sawtooth_ms"].items():
        points = tuple(
            (float(index + 1), load) for index, load in enumerate(loads)
        )
        series.append(Series(name=host, points=points))
    out.append(
        (
            "fig7a_sawtooth.svg",
            line_chart(
                series,
                title="Fig 7a: per-layer weight load latency (layers 1-70)",
                x_label="layer",
                y_label="load latency (ms)",
            ),
        )
    )
    for key, title in (
        ("achieved_ssd_fsdax", "Fig 7b: SSD/FSDAX policy (65, 15, 20)"),
        ("achieved_nvdram_mm", "Fig 7c: NVDRAM/MM policy (0, 80, 20)"),
    ):
        entry = data[key]
        mha_gpu = entry["mha_gpu_share"]
        ffn_gpu = entry["ffn_gpu_share"]
        # The experiment records kind-level GPU shares; the rest of
        # each kind splits between cpu/disk with the overall ratio.
        disk_share = entry["disk"] / max(1e-9, entry["disk"] + entry["cpu"])
        layers = [
            ("gpu", [mha_gpu, ffn_gpu]),
            (
                "cpu",
                [
                    (1 - mha_gpu) * (1 - disk_share),
                    (1 - ffn_gpu) * (1 - disk_share),
                ],
            ),
            (
                "disk",
                [(1 - mha_gpu) * disk_share, (1 - ffn_gpu) * disk_share],
            ),
        ]
        out.append(
            (
                f"{key}.svg",
                stacked_bar_chart(
                    ["MHA", "FFN"],
                    layers,
                    title=title,
                    y_label="share of weights",
                ),
            )
        )
    return out


def _fig10(result: ExperimentResult) -> Rendered:
    data = result.data
    layers = [
        ("gpu", [data["mha_gpu_share"], data["ffn_gpu_share"]]),
        ("cpu", [1 - data["mha_gpu_share"], 1 - data["ffn_gpu_share"]]),
    ]
    return [
        (
            "fig10_helm_distribution.svg",
            stacked_bar_chart(
                ["MHA", "FFN"],
                layers,
                title="Fig 10: HeLM weight distribution",
                y_label="share of weights",
            ),
        )
    ]


def _fig11(result: ExperimentResult) -> Rendered:
    data = result.data
    hosts = ("NVDRAM", "MemoryMode", "DRAM")
    out: Rendered = []
    for metric, label in (("ttft_s", "TTFT (s)"), ("tbt_s", "TBT (s)")):
        series = [
            (
                placement,
                [data[f"{host}/{placement}"][metric] for host in hosts],
            )
            for placement in ("baseline", "helm")
        ]
        out.append(
            (
                f"fig11b_{metric}.svg",
                grouped_bar_chart(
                    list(hosts),
                    series,
                    title=f"Fig 11b: {label}, OPT-175B batch 1 compressed",
                    y_label=label,
                ),
            )
        )
    return out


def _fig12(result: ExperimentResult) -> Rendered:
    data = result.data
    bmax = data["max_batch"]
    hosts = ("NVDRAM", "MemoryMode", "DRAM")
    configs = [("baseline", 8), ("allcpu", 8), ("allcpu", bmax)]
    series = [
        (
            f"{placement} b{batch}",
            [
                data[f"{host}/{placement}/b{batch}"]["throughput_tps"]
                for host in hosts
            ],
        )
        for placement, batch in configs
    ]
    return [
        (
            "fig12c_throughput.svg",
            grouped_bar_chart(
                list(hosts),
                series,
                title="Fig 12c: All-CPU throughput, OPT-175B compressed",
                y_label="tokens/s",
            ),
        )
    ]


def _fig13(result: ExperimentResult) -> Rendered:
    data = result.data
    bmax = data["max_batch"]
    configs = ("NVDRAM", "CXL-FPGA", "CXL-ASIC")
    latency_series = [
        (
            placement,
            [
                data[f"latency/{config}/{placement}"]["tbt_s"]
                for config in configs
            ],
        )
        for placement in ("baseline", "helm")
    ]
    tput_series = [
        (
            f"{placement} b{batch}",
            [
                data[f"tput/{config}/{placement}/b{batch}"]
                for config in configs
            ],
        )
        for placement, batch in (
            ("baseline", 8), ("allcpu", 8), ("allcpu", bmax),
        )
    ]
    return [
        (
            "fig13a_helm.svg",
            grouped_bar_chart(
                list(configs),
                latency_series,
                title="Fig 13a: projected HeLM TBT",
                y_label="TBT (s)",
            ),
        ),
        (
            "fig13b_allcpu.svg",
            grouped_bar_chart(
                list(configs),
                tput_series,
                title="Fig 13b: projected All-CPU throughput",
                y_label="tokens/s",
            ),
        ),
    ]


#: figure name -> (experiment name, builder).
FIGURES: Dict[str, Tuple[str, Callable[[ExperimentResult], Rendered]]] = {
    "fig3": ("fig3_bandwidth", _fig3),
    "fig4": ("fig4_llm_perf", _fig4),
    "fig5": ("fig5_overlap", _fig5),
    "fig6": ("fig6_compression", _fig6),
    "fig7": ("fig7_placement", _fig7),
    "fig10": ("fig10_helm_dist", _fig10),
    "fig11": ("fig11_helm", _fig11),
    "fig12": ("fig12_allcpu", _fig12),
    "fig13": ("fig13_cxl", _fig13),
}


def render_figure(name: str, out_dir: str) -> List[str]:
    """Render one figure family into ``out_dir``; returns file paths."""
    try:
        experiment_name, builder = FIGURES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        ) from None
    result = run_experiment(experiment_name)
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for filename, svg in builder(result):
        path = os.path.join(out_dir, filename)
        with open(path, "w") as handle:
            handle.write(svg)
        paths.append(path)
    return paths


def render_all_figures(out_dir: str) -> List[str]:
    """Render every figure family (the artifact's output/scripts)."""
    paths = []
    for name in sorted(FIGURES):
        paths.extend(render_figure(name, out_dir))
    return paths
