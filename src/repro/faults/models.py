"""Fault models and reproducible fault schedules.

A *fault model* describes one failure process attached to a device or
interconnect link by name.  All processes are functions of virtual
time only (plus a seed for the stochastic ones), so a schedule replays
identically across runs — chaos here is deterministic by construction.

The taxonomy mirrors what heterogeneous host tiers actually do in
production:

* :class:`TransientFaults` — i.i.d. per-transfer failure probability
  (bit flips, ECC retries, flaky cables); each failed attempt is
  retried under a :class:`~repro.faults.retry.RetryPolicy`.
* :class:`DegradationWindow` — bandwidth multiplied down for a window,
  optionally periodic (SSD garbage-collection pauses, thermal
  throttling).
* :class:`WearDerate` — permanent fractional bandwidth loss from a
  point in time onward (Optane media wear).
* :class:`LinkOutage` — the link is down for an interval, optionally
  periodic (CXL link flaps); transfers fail deterministically while
  down.

A :class:`FaultSchedule` bundles models with a seed and round-trips
through JSON so chaos scenarios can be scripted and shared::

    {"seed": 7, "faults": [
        {"kind": "degradation", "target": "host", "slowdown": 10.0,
         "start_s": 30.0, "duration_s": 5.0, "period_s": 60.0}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple, Type

from repro.errors import ConfigurationError

#: Conventional target names the engine consults (a schedule may also
#: name concrete regions, e.g. ``NVDRAM``; ``*`` matches everything).
HOST_TARGET = "host"
DISK_TARGET = "disk"
PCIE_TARGET = "pcie"
WILDCARD = "*"


def _in_window(
    now: float,
    start_s: float,
    duration_s: Optional[float],
    period_s: Optional[float],
) -> bool:
    """Whether ``now`` falls inside the (possibly periodic) window."""
    if now < start_s:
        return False
    if duration_s is None:
        return True
    offset = now - start_s
    if period_s is not None and period_s > 0:
        offset = offset % period_s
    return offset < duration_s


@dataclass(frozen=True)
class FaultModel:
    """Base class: one failure process bound to one target name."""

    target: str

    def matches(self, target: str) -> bool:
        return self.target == WILDCARD or self.target == target

    # -- the questions the injector asks -------------------------------

    def slowdown_at(self, now: float) -> float:
        """Multiplicative bandwidth penalty (1.0 = nominal)."""
        return 1.0

    def failure_probability_at(self, now: float) -> float:
        """Per-attempt transfer failure probability."""
        return 0.0

    def down_at(self, now: float) -> bool:
        """Whether the target is entirely unusable."""
        return False

    def lost_at(self, now: float) -> bool:
        """Whether the target is *structurally* lost: its resident
        state (weights, KV) is gone, not merely unreachable."""
        return False

    def capacity_fraction_at(self, now: float) -> float:
        """Fraction of the target's nominal capacity still usable."""
        return 1.0

    def structural(self) -> bool:
        """True for models that can change topology or capacity."""
        return False

    def is_zero(self) -> bool:
        """True when the model can never perturb a run."""
        return True

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind()}
        payload.update(
            {
                key: value
                for key, value in asdict(self).items()
                if value is not None
            }
        )
        return payload

    @classmethod
    def kind(cls) -> str:
        return _KINDS_BY_CLASS[cls]


@dataclass(frozen=True)
class TransientFaults(FaultModel):
    """Each transfer attempt fails independently with ``probability``."""

    probability: float = 0.0
    start_s: float = 0.0
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"transient fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.end_s is not None and self.end_s < self.start_s:
            raise ConfigurationError("end_s must be >= start_s")

    def failure_probability_at(self, now: float) -> float:
        if now < self.start_s:
            return 0.0
        if self.end_s is not None and now >= self.end_s:
            return 0.0
        return self.probability

    def is_zero(self) -> bool:
        return self.probability <= 0.0


@dataclass(frozen=True)
class DegradationWindow(FaultModel):
    """Bandwidth divided by ``slowdown`` inside the window.

    ``period_s`` repeats the window (an SSD GC pause every N seconds);
    ``duration_s=None`` degrades from ``start_s`` onward.
    """

    slowdown: float = 1.0
    start_s: float = 0.0
    duration_s: Optional[float] = None
    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown must be >= 1 (a penalty), got {self.slowdown}"
            )
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        if (
            self.period_s is not None
            and self.duration_s is not None
            and self.period_s < self.duration_s
        ):
            raise ConfigurationError(
                "period_s must be >= duration_s (windows cannot overlap)"
            )

    def slowdown_at(self, now: float) -> float:
        if _in_window(now, self.start_s, self.duration_s, self.period_s):
            return self.slowdown
        return 1.0

    def is_zero(self) -> bool:
        return self.slowdown <= 1.0 or (
            self.duration_s is not None and self.duration_s == 0.0
        )


@dataclass(frozen=True)
class WearDerate(FaultModel):
    """Permanent media wear: the tier retains ``fraction`` of its
    nominal bandwidth from ``start_s`` onward."""

    fraction: float = 1.0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"wear fraction must be in (0, 1], got {self.fraction}"
            )

    def slowdown_at(self, now: float) -> float:
        if now < self.start_s:
            return 1.0
        return 1.0 / self.fraction

    def is_zero(self) -> bool:
        return self.fraction >= 1.0


@dataclass(frozen=True)
class LinkOutage(FaultModel):
    """The target is down (all transfers fail) inside the window."""

    start_s: float = 0.0
    duration_s: Optional[float] = None
    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        if (
            self.period_s is not None
            and self.duration_s is not None
            and self.period_s < self.duration_s
        ):
            raise ConfigurationError(
                "period_s must be >= duration_s (outages cannot overlap)"
            )

    def down_at(self, now: float) -> bool:
        return _in_window(now, self.start_s, self.duration_s, self.period_s)

    def is_zero(self) -> bool:
        return self.duration_s is not None and self.duration_s == 0.0


@dataclass(frozen=True)
class TierLoss(FaultModel):
    """Structural loss of a memory tier: its resident state is gone.

    While lost the target is also down (transfers fail), but unlike a
    :class:`LinkOutage` the bytes it held do not come back when the
    window ends — KV must be rescued or the requests holding it shed,
    and weights re-placed.  ``duration_s=None`` is a permanent loss
    (a dead DIMM); a finite window models a tier that is replaced and
    comes back *empty*.
    """

    start_s: float = 0.0
    duration_s: Optional[float] = None
    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("start_s must be >= 0")
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        if (
            self.period_s is not None
            and self.duration_s is not None
            and self.period_s < self.duration_s
        ):
            raise ConfigurationError(
                "period_s must be >= duration_s (losses cannot overlap)"
            )

    def lost_at(self, now: float) -> bool:
        return _in_window(now, self.start_s, self.duration_s, self.period_s)

    def down_at(self, now: float) -> bool:
        return self.lost_at(now)

    def capacity_fraction_at(self, now: float) -> float:
        return 0.0 if self.lost_at(now) else 1.0

    def structural(self) -> bool:
        return True

    def is_zero(self) -> bool:
        return self.duration_s is not None and self.duration_s == 0.0


@dataclass(frozen=True)
class CapacityShrink(FaultModel):
    """The target keeps only ``fraction`` of its capacity in-window.

    Models partial media failure (a dead rank, reserved-block
    exhaustion): bandwidth is unchanged, but resident state beyond
    the shrunken budget must be spilled to slower tiers.
    """

    fraction: float = 1.0
    start_s: float = 0.0
    duration_s: Optional[float] = None
    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"capacity fraction must be in [0, 1], got {self.fraction}"
            )
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        if (
            self.period_s is not None
            and self.duration_s is not None
            and self.period_s < self.duration_s
        ):
            raise ConfigurationError(
                "period_s must be >= duration_s (windows cannot overlap)"
            )

    def capacity_fraction_at(self, now: float) -> float:
        if _in_window(now, self.start_s, self.duration_s, self.period_s):
            return self.fraction
        return 1.0

    def structural(self) -> bool:
        return True

    def is_zero(self) -> bool:
        return self.fraction >= 1.0 or (
            self.duration_s is not None and self.duration_s == 0.0
        )


@dataclass(frozen=True)
class CorrelatedOutage(FaultModel):
    """One failure domain taking several targets down together.

    A power rail, backplane, or NUMA node failing does not pick one
    tier: ``targets`` lists every additional name this event covers
    (``target`` stays the primary, so single-target queries still
    match).  ``structural=True`` makes it a correlated *loss*
    (resident state gone, as :class:`TierLoss`); ``False`` keeps it a
    correlated link outage (state survives, transfers fail).
    """

    targets: Tuple[str, ...] = ()
    start_s: float = 0.0
    duration_s: Optional[float] = None
    period_s: Optional[float] = None
    lose_state: bool = True

    def __post_init__(self) -> None:
        # JSON payloads carry lists; normalize for hashability.
        object.__setattr__(self, "targets", tuple(self.targets))
        if self.duration_s is not None and self.duration_s < 0:
            raise ConfigurationError("duration_s must be >= 0")
        if (
            self.period_s is not None
            and self.duration_s is not None
            and self.period_s < self.duration_s
        ):
            raise ConfigurationError(
                "period_s must be >= duration_s (outages cannot overlap)"
            )

    def matches(self, target: str) -> bool:
        return super().matches(target) or target in self.targets

    def down_at(self, now: float) -> bool:
        return _in_window(now, self.start_s, self.duration_s, self.period_s)

    def lost_at(self, now: float) -> bool:
        return self.lose_state and self.down_at(now)

    def capacity_fraction_at(self, now: float) -> float:
        return 0.0 if self.lost_at(now) else 1.0

    def structural(self) -> bool:
        return self.lose_state

    def is_zero(self) -> bool:
        return self.duration_s is not None and self.duration_s == 0.0

    def to_json(self) -> Dict[str, object]:
        payload = super().to_json()
        payload["targets"] = list(self.targets)
        return payload


_MODEL_KINDS: Dict[str, Type[FaultModel]] = {
    "transient": TransientFaults,
    "degradation": DegradationWindow,
    "wear": WearDerate,
    "outage": LinkOutage,
    "tier_loss": TierLoss,
    "capacity_shrink": CapacityShrink,
    "correlated": CorrelatedOutage,
}
_KINDS_BY_CLASS: Dict[Type[FaultModel], str] = {
    cls: kind for kind, cls in _MODEL_KINDS.items()
}


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus a set of fault models — one reproducible scenario."""

    faults: Tuple[FaultModel, ...] = ()
    seed: int = 0

    # -- aggregate queries ---------------------------------------------

    def slowdown(self, targets: Sequence[str], now: float) -> float:
        """Product of all matching degradations active at ``now``."""
        factor = 1.0
        for fault in self.faults:
            if any(fault.matches(target) for target in targets):
                factor *= fault.slowdown_at(now)
        return factor

    def failure_probability(
        self, targets: Sequence[str], now: float
    ) -> float:
        """Combined per-attempt failure probability at ``now``."""
        survive = 1.0
        for fault in self.faults:
            if any(fault.matches(target) for target in targets):
                survive *= 1.0 - fault.failure_probability_at(now)
        return 1.0 - survive

    def down(self, targets: Sequence[str], now: float) -> bool:
        return any(
            fault.down_at(now)
            for fault in self.faults
            if any(fault.matches(target) for target in targets)
        )

    def tier_lost(self, targets: Sequence[str], now: float) -> bool:
        """Whether any matching structural fault has destroyed the
        target's resident state at ``now``."""
        return any(
            fault.lost_at(now)
            for fault in self.faults
            if any(fault.matches(target) for target in targets)
        )

    def capacity_fraction(
        self, targets: Sequence[str], now: float
    ) -> float:
        """Product of all matching capacity fractions at ``now``."""
        fraction = 1.0
        for fault in self.faults:
            if any(fault.matches(target) for target in targets):
                fraction *= fault.capacity_fraction_at(now)
        return fraction

    def structural(self) -> bool:
        """True when any model can change topology or capacity."""
        return any(fault.structural() for fault in self.faults)

    def is_zero(self) -> bool:
        """True when the schedule can never perturb a run."""
        return all(fault.is_zero() for fault in self.faults)

    # -- JSON round-trip -----------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "faults": [fault.to_json() for fault in self.faults],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultSchedule":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                "a fault schedule must be a JSON object with a "
                "'faults' list"
            )
        faults = []
        for entry in payload.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in _MODEL_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{', '.join(sorted(_MODEL_KINDS))}"
                )
            try:
                faults.append(_MODEL_KINDS[kind](**entry))
            except TypeError as error:
                raise ConfigurationError(
                    f"bad parameters for fault kind {kind!r}: {error}"
                ) from None
        return cls(faults=tuple(faults), seed=int(payload.get("seed", 0)))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=1)

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read fault schedule {path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault schedule {path!r} is not valid JSON: {error}"
            ) from error
        return cls.from_json(payload)


#: The strictly-inert schedule (handy as an explicit opt-out).
ZERO_SCHEDULE = FaultSchedule()
