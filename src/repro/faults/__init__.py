"""``repro.faults`` — fault injection for out-of-core inference.

Production host tiers are not the constants the calibration tables
make them look like: Optane wears, SSDs pause for garbage collection,
CXL links flap.  This package models those failure processes as
deterministic, seeded functions of virtual time and prices them into
the same discrete-event timing the rest of the library uses, so a
"chaos" run is exactly as reproducible as a clean one.

Entry points:

* :class:`FaultSchedule` — a seed + fault models; JSON round-trip for
  scripted scenarios (``repro-serve --faults schedule.json``).
* :class:`FaultInjector` — prices transfers under a schedule, with
  retries governed by a :class:`RetryPolicy`.
* :func:`degraded_host_config` — the degraded bandwidth map a
  re-plan runs against.
"""

from repro.faults.degrade import degraded_host_config
from repro.faults.injector import (
    FaultInjector,
    FaultStats,
    TierHealth,
    TransferOutcome,
    make_injector,
)
from repro.faults.models import (
    DISK_TARGET,
    HOST_TARGET,
    PCIE_TARGET,
    WILDCARD,
    ZERO_SCHEDULE,
    CapacityShrink,
    CorrelatedOutage,
    DegradationWindow,
    FaultModel,
    FaultSchedule,
    LinkOutage,
    TierLoss,
    TransientFaults,
    WearDerate,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.seeds import seed_stream

__all__ = [
    "FaultModel",
    "TransientFaults",
    "DegradationWindow",
    "WearDerate",
    "LinkOutage",
    "TierLoss",
    "CapacityShrink",
    "CorrelatedOutage",
    "FaultSchedule",
    "ZERO_SCHEDULE",
    "HOST_TARGET",
    "DISK_TARGET",
    "PCIE_TARGET",
    "WILDCARD",
    "FaultInjector",
    "FaultStats",
    "TierHealth",
    "TransferOutcome",
    "make_injector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "degraded_host_config",
    "seed_stream",
]
