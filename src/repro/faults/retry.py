"""Retry policy for faulted transfers: exponential backoff + jitter.

All delays are *virtual* seconds — the policy prices how long a real
runtime would spend retrying, it never sleeps.  The accounting is
closed-form so tests can assert exact totals:

* failed attempt ``i`` (1-based) wastes the attempt's transfer time
  (the failure is detected at completion, e.g. a checksum mismatch) —
  or :attr:`probe_s` when the link is down and the attempt fails fast;
* the runtime then backs off ``backoff_base_s * multiplier**(i-1)``
  seconds, stretched by up to ``jitter`` (a seeded uniform draw);
* the transfer is abandoned after :attr:`max_attempts` attempts, or
  as soon as the accumulated virtual time exceeds :attr:`timeout_s`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transfer failures."""

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: Fractional jitter: the backoff is stretched by ``1 + jitter*u``
    #: with ``u`` drawn uniformly from [0, 1) by the injector's RNG.
    jitter: float = 0.1
    #: Give up once the attempts + backoffs exceed this much virtual
    #: time, even with attempts remaining.
    timeout_s: float = 30.0
    #: Fast-failure cost of probing a link that is down.
    probe_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.probe_s < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")
        if self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")

    def backoff_s(self, failure_index: int, u: float = 0.0) -> float:
        """Backoff after the ``failure_index``-th failure (1-based)."""
        base = self.backoff_base_s * self.backoff_multiplier ** (
            failure_index - 1
        )
        return base * (1.0 + self.jitter * u)

    def total_backoff_s(self, failures: int) -> float:
        """Jitter-free closed form: sum of the first ``failures``
        backoff delays (geometric series)."""
        return sum(
            self.backoff_s(index) for index in range(1, failures + 1)
        )


#: The default policy used when none is configured explicitly.
DEFAULT_RETRY_POLICY = RetryPolicy()
