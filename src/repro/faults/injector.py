"""The seeded fault injector: schedules priced into virtual time.

The injector is the single point where the engine asks "what does
this transfer cost under the configured faults?".  It owns one seeded
RNG; because every consumer consults it in deterministic (virtual
time) order, identical seeds and schedules reproduce identical runs
bit for bit.  Zero-intensity schedules never touch the RNG and never
change a priced duration, so attaching one is exactly equivalent to
running without faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import DegradedTierError, RetryExhaustedError
from repro.faults.models import FaultSchedule
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy


@dataclass(frozen=True)
class TransferOutcome:
    """How one (possibly retried) transfer was priced."""

    #: Total virtual time: wasted attempts + backoffs + the successful
    #: (slowed) transfer itself.
    duration_s: float
    attempts: int
    #: Backoff waits between attempts.
    retry_delay_s: float
    #: Transfer time spent on attempts that failed.
    wasted_s: float
    #: Slowdown applied to the successful attempt (1.0 = nominal).
    slowdown: float

    @property
    def retried(self) -> bool:
        return self.attempts > 1


@dataclass(frozen=True)
class TierHealth:
    """Snapshot of one target set at one instant."""

    slowdown: float
    down: bool

    @property
    def nominal(self) -> bool:
        return not self.down and self.slowdown <= 1.0


@dataclass
class FaultStats:
    """Mutable counters accumulated over one injector's lifetime."""

    transfers: int = 0
    degraded_transfers: int = 0
    failures: int = 0
    retried_transfers: int = 0
    retry_delay_s: float = 0.0
    wasted_s: float = 0.0
    exhausted: int = 0

    def as_dict(self) -> dict:
        return {
            "transfers": self.transfers,
            "degraded_transfers": self.degraded_transfers,
            "failures": self.failures,
            "retried_transfers": self.retried_transfers,
            "retry_delay_s": self.retry_delay_s,
            "wasted_s": self.wasted_s,
            "exhausted": self.exhausted,
        }


@dataclass
class FaultInjector:
    """Prices transfers under one :class:`FaultSchedule`."""

    schedule: FaultSchedule
    #: Overrides the schedule's own seed when given.
    seed: Optional[int] = None
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        if self.seed is None:
            self.seed = self.schedule.seed
        self._rng = random.Random(self.seed)
        #: Optional mirror of :attr:`stats` into a telemetry registry
        #: (``faults/*``); see :meth:`bind_telemetry`.
        self._metrics = None

    def bind_telemetry(self, registry) -> None:
        """Mirror the injector's counters into ``registry``.

        ``registry`` is a :class:`repro.telemetry.MetricsRegistry` (or
        scoped view); counters land under ``faults/`` and replay any
        counts accumulated before the bind.  Binding never touches the
        RNG, so instrumented runs stay bit-identical.
        """
        scope = registry.scoped("faults")
        self._metrics = {
            "transfers": scope.counter("transfers"),
            "degraded_transfers": scope.counter("degraded_transfers"),
            "failures": scope.counter("failures"),
            "retried_transfers": scope.counter("retried_transfers"),
            "retry_delay_s": scope.counter("retry_delay_s"),
            "wasted_s": scope.counter("wasted_s"),
            "exhausted": scope.counter("exhausted"),
        }
        for name, counter in self._metrics.items():
            counter.inc(getattr(self.stats, name))

    # -- queries --------------------------------------------------------

    def slowdown(self, targets: Sequence[str], now: float) -> float:
        return self.schedule.slowdown(targets, now)

    def down(self, targets: Sequence[str], now: float) -> bool:
        return self.schedule.down(targets, now)

    def health(self, targets: Sequence[str], now: float) -> TierHealth:
        return TierHealth(
            slowdown=self.schedule.slowdown(targets, now),
            down=self.schedule.down(targets, now),
        )

    def tier_lost(self, targets: Sequence[str], now: float) -> bool:
        return self.schedule.tier_lost(targets, now)

    def capacity_fraction(
        self, targets: Sequence[str], now: float
    ) -> float:
        return self.schedule.capacity_fraction(targets, now)

    def structural(self) -> bool:
        return self.schedule.structural()

    def is_zero(self) -> bool:
        return self.schedule.is_zero()

    # -- checkpointing --------------------------------------------------

    def state_snapshot(self) -> dict:
        """The injector's mutable state as a deterministic dict.

        Captures the seeded RNG position and the accumulated
        counters; restoring both makes a resumed run consume the
        exact same retry/failure stream as an uncrashed one.
        """
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, snapshot: dict) -> None:
        version, internal, gauss = snapshot["rng"]
        self._rng.setstate((version, tuple(internal), gauss))
        for name, value in snapshot["stats"].items():
            setattr(self.stats, name, value)

    # -- pricing --------------------------------------------------------

    def price_transfer(
        self,
        targets: Sequence[str],
        nominal_s: float,
        now: float,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> TransferOutcome:
        """Price one transfer of nominal duration ``nominal_s``
        starting at virtual time ``now``.

        Degradations slow the attempt in flight; transient faults and
        outages force retries under ``retry``.  Raises
        :class:`~repro.errors.RetryExhaustedError` when every attempt
        failed, or :class:`~repro.errors.DegradedTierError` when the
        target was still down at the final attempt.
        """
        device = targets[0] if targets else "?"
        if nominal_s <= 0:
            return TransferOutcome(0.0, 1, 0.0, 0.0, 1.0)
        schedule = self.schedule
        elapsed = 0.0
        attempts = 0
        wasted = 0.0
        delay = 0.0
        while True:
            attempts += 1
            instant = now + elapsed
            was_down = schedule.down(targets, instant)
            if was_down:
                cost = retry.probe_s
            else:
                slowdown = schedule.slowdown(targets, instant)
                duration = nominal_s * slowdown
                probability = schedule.failure_probability(targets, instant)
                failed = probability >= 1.0 or (
                    probability > 0.0 and self._rng.random() < probability
                )
                if not failed:
                    self.stats.transfers += 1
                    if slowdown > 1.0:
                        self.stats.degraded_transfers += 1
                    if attempts > 1:
                        self.stats.retried_transfers += 1
                    self.stats.retry_delay_s += delay
                    self.stats.wasted_s += wasted
                    if self._metrics is not None:
                        self._metrics["transfers"].inc()
                        if slowdown > 1.0:
                            self._metrics["degraded_transfers"].inc()
                        if attempts > 1:
                            self._metrics["retried_transfers"].inc()
                        self._metrics["retry_delay_s"].inc(delay)
                        self._metrics["wasted_s"].inc(wasted)
                    return TransferOutcome(
                        duration_s=elapsed + duration,
                        attempts=attempts,
                        retry_delay_s=delay,
                        wasted_s=wasted,
                        slowdown=slowdown,
                    )
                cost = duration
            self.stats.failures += 1
            if self._metrics is not None:
                self._metrics["failures"].inc()
            elapsed += cost
            wasted += cost
            if attempts >= retry.max_attempts or elapsed >= retry.timeout_s:
                self.stats.exhausted += 1
                if self._metrics is not None:
                    self._metrics["exhausted"].inc()
                if was_down:
                    raise DegradedTierError(device, attempts, elapsed)
                raise RetryExhaustedError(device, attempts, elapsed)
            u = self._rng.random() if retry.jitter > 0 else 0.0
            backoff = retry.backoff_s(attempts, u)
            elapsed += backoff
            delay += backoff


def make_injector(
    faults: "FaultSchedule | FaultInjector | str | None",
    seed: Optional[int] = None,
) -> Optional[FaultInjector]:
    """Coerce user input (schedule, injector, JSON path, or None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        faults = FaultSchedule.load(faults)
    return FaultInjector(schedule=faults, seed=seed)


Targets = Tuple[str, ...]
