"""Degraded-tier modeling: bandwidth maps under active faults.

When the serving layer reacts to sustained degradation it re-runs
placement ("re-plan") against the bandwidths the hardware *currently*
delivers, not the nominal calibration.  This module builds that
degraded bandwidth map: a deep copy of a
:class:`~repro.memory.hierarchy.HostMemoryConfig` whose tier scale
factors are divided by the observed slowdown, so every downstream
consumer — placement, the GPU memory plan, the transfer-path solver —
prices the degraded reality consistently.
"""

from __future__ import annotations

import copy

from repro.errors import ConfigurationError
from repro.memory.hierarchy import HostMemoryConfig


def degraded_host_config(
    config: HostMemoryConfig,
    host_factor: float = 1.0,
    disk_factor: float = 1.0,
) -> HostMemoryConfig:
    """A copy of ``config`` with tier bandwidths divided by the factors.

    ``host_factor``/``disk_factor`` are slowdowns (>= 1): the factor a
    :class:`~repro.faults.models.DegradationWindow` or
    :class:`~repro.faults.models.WearDerate` reports for the tier.
    The copy shares nothing with the original, so mutating working-set
    state on one cannot leak into the other.
    """
    if host_factor < 1.0 or disk_factor < 1.0:
        raise ConfigurationError(
            "degradation factors are slowdowns and must be >= 1"
        )
    degraded = copy.deepcopy(config)
    host = degraded.host_region
    host.read_scale /= host_factor
    host.write_scale /= host_factor
    disk = degraded.disk_region
    if disk is not None and disk_factor > 1.0:
        disk.read_scale /= disk_factor
        disk.write_scale /= disk_factor
    degraded.description = (
        f"{config.description} [degraded: host /{host_factor:g}"
        + (f", disk /{disk_factor:g}" if disk_factor > 1.0 else "")
        + "]"
    )
    return degraded
