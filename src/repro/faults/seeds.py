"""Replica-stable seed derivation for fleet simulations.

A fleet run hands every replica its own RNG streams (arrival jitter,
fault draws, KV salt).  Deriving those per-replica seeds by e.g.
``root_seed + replica_id`` would be fragile two ways: adjacent
replicas' streams could correlate, and — worse — any scheme that
draws replica seeds *sequentially* from one generator would reseed
replica 0 whenever the fleet grows.  :func:`seed_stream` instead
hashes ``(root_seed, replica_id, purpose)`` independently, so

* replica 0's streams are a pure function of the root seed — adding
  replicas can never perturb them (the regression tests pin this);
* replica 0 receives the root seed *unchanged*, which is what makes a
  one-replica fleet bit-identical to the single-engine simulator it
  refactors;
* distinct ``purpose`` labels ("faults", "arrivals", ...) of the same
  replica get independent streams.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.errors import ConfigurationError

#: Seeds stay inside numpy's legal ``default_rng`` range (uint64).
_SEED_BITS = 64


def seed_stream(
    root_seed: Optional[int], replica_id: int, purpose: str = "faults"
) -> Optional[int]:
    """A stable per-(replica, purpose) seed derived from ``root_seed``.

    Replica 0 returns ``root_seed`` unchanged (including ``None``),
    preserving bit-identity with single-engine runs seeded directly.
    Other replicas hash ``(root_seed, replica_id, purpose)`` through
    SHA-256, so each replica's draws depend only on its own id — never
    on how many siblings exist.  A ``None`` root with a nonzero
    replica id derives from root 0, keeping "unseeded" fleets
    deterministic too.
    """
    if replica_id < 0:
        raise ConfigurationError("replica_id cannot be negative")
    if not purpose:
        raise ConfigurationError("seed_stream needs a purpose label")
    if replica_id == 0:
        return root_seed
    root = 0 if root_seed is None else int(root_seed)
    digest = hashlib.sha256(
        f"{root}:{replica_id}:{purpose}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[: _SEED_BITS // 8], "big")
