"""``repro-telemetry`` — inspect and convert saved telemetry bundles.

::

    repro-serve --rate 0.2 --requests 50 --telemetry-out run.json
    repro-telemetry summary run.json
    repro-telemetry export run.json --format prom -o metrics.prom
    repro-telemetry export run.json --format jsonl
    repro-telemetry export run.json --format chrome -o spans.trace.json

``export --format chrome`` renders the serving-level spans; the
*merged* trace with engine compute/transfer tracks underneath is
written live by ``repro-serve --chrome-trace`` (the engine trace is
not part of the bundle).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.telemetry import load_bundle
from repro.telemetry.export import (
    to_chrome_trace,
    to_jsonl_text,
    to_prometheus_text,
)
from repro.telemetry.summary import render_summary

EXPORT_FORMATS = ("prom", "jsonl", "chrome")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description=(
            "Summarize or convert a telemetry bundle written by "
            "repro-serve/repro-experiments --telemetry-out."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="print registry metrics and span counts"
    )
    summary.add_argument("bundle", help="bundle JSON path")

    export = sub.add_parser(
        "export", help="convert a bundle to an exchange format"
    )
    export.add_argument("bundle", help="bundle JSON path")
    export.add_argument(
        "--format", dest="fmt", required=True, choices=EXPORT_FORMATS,
        help="prom (Prometheus text), jsonl (event log), or chrome "
        "(Perfetto-loadable span trace)",
    )
    export.add_argument(
        "-o", "--out", metavar="FILE", default=None,
        help="output path (default: stdout)",
    )
    return parser


def _emit(text: str, out: Optional[str]) -> None:
    if out is None:
        sys.stdout.write(text)
    else:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"written to {out}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        bundle = load_bundle(args.bundle)
        if args.command == "summary":
            meta = bundle.get("meta", {})
            if meta:
                source = ", ".join(
                    f"{key}={value}" for key, value in sorted(meta.items())
                )
                print(f"[{source}]")
            print(render_summary(bundle))
            return 0
        if args.fmt == "prom":
            _emit(to_prometheus_text(bundle), args.out)
        elif args.fmt == "jsonl":
            _emit(to_jsonl_text(bundle), args.out)
        else:
            _emit(
                json.dumps(to_chrome_trace(bundle)) + "\n", args.out
            )
        return 0
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(
            f"error: {args.bundle}: not JSON ({error})", file=sys.stderr
        )
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
