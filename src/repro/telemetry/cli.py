"""``repro-telemetry`` — inspect and convert saved telemetry bundles.

::

    repro-serve --rate 0.2 --requests 50 --telemetry-out run.json
    repro-telemetry summary run.json
    repro-telemetry export run.json --format prom -o metrics.prom
    repro-telemetry export run.json --format jsonl
    repro-telemetry export run.json --format chrome -o spans.trace.json
    repro-telemetry dash live.jsonl            # live terminal dashboard
    repro-telemetry diff before.json after.json
    repro-telemetry profile run.json --folded out.folded

``export --format chrome`` renders the serving-level spans; the
*merged* trace with engine compute/transfer tracks underneath is
written live by ``repro-serve --chrome-trace`` (the engine trace is
not part of the bundle).

``dash`` tails a JSONL event log (same contract as ``summary
--follow``) and re-renders a terminal dashboard of the windowed
``obs/``, ``slo/``, KV-occupancy, and sweep ``progress/`` gauges.
``diff`` compares two bundles and exits 2 when a metric regressed
past the thresholds — wire it into CI.  ``profile`` prints the
virtual-time span profile and critical path; ``--folded`` writes
flamegraph.pl / speedscope-compatible folded stacks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import ReproError, TelemetryError
from repro.telemetry.export import (
    bundle_from_jsonl_lines,
    to_chrome_trace,
    to_jsonl_text,
    to_prometheus_text,
)
from repro.telemetry.summary import render_summary

EXPORT_FORMATS = ("prom", "jsonl", "chrome")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description=(
            "Summarize or convert a telemetry bundle written by "
            "repro-serve/repro-experiments --telemetry-out."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="print registry metrics and span counts"
    )
    summary.add_argument("bundle", help="bundle JSON path")
    summary.add_argument(
        "--follow", action="store_true",
        help="treat the path as a JSONL event log (export --format "
        "jsonl, or a fleet run's --telemetry-out *.jsonl) and re-render "
        "the summary as lines are appended",
    )
    summary.add_argument(
        "--poll-s", type=float, default=0.5,
        help="--follow poll interval in seconds (default 0.5)",
    )
    summary.add_argument(
        "--max-renders", type=int, default=None,
        help="--follow: exit after this many renders (default: until "
        "interrupted)",
    )

    export = sub.add_parser(
        "export", help="convert a bundle to an exchange format"
    )
    export.add_argument("bundle", help="bundle JSON path")
    export.add_argument(
        "--format", dest="fmt", required=True, choices=EXPORT_FORMATS,
        help="prom (Prometheus text), jsonl (event log), or chrome "
        "(Perfetto-loadable span trace)",
    )
    export.add_argument(
        "-o", "--out", metavar="FILE", default=None,
        help="output path (default: stdout)",
    )

    dash = sub.add_parser(
        "dash",
        help="live terminal dashboard over a JSONL telemetry stream",
    )
    dash.add_argument(
        "bundle", help="JSONL event-log path (repro-serve "
        "--telemetry-out run.jsonl, or export --format jsonl)",
    )
    dash.add_argument(
        "--poll-s", type=float, default=0.5,
        help="poll interval in seconds (default 0.5)",
    )
    dash.add_argument(
        "--max-renders", type=int, default=None,
        help="exit after this many frames (default: until interrupted)",
    )
    dash.add_argument(
        "--no-clear", action="store_true",
        help="do not clear the terminal between frames (append frames "
        "instead; useful for logs and tests)",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two bundles; exit 2 on metric regressions",
    )
    diff.add_argument("before", help="baseline bundle JSON path")
    diff.add_argument("after", help="candidate bundle JSON path")
    diff.add_argument(
        "--relative", type=float, default=0.05,
        help="relative change needed to be significant (default 0.05)",
    )
    diff.add_argument(
        "--abs", dest="absolute", type=float, default=1e-9,
        help="absolute change floor (default 1e-9)",
    )
    diff.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the machine-readable report to FILE",
    )
    diff.add_argument(
        "--include-progress", action="store_true",
        help="also diff the wall-clock progress/ namespace (skipped "
        "by default: it is legitimately nondeterministic)",
    )

    profile = sub.add_parser(
        "profile",
        help="virtual-time span profile, critical path, folded stacks",
    )
    profile.add_argument("bundle", help="bundle JSON path")
    profile.add_argument(
        "--folded", metavar="FILE", default=None,
        help="write folded stacks (flamegraph.pl / speedscope input) "
        "to FILE instead of printing the profile",
    )
    profile.add_argument(
        "--top", type=int, default=20,
        help="rows of the self-time table to print (default 20)",
    )
    return parser


def follow_summary(
    path: str,
    poll_s: float = 0.5,
    max_renders: Optional[int] = None,
    out=None,
) -> int:
    """Tail a JSONL telemetry export, re-rendering the summary.

    Each render is a pure function of the complete lines read so far
    (a trailing partial line is held back until its newline arrives),
    so following a finished log prints exactly the summary a one-shot
    parse of that log would.  Stops after ``max_renders`` renders, or
    on Ctrl-C.
    """
    out = out if out is not None else sys.stdout
    offset = 0
    tail = b""
    lines: List[str] = []
    renders = 0
    try:
        while max_renders is None or renders < max_renders:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
            tail += chunk
            fresh = tail.split(b"\n")
            tail = fresh.pop()  # incomplete (or empty) final piece
            if fresh or renders == 0:
                lines.extend(piece.decode("utf-8") for piece in fresh)
                bundle = bundle_from_jsonl_lines(lines)
                renders += 1
                out.write(
                    f"--- render {renders} ({len(lines)} lines) ---\n"
                )
                out.write(render_summary(bundle) + "\n")
                out.flush()
            if max_renders is not None and renders >= max_renders:
                break
            time.sleep(poll_s)
    except KeyboardInterrupt:
        pass
    return 0


def _load(path: str) -> dict:
    """Load a bundle from plain JSON or a JSONL event log.

    Every read-a-bundle subcommand accepts both shapes, so a
    ``--telemetry-out run.jsonl`` stream can go straight into
    ``summary``/``diff``/``profile`` without a conversion step.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        bundle = json.loads(text)
    except json.JSONDecodeError:
        lines = [line for line in text.splitlines() if line.strip()]
        if lines:
            try:
                first = json.loads(lines[0])
            except json.JSONDecodeError:
                raise
            if isinstance(first, dict) and "type" in first:
                return bundle_from_jsonl_lines(lines)
        raise
    if not isinstance(bundle, dict) or "metrics" not in bundle:
        raise TelemetryError(
            f"{path}: not a telemetry bundle (missing 'metrics')"
        )
    return bundle


def _emit(text: str, out: Optional[str]) -> None:
    if out is None:
        sys.stdout.write(text)
    else:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"written to {out}")


def _profile_costs(bundle):
    """Rebuild the run's cost model from bundle meta, best effort.

    The attribution falls back to span attributes (and then raw
    durations) when the meta does not name a model/host/placement the
    engine can instantiate, so failing here is never fatal.
    """
    meta = bundle.get("meta", {})
    try:
        from repro.core.engine import OffloadEngine

        return OffloadEngine(
            model=meta["model"],
            host=meta["host"],
            placement=meta["placement"],
        ).cost_model()
    except Exception:
        return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary" and args.follow:
            return follow_summary(
                args.bundle,
                poll_s=args.poll_s,
                max_renders=args.max_renders,
            )
        if args.command == "dash":
            from repro.obs.dash import follow_dash

            return follow_dash(
                args.bundle,
                poll_s=args.poll_s,
                max_renders=args.max_renders,
                clear=not args.no_clear,
            )
        if args.command == "diff":
            from repro.obs.diff import (
                DiffThresholds,
                diff_bundles,
                render_diff,
            )

            report = diff_bundles(
                _load(args.before),
                _load(args.after),
                thresholds=DiffThresholds(
                    relative=args.relative, absolute=args.absolute
                ),
                ignore_namespaces=(
                    () if args.include_progress else ("progress",)
                ),
            )
            print(render_diff(report, args.before, args.after))
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump(report.as_dict(), handle, indent=1)
                print(f"report written to {args.json}")
            return report.exit_code
        bundle = _load(args.bundle)
        if args.command == "profile":
            from repro.obs.profile import folded_stacks, render_profile

            spans = bundle.get("spans", [])
            if args.folded:
                with open(args.folded, "w") as handle:
                    for line in folded_stacks(spans):
                        handle.write(line + "\n")
                print(f"folded stacks written to {args.folded}")
                return 0
            print(
                render_profile(
                    spans, costs=_profile_costs(bundle), top=args.top
                )
            )
            return 0
        if args.command == "summary":
            meta = bundle.get("meta", {})
            if meta:
                source = ", ".join(
                    f"{key}={value}" for key, value in sorted(meta.items())
                )
                print(f"[{source}]")
            print(render_summary(bundle))
            return 0
        if args.fmt == "prom":
            _emit(to_prometheus_text(bundle), args.out)
        elif args.fmt == "jsonl":
            _emit(to_jsonl_text(bundle), args.out)
        else:
            _emit(
                json.dumps(to_chrome_trace(bundle)) + "\n", args.out
            )
        return 0
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        path = getattr(args, "bundle", None) or getattr(
            args, "before", "input"
        )
        print(f"error: {path}: not JSON ({error})", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
