"""``repro-telemetry`` — inspect and convert saved telemetry bundles.

::

    repro-serve --rate 0.2 --requests 50 --telemetry-out run.json
    repro-telemetry summary run.json
    repro-telemetry export run.json --format prom -o metrics.prom
    repro-telemetry export run.json --format jsonl
    repro-telemetry export run.json --format chrome -o spans.trace.json

``export --format chrome`` renders the serving-level spans; the
*merged* trace with engine compute/transfer tracks underneath is
written live by ``repro-serve --chrome-trace`` (the engine trace is
not part of the bundle).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.telemetry import load_bundle
from repro.telemetry.export import (
    bundle_from_jsonl_lines,
    to_chrome_trace,
    to_jsonl_text,
    to_prometheus_text,
)
from repro.telemetry.summary import render_summary

EXPORT_FORMATS = ("prom", "jsonl", "chrome")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description=(
            "Summarize or convert a telemetry bundle written by "
            "repro-serve/repro-experiments --telemetry-out."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser(
        "summary", help="print registry metrics and span counts"
    )
    summary.add_argument("bundle", help="bundle JSON path")
    summary.add_argument(
        "--follow", action="store_true",
        help="treat the path as a JSONL event log (export --format "
        "jsonl, or a fleet run's --telemetry-out *.jsonl) and re-render "
        "the summary as lines are appended",
    )
    summary.add_argument(
        "--poll-s", type=float, default=0.5,
        help="--follow poll interval in seconds (default 0.5)",
    )
    summary.add_argument(
        "--max-renders", type=int, default=None,
        help="--follow: exit after this many renders (default: until "
        "interrupted)",
    )

    export = sub.add_parser(
        "export", help="convert a bundle to an exchange format"
    )
    export.add_argument("bundle", help="bundle JSON path")
    export.add_argument(
        "--format", dest="fmt", required=True, choices=EXPORT_FORMATS,
        help="prom (Prometheus text), jsonl (event log), or chrome "
        "(Perfetto-loadable span trace)",
    )
    export.add_argument(
        "-o", "--out", metavar="FILE", default=None,
        help="output path (default: stdout)",
    )
    return parser


def follow_summary(
    path: str,
    poll_s: float = 0.5,
    max_renders: Optional[int] = None,
    out=None,
) -> int:
    """Tail a JSONL telemetry export, re-rendering the summary.

    Each render is a pure function of the complete lines read so far
    (a trailing partial line is held back until its newline arrives),
    so following a finished log prints exactly the summary a one-shot
    parse of that log would.  Stops after ``max_renders`` renders, or
    on Ctrl-C.
    """
    out = out if out is not None else sys.stdout
    offset = 0
    tail = b""
    lines: List[str] = []
    renders = 0
    try:
        while max_renders is None or renders < max_renders:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
            tail += chunk
            fresh = tail.split(b"\n")
            tail = fresh.pop()  # incomplete (or empty) final piece
            if fresh or renders == 0:
                lines.extend(piece.decode("utf-8") for piece in fresh)
                bundle = bundle_from_jsonl_lines(lines)
                renders += 1
                out.write(
                    f"--- render {renders} ({len(lines)} lines) ---\n"
                )
                out.write(render_summary(bundle) + "\n")
                out.flush()
            if max_renders is not None and renders >= max_renders:
                break
            time.sleep(poll_s)
    except KeyboardInterrupt:
        pass
    return 0


def _emit(text: str, out: Optional[str]) -> None:
    if out is None:
        sys.stdout.write(text)
    else:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"written to {out}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary" and args.follow:
            return follow_summary(
                args.bundle,
                poll_s=args.poll_s,
                max_renders=args.max_renders,
            )
        bundle = load_bundle(args.bundle)
        if args.command == "summary":
            meta = bundle.get("meta", {})
            if meta:
                source = ", ".join(
                    f"{key}={value}" for key, value in sorted(meta.items())
                )
                print(f"[{source}]")
            print(render_summary(bundle))
            return 0
        if args.fmt == "prom":
            _emit(to_prometheus_text(bundle), args.out)
        elif args.fmt == "jsonl":
            _emit(to_jsonl_text(bundle), args.out)
        else:
            _emit(
                json.dumps(to_chrome_trace(bundle)) + "\n", args.out
            )
        return 0
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as error:
        print(
            f"error: {args.bundle}: not JSON ({error})", file=sys.stderr
        )
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
