"""Spans and the tracer: one request, followed end to end.

A :class:`Span` is a named virtual-time interval with attributes,
point-in-time events, and a parent — the serving scheduler opens one
per run, one per iteration, and one per request, so a single request
can be followed from arrival through admission, per-iteration
pricing, and engine streams to completion.  Spans carry *virtual*
timestamps supplied by the caller (the simulation clock), never
wall-clock reads, so traces are deterministic and two identical runs
produce identical span trees.

Span ids are sequential integers assigned at start time; parent links
use those ids, which keeps serialized traces (JSONL, Chrome) stable
and mergeable with the engine's operation-level
:class:`~repro.sim.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TelemetryError


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation inside a span."""

    name: str
    time_s: float
    attrs: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "time_s": self.time_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


@dataclass
class Span:
    """One named virtual-time interval."""

    name: str
    span_id: int
    start_s: float
    parent_id: Optional[int] = None
    category: str = "span"
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    end_s: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise TelemetryError(f"span {self.name!r} has not ended")
        return self.end_s - self.start_s

    def set(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    def event(self, name: str, time_s: float, **attrs: object) -> "Span":
        self.events.append(
            SpanEvent(
                name=name,
                time_s=float(time_s),
                attrs=tuple(sorted(attrs.items())),
            )
        )
        return self

    def end(self, time_s: float) -> "Span":
        if self.end_s is not None:
            raise TelemetryError(f"span {self.name!r} already ended")
        if time_s < self.start_s:
            raise TelemetryError(
                f"span {self.name!r} would end before it starts "
                f"({time_s} < {self.start_s})"
            )
        self.end_s = float(time_s)
        return self

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = [event.as_dict() for event in self.events]
        return out


class _NullSpan:
    """No-op span handed out by a disabled tracer."""

    name = ""
    span_id = -1
    parent_id = None
    category = "null"
    start_s = 0.0
    end_s = 0.0
    attrs: Dict[str, object] = {}
    events: List[SpanEvent] = []
    finished = True
    duration_s = 0.0

    def set(self, key: str, value: object) -> "_NullSpan":
        return self

    def event(self, name: str, time_s: float, **attrs: object) -> "_NullSpan":
        return self

    def end(self, time_s: float) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one run, in deterministic id order."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: List[Span] = []

    def start(
        self,
        name: str,
        start_s: float,
        parent: Optional[Span] = None,
        category: str = "span",
        **attrs: object,
    ) -> Span:
        """Open a span at virtual time ``start_s``."""
        if not self.enabled:
            return NULL_SPAN  # type: ignore[return-value]
        parent_id = None
        if parent is not None and parent is not NULL_SPAN:
            parent_id = parent.span_id
        span = Span(
            name=name,
            span_id=len(self._spans),
            start_s=float(start_s),
            parent_id=parent_id,
            category=category,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        category: str = "span",
        **attrs: object,
    ) -> Span:
        """Record an already-complete interval in one call."""
        return self.start(
            name, start_s, parent=parent, category=category, **attrs
        ).end(end_s)

    @property
    def spans(self) -> Tuple[Span, ...]:
        return tuple(self._spans)

    def finished_spans(self) -> Tuple[Span, ...]:
        return tuple(span for span in self._spans if span.finished)

    def children_of(self, parent: Span) -> Tuple[Span, ...]:
        return tuple(
            span
            for span in self._spans
            if span.parent_id == parent.span_id
        )

    def __len__(self) -> int:
        return len(self._spans)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Finished spans as JSON-able dicts (unfinished are dropped)."""
        return [span.as_dict() for span in self._spans if span.finished]

    @classmethod
    def from_dicts(cls, entries) -> "Tracer":
        tracer = cls()
        for entry in entries:
            span = Span(
                name=entry["name"],
                span_id=int(entry["span_id"]),
                start_s=float(entry["start_s"]),
                parent_id=entry.get("parent_id"),
                category=entry.get("category", "span"),
                attrs=dict(entry.get("attrs", {})),
            )
            for event in entry.get("events", ()):
                span.event(
                    event["name"], event["time_s"],
                    **event.get("attrs", {}),
                )
            span.end(float(entry["end_s"]))
            tracer._spans.append(span)
        return tracer
