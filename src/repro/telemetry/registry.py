"""The metrics registry: counters, gauges, and mergeable histograms.

One :class:`MetricsRegistry` is the always-on accounting surface for a
whole run.  Instruments are named with ``/``-separated namespaces
(``"pricing/cache/hits"``, ``"serve/iterations"``) so every subsystem
— engine, pricing, faults, scheduler — lands in one table that the
exporters (:mod:`repro.telemetry.export`) can render as Prometheus
text, JSONL, or a summary.

Design constraints, in order:

* **Deterministic.**  Instruments never read wall-clock time; every
  recorded value is supplied by the caller (virtual-time durations,
  counts).  Two identical runs produce identical snapshots.
* **Cheap when disabled.**  A registry built with ``enabled=False``
  hands out shared no-op instruments; the hot path pays one method
  call that does nothing.  A disabled-registry run is bit-identical
  to one with no telemetry at all.
* **Mergeable.**  Snapshots are plain JSON-able dicts; counters and
  histogram bucket counts add, gauges take the incoming value — so
  per-shard registries can be folded into one fleet view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, TelemetryError

#: Default explicit buckets for virtual-time durations, spanning the
#: microsecond kernels of small models to the hour-long batch E2E
#: latencies of saturated serving runs (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
    300.0, 600.0, 3600.0,
)

#: Canonical (name, labels) identity of one instrument.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "help_text", "value")

    def __init__(
        self, name: str, labels: LabelItems = (), help_text: str = ""
    ) -> None:
        self.name = name
        self.labels = labels
        self.help_text = help_text
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r}: cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help_text", "value")

    def __init__(
        self, name: str, labels: LabelItems = (), help_text: str = ""
    ) -> None:
        self.name = name
        self.labels = labels
        self.help_text = help_text
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Explicit-bucket histogram over virtual-time values.

    ``buckets`` are upper bounds (``le``); one implicit ``+Inf``
    bucket catches the rest.  Counts, sum, and extrema are tracked so
    exporters can render both Prometheus histograms and human
    summaries without NaN sentinels (``count == 0`` means "no data").
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help_text", "buckets", "counts", "sum",
        "count", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise TelemetryError(
                f"histogram {name!r}: buckets must be a strictly "
                f"increasing non-empty sequence, got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.help_text = help_text
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic bucket-interpolated quantile estimate.

        See :func:`bucket_quantile` — reads TTFT p99 mid-run off the
        bucket counts alone, no raw samples retained.
        """
        return bucket_quantile(
            self.buckets, self.counts, q,
            count=self.count, min_value=self.min, max_value=self.max,
        )


def bucket_quantile(
    buckets: Tuple[float, ...],
    counts: Iterable[int],
    q: float,
    count: Optional[int] = None,
    min_value: float = 0.0,
    max_value: float = 0.0,
) -> float:
    """Quantile ``q`` estimated from explicit-bucket counts.

    Linear interpolation inside the bucket where the cumulative count
    crosses ``q * count``, with the interpolation interval clamped to
    the observed ``[min, max]`` — so single-bucket mass degrades
    gracefully instead of answering the bucket edge, and the +Inf
    bucket answers ``max`` rather than infinity.  Pure integer/float
    arithmetic over the snapshot: deterministic, mergeable, and
    identical whether computed live or from an exported bundle.
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    counts = list(counts)
    if count is None:
        count = sum(counts)
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0
    lower = min_value
    for bound, bucket_count in zip(buckets, counts):
        upper = min(float(bound), max_value)
        if bucket_count:
            if cumulative + bucket_count >= rank:
                lo = max(lower, min_value)
                hi = max(upper, lo)
                fraction = (rank - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        lower = max(lower, upper)
    return max_value


_Instrument = (Counter, Gauge, Histogram)


class _NullInstrument:
    """Shared no-op stand-in handed out by disabled registries."""

    kind = "null"
    name = ""
    labels: LabelItems = ()
    help_text = ""
    value = 0.0
    sum = 0.0
    count = 0
    mean = 0.0
    min = 0.0
    max = 0.0
    buckets: Tuple[float, ...] = ()
    counts: List[int] = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Namespaced instrument table for one run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: "Dict[Tuple[str, LabelItems], object]" = {}

    # -- instrument access ---------------------------------------------

    def _get(
        self,
        kind: type,
        name: str,
        labels: Optional[Mapping[str, str]],
        help_text: str,
        **kwargs,
    ):
        if not self.enabled:
            return _NULL_INSTRUMENT
        if not name:
            raise TelemetryError("instruments need a non-empty name")
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = kind(
                name, labels=key[1], help_text=help_text, **kwargs
            )
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TelemetryError(
                f"instrument {name!r} already registered as "
                f"{instrument.kind}, requested {kind.kind}"
            )
        return instrument

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help_text: str = "",
    ) -> Counter:
        return self._get(Counter, name, labels, help_text)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help_text: str = "",
    ) -> Gauge:
        return self._get(Gauge, name, labels, help_text)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, help_text, buckets=buckets
        )

    def scoped(self, namespace: str) -> "ScopedRegistry":
        """A view that prefixes every instrument name."""
        return ScopedRegistry(self, namespace)

    # -- inspection -----------------------------------------------------

    def instruments(self) -> Tuple[object, ...]:
        """All instruments, sorted by (name, labels) for determinism."""
        return tuple(
            self._instruments[key] for key in sorted(self._instruments)
        )

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """A counter/gauge's current value, or None if never created."""
        instrument = self._instruments.get((name, _label_items(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.value

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """The registry as a JSON-able dict (see module docstring)."""
        snap: Dict[str, List[Dict[str, object]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for instrument in self.instruments():
            entry: Dict[str, object] = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
            }
            if instrument.help_text:
                entry["help"] = instrument.help_text
            if isinstance(instrument, Histogram):
                entry.update(
                    buckets=list(instrument.buckets),
                    counts=list(instrument.counts),
                    sum=instrument.sum,
                    count=instrument.count,
                    min=instrument.min,
                    max=instrument.max,
                )
                snap["histograms"].append(entry)
            else:
                entry["value"] = instrument.value
                snap[f"{instrument.kind}s"].append(entry)
        return snap

    def merge(
        self,
        snapshot: Mapping[str, Iterable[Mapping]],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram bucket counts add; gauges take the
        incoming value.  ``extra_labels`` are stamped onto every
        incoming instrument (the fleet roll-up tags each replica's
        snapshot with ``{"replica": "<i>"}`` so same-named series stay
        distinguishable).

        The whole snapshot is validated *before* anything is mutated:
        a histogram whose buckets differ from the already-registered
        instrument's, or whose counts don't match its buckets, raises
        :class:`~repro.errors.ConfigurationError` and leaves this
        registry untouched — a half-applied merge would silently
        corrupt every series that happened to sort earlier.
        """
        if not self.enabled:
            return

        def _merged_labels(entry: Mapping) -> Dict[str, str]:
            labels = dict(entry.get("labels") or {})
            if extra_labels:
                labels.update(extra_labels)
            return labels

        pending = []
        for entry in snapshot.get("histograms", ()):
            labels = _merged_labels(entry)
            buckets = tuple(entry["buckets"])
            if len(list(entry["counts"])) != len(buckets) + 1:
                raise ConfigurationError(
                    f"histogram {entry['name']!r}: malformed snapshot "
                    f"(bucket/count length mismatch)"
                )
            existing = self._instruments.get(
                (entry["name"], _label_items(labels))
            )
            if isinstance(existing, Histogram) and existing.buckets != buckets:
                raise ConfigurationError(
                    f"histogram {entry['name']!r}: cannot merge "
                    f"mismatched buckets {buckets!r} into "
                    f"{existing.buckets!r}"
                )
            pending.append((entry, labels, buckets))

        for entry in snapshot.get("counters", ()):
            self.counter(
                entry["name"], _merged_labels(entry),
                entry.get("help", ""),
            ).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(
                entry["name"], _merged_labels(entry),
                entry.get("help", ""),
            ).set(entry["value"])
        for entry, labels, buckets in pending:
            histogram = self.histogram(
                entry["name"], labels, entry.get("help", ""),
                buckets=buckets,
            )
            for i, count in enumerate(entry["counts"]):
                histogram.counts[i] += count
            if entry["count"]:
                if histogram.count == 0:
                    histogram.min = entry["min"]
                    histogram.max = entry["max"]
                else:
                    histogram.min = min(histogram.min, entry["min"])
                    histogram.max = max(histogram.max, entry["max"])
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, Iterable[Mapping]]
    ) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry


class ScopedRegistry:
    """A namespace-prefixing view over one :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, namespace: str) -> None:
        if not namespace:
            raise TelemetryError("scoped registries need a namespace")
        self.registry = registry
        self.namespace = namespace.rstrip("/")

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def _name(self, name: str) -> str:
        return f"{self.namespace}/{name}"

    def counter(self, name: str, **kwargs) -> Counter:
        return self.registry.counter(self._name(name), **kwargs)

    def gauge(self, name: str, **kwargs) -> Gauge:
        return self.registry.gauge(self._name(name), **kwargs)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self.registry.histogram(self._name(name), **kwargs)

    def scoped(self, namespace: str) -> "ScopedRegistry":
        return ScopedRegistry(self.registry, self._name(namespace))
