"""Exporters: Prometheus text, JSONL event log, extended Chrome trace.

All three render the same *bundle* — the JSON-able dict produced by
:meth:`repro.telemetry.Telemetry.bundle` (``meta`` + registry
snapshot + finished spans) — so a run saved with ``--telemetry-out``
can be re-exported offline by ``repro-telemetry export`` without
re-running anything.

The Chrome exporter extends :mod:`repro.sim.chrome_trace`: the
engine's operation-level trace keeps its per-stream tracks (process
0), and serving-level spans are overlaid as a second process —
request spans as async begin/end pairs (they overlap freely),
run/iteration spans as complete events, span events as instants.
Load the result in Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import TelemetryError
from repro.sim.chrome_trace import trace_to_chrome_events
from repro.sim.trace import Trace

#: Chrome-trace process ids: engine streams vs. serving-level spans.
ENGINE_PID = 0
SPAN_PID = 1


def _bundle_parts(bundle: Mapping) -> Dict:
    if "metrics" not in bundle:
        raise TelemetryError(
            "not a telemetry bundle: missing 'metrics' "
            "(expected the dict written by --telemetry-out)"
        )
    return {
        "meta": dict(bundle.get("meta", {})),
        "metrics": bundle["metrics"],
        "spans": list(bundle.get("spans", ())),
    }


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash first
    (so escapes are not re-escaped), then double-quote and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(key)}="{_prom_label_value(value)}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(bundle: Mapping) -> str:
    """The bundle's metrics in the Prometheus exposition format."""
    metrics = _bundle_parts(bundle)["metrics"]
    lines: List[str] = []
    seen_header = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_header:
            return
        seen_header.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in metrics.get("counters", ()):
        name = _prom_name(entry["name"])
        if not name.endswith("_total"):
            name += "_total"
        header(name, "counter", entry.get("help", ""))
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{_prom_value(entry['value'])}"
        )
    for entry in metrics.get("gauges", ()):
        name = _prom_name(entry["name"])
        header(name, "gauge", entry.get("help", ""))
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{_prom_value(entry['value'])}"
        )
    for entry in metrics.get("histograms", ()):
        name = _prom_name(entry["name"])
        header(name, "histogram", entry.get("help", ""))
        labels = entry.get("labels", {})
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            le = 'le="%s"' % format(bound, "g")
            lines.append(
                f"{name}_bucket{_prom_labels(labels, le)} {cumulative}"
            )
        cumulative += entry["counts"][len(entry["buckets"])]
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_prom_labels(labels, inf)} {cumulative}"
        )
        lines.append(
            f"{name}_sum{_prom_labels(labels)} "
            f"{_prom_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_prom_labels(labels)} {int(entry['count'])}"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------

def to_jsonl_lines(bundle: Mapping) -> Iterable[str]:
    """The bundle as one JSON object per line.

    Order is deterministic: meta, spans (id order), span events
    (span id, then event order), then metrics.
    """
    parts = _bundle_parts(bundle)
    yield json.dumps({"type": "meta", **parts["meta"]}, sort_keys=True)
    for span in parts["spans"]:
        record = {
            key: value for key, value in span.items() if key != "events"
        }
        yield json.dumps({"type": "span", **record}, sort_keys=True)
        for event in span.get("events", ()):
            yield json.dumps(
                {
                    "type": "span_event",
                    "span_id": span["span_id"],
                    **event,
                },
                sort_keys=True,
            )
    metrics = parts["metrics"]
    for kind in ("counters", "gauges", "histograms"):
        for entry in metrics.get(kind, ()):
            yield json.dumps(
                {"type": "metric", "kind": kind[:-1], **entry},
                sort_keys=True,
            )


def to_jsonl_text(bundle: Mapping) -> str:
    return "\n".join(to_jsonl_lines(bundle)) + "\n"


def append_jsonl_snapshot(
    bundle: Mapping, path: str, reset: bool = True
) -> None:
    """Append one full export of ``bundle`` to a live JSONL log.

    With ``reset`` (the default) a ``{"type": "reset"}`` marker
    precedes the export, so tailing readers (``--follow``, ``dash``)
    replace their state with this snapshot instead of accumulating
    duplicates.  The file stays append-only, which is what keeps the
    offset-based follow machinery valid.
    """
    with open(path, "a") as handle:
        if reset:
            handle.write(json.dumps({"type": "reset"}) + "\n")
        handle.write(to_jsonl_text(bundle))


def bundle_from_jsonl_lines(lines: Iterable[str]) -> Dict[str, object]:
    """Rebuild a bundle dict from :func:`to_jsonl_lines` output.

    The inverse of the JSONL exporter, tolerant of *prefixes* of a
    stream: a log still being appended to (``repro-telemetry summary
    --follow``) parses to a bundle of whatever has landed so far.
    Unknown record types are ignored so the format can grow.

    A ``{"type": "reset"}`` record clears everything accumulated so
    far: long sweeps (``repro-experiments run all --telemetry-out
    sweep.jsonl``) append a fresh ``reset`` + full export after each
    cell, so an append-only log stays tailable
    (``repro-telemetry dash``) while always parsing to the *latest*
    snapshot.  One-shot exports never emit it.
    """
    meta: Dict[str, object] = {}
    spans: List[Dict[str, object]] = []
    span_index: Dict[object, Dict[str, object]] = {}
    metrics: Dict[str, List[Dict[str, object]]] = {
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryError(
                f"line {line_no}: not JSON ({error})"
            ) from None
        if not isinstance(record, dict) or "type" not in record:
            raise TelemetryError(
                f"line {line_no}: not a JSONL export record "
                "(missing 'type')"
            )
        kind = record.pop("type")
        if kind == "reset":
            meta = {}
            spans = []
            span_index = {}
            metrics = {"counters": [], "gauges": [], "histograms": []}
        elif kind == "meta":
            meta = record
        elif kind == "span":
            record["events"] = []
            spans.append(record)
            span_index[record.get("span_id")] = record
        elif kind == "span_event":
            span_id = record.pop("span_id", None)
            parent = span_index.get(span_id)
            if parent is None:
                raise TelemetryError(
                    f"line {line_no}: span_event for unknown span "
                    f"{span_id!r}"
                )
            parent["events"].append(record)
        elif kind == "metric":
            family = record.pop("kind", None)
            if family not in ("counter", "gauge", "histogram"):
                raise TelemetryError(
                    f"line {line_no}: unknown metric kind {family!r}"
                )
            metrics[f"{family}s"].append(record)
    return {
        "version": 1,
        "meta": meta,
        "metrics": metrics,
        "spans": spans,
    }


# ----------------------------------------------------------------------
# Extended Chrome / Perfetto trace
# ----------------------------------------------------------------------

def spans_to_chrome_events(
    spans: Iterable[Mapping],
) -> List[Dict[str, object]]:
    """Serving-level spans as trace events in process :data:`SPAN_PID`.

    Request/shed spans become async begin/end pairs (one async track
    per span name family, overlapping freely, as concurrent requests
    do); everything else becomes a complete ("X") event on a track
    named after its category, nesting children over parents.
    """
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SPAN_PID,
            "args": {"name": "serving spans"},
        }
    ]
    track_ids: Dict[str, int] = {}

    def track(name: str) -> int:
        if name not in track_ids:
            tid = len(track_ids)
            track_ids[name] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": SPAN_PID,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return track_ids[name]

    for span in spans:
        category = span.get("category", "span")
        attrs = {
            str(key): str(value)
            for key, value in span.get("attrs", {}).items()
        }
        start_us = span["start_s"] * 1e6
        duration_us = (span["end_s"] - span["start_s"]) * 1e6
        if category in ("request", "shed"):
            lane = str(span.get("attrs", {}).get("qos", category))
            tid = track(f"requests:{lane}")
            common = {
                "name": span["name"],
                "cat": category,
                "id": span["span_id"],
                "pid": SPAN_PID,
                "tid": tid,
            }
            events.append(
                {**common, "ph": "b", "ts": start_us, "args": attrs}
            )
            events.append(
                {**common, "ph": "e", "ts": start_us + duration_us}
            )
        else:
            tid = track(category)
            events.append(
                {
                    "name": span["name"],
                    "cat": category,
                    "ph": "X",
                    "pid": SPAN_PID,
                    "tid": tid,
                    "ts": start_us,
                    "dur": duration_us,
                    "args": attrs,
                }
            )
        for event in span.get("events", ()):
            events.append(
                {
                    "name": event["name"],
                    "cat": category,
                    "ph": "i",
                    "s": "t",
                    "pid": SPAN_PID,
                    "tid": tid,
                    "ts": event["time_s"] * 1e6,
                    "args": {
                        str(key): str(value)
                        for key, value in event.get("attrs", {}).items()
                    },
                }
            )
    return events


def to_chrome_trace(
    bundle: Mapping, trace: Optional[Trace] = None
) -> Dict[str, object]:
    """The bundle (plus an optional engine trace) as one trace JSON."""
    events: List[Dict[str, object]] = []
    if trace is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": ENGINE_PID,
                "args": {"name": "engine streams"},
            }
        )
        events.extend(trace_to_chrome_events(trace))
    events.extend(spans_to_chrome_events(_bundle_parts(bundle)["spans"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_extended_chrome_trace(
    bundle: Mapping, path: str, trace: Optional[Trace] = None
) -> None:
    """Write the overlaid Perfetto-loadable trace JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(bundle, trace=trace), handle)
