"""Human-readable rendering of telemetry bundles.

One formatter, two consumers: the ``repro-telemetry summary`` command
renders a whole bundle grouped by subsystem, and ``repro-serve``'s
report pulls its pricing/cache line from the same registry counters —
so counter formatting lives here and nowhere else.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.telemetry.registry import MetricsRegistry


def _fmt_value(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return f"{value:.6g}"


def _label_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def summary_lines(bundle: Mapping) -> List[str]:
    """The bundle as indented text, grouped by top-level namespace."""
    metrics = bundle.get("metrics", {})
    groups: Dict[str, List[str]] = {}

    def add(name: str, labels: Mapping[str, str], text: str) -> None:
        subsystem, _, rest = name.partition("/")
        rest = rest or subsystem
        groups.setdefault(subsystem, []).append(
            (rest + _label_suffix(labels), text)
        )

    for entry in metrics.get("counters", ()):
        add(entry["name"], entry.get("labels", {}),
            _fmt_value(entry["value"]))
    for entry in metrics.get("gauges", ()):
        add(entry["name"], entry.get("labels", {}),
            _fmt_value(entry["value"]))
    for entry in metrics.get("histograms", ()):
        if entry["count"]:
            text = (
                f"n={entry['count']} mean={entry['sum'] / entry['count']:.6g} "
                f"min={entry['min']:.6g} max={entry['max']:.6g}"
            )
        else:
            text = "n=0 (no data)"
        add(entry["name"], entry.get("labels", {}), text)

    lines: List[str] = []
    for subsystem in sorted(groups):
        lines.append(f"{subsystem}:")
        rows = groups[subsystem]
        width = max(len(name) for name, _ in rows)
        for name, text in rows:
            lines.append(f"  {name:<{width}} : {text}")

    spans = bundle.get("spans", ())
    if spans:
        by_category: Dict[str, int] = {}
        for span in spans:
            category = span.get("category", "span")
            by_category[category] = by_category.get(category, 0) + 1
        breakdown = ", ".join(
            f"{category} {count}"
            for category, count in sorted(by_category.items())
        )
        lines.append(f"spans: {len(spans)} ({breakdown})")
    return lines


def render_summary(bundle: Mapping) -> str:
    return "\n".join(summary_lines(bundle))


def cache_stats_line(
    registry: MetricsRegistry, backend: Optional[str] = None
) -> Optional[str]:
    """The ``repro-serve`` pricing/cache report line, off the registry.

    Returns None when the run never touched the price cache (no
    counters registered), so callers can skip the row entirely.
    """
    hits = registry.value("pricing/cache/hits")
    misses = registry.value("pricing/cache/misses")
    if hits is None and misses is None:
        return None
    hits = int(hits or 0)
    misses = int(misses or 0)
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    prefix = f"{backend} backend, " if backend else ""
    line = (
        f"{prefix}cache {hits} hits / {misses} misses "
        f"({rate:.1%} hit rate)"
    )
    memo_entries = registry.value("pricing/backend/entries")
    if memo_entries is not None:
        line += f", {int(memo_entries)} backend memo entries"
        memo_evictions = registry.value("pricing/backend/evictions")
        if memo_evictions:
            line += f" ({int(memo_evictions)} evicted)"
    return line
