"""``repro.telemetry`` — unified observability for the reproduction.

One :class:`Telemetry` object carries the two instruments every
subsystem shares:

* a :class:`~repro.telemetry.registry.MetricsRegistry` of namespaced
  counters / gauges / virtual-time histograms (``engine/…``,
  ``pricing/…``, ``faults/…``, ``serve/…``), and
* a :class:`~repro.telemetry.spans.Tracer` whose parent/child spans
  follow one request from arrival through admission, per-iteration
  pricing, and engine streams to completion.

Telemetry is *deterministic* (virtual-time timestamps only — no
wall-clock reads on any hot path) and *inert by default*: the module
ships a disabled singleton, every instrument call on it is a no-op,
and a disabled-telemetry run is bit-identical to one with no
telemetry code at all.  Enable it per call site
(``simulate_serving(telemetry=…)``) or ambiently::

    from repro.telemetry import Telemetry, use_telemetry

    telemetry = Telemetry.create()
    with use_telemetry(telemetry):
        simulate_serving(...)           # picks it up automatically
    telemetry.save("run-telemetry.json")

Bundles saved this way feed ``repro-telemetry summary`` and
``repro-telemetry export --format {prom,jsonl,chrome}``.  See
``docs/observability.md``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
    bucket_quantile,
)
from repro.telemetry.spans import NULL_SPAN, Span, SpanEvent, Tracer

#: Bundle schema version, bumped on incompatible layout changes.
BUNDLE_VERSION = 1


@dataclass
class Telemetry:
    """The registry + tracer pair one run instruments into."""

    registry: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=False)
    )
    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=False))
    meta: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def create(cls, enabled: bool = True, **meta: object) -> "Telemetry":
        return cls(
            registry=MetricsRegistry(enabled=enabled),
            tracer=Tracer(enabled=enabled),
            meta=dict(meta),
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.tracer.enabled

    def scoped(self, namespace: str) -> ScopedRegistry:
        return self.registry.scoped(namespace)

    # -- persistence ----------------------------------------------------

    def bundle(self, **extra_meta: object) -> Dict[str, object]:
        """The run's telemetry as one JSON-able dict."""
        return {
            "version": BUNDLE_VERSION,
            "meta": {**self.meta, **extra_meta},
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.to_dicts(),
        }

    def save(self, path: str, **extra_meta: object) -> None:
        with open(path, "w") as handle:
            json.dump(self.bundle(**extra_meta), handle, indent=1)


def load_bundle(path: str) -> Dict[str, object]:
    """Read a bundle written by :meth:`Telemetry.save`."""
    with open(path) as handle:
        bundle = json.load(handle)
    if not isinstance(bundle, dict) or "metrics" not in bundle:
        raise TelemetryError(
            f"{path}: not a telemetry bundle (missing 'metrics')"
        )
    return bundle


#: The inert default: all instruments are no-ops.
NULL_TELEMETRY = Telemetry()

_active: Telemetry = NULL_TELEMETRY


def current_telemetry() -> Telemetry:
    """The ambient telemetry consulted when no instance is passed."""
    return _active


def set_current_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` (or the inert default) as ambient."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry):
    """Scoped :func:`set_current_telemetry`."""
    previous = set_current_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_current_telemetry(previous)


def resolve_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """An explicit instance if given, else the ambient one."""
    return telemetry if telemetry is not None else current_telemetry()


__all__ = [
    "BUNDLE_VERSION",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "Span",
    "SpanEvent",
    "Telemetry",
    "Tracer",
    "bucket_quantile",
    "current_telemetry",
    "load_bundle",
    "resolve_telemetry",
    "set_current_telemetry",
    "use_telemetry",
]
