"""Byte/time unit constants and human-readable formatting helpers.

The library uses plain numbers everywhere: sizes are **bytes** (int or
float), durations are **seconds** (float), and rates are **bytes per
second** (float).  These helpers keep call sites readable without
introducing a heavyweight quantity type.

Binary prefixes (``KiB``/``MiB``/``GiB``) are powers of two; decimal
prefixes (``KB``/``MB``/``GB``) are powers of ten.  The paper mixes both
(e.g. its "3.38 GB" decoder block is in fact 3.375 GiB); we are explicit
everywhere.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3
TIB = 1024 ** 4

KB = 1000
MB = 1000 ** 2
GB = 1000 ** 3
TB = 1000 ** 4

NS = 1e-9
US = 1e-6
MS = 1e-3

#: One gigabyte per second, the customary unit for link bandwidth.
GB_PER_S = float(GB)


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary prefix, e.g. ``fmt_bytes(2**30)
    == '1.00 GiB'``."""
    value = float(nbytes)
    sign = "-" if value < 0 else ""
    value = abs(value)
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if value >= unit:
            return f"{sign}{value / unit:.2f} {name}"
    return f"{sign}{value:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration using the most readable unit."""
    value = float(seconds)
    sign = "-" if value < 0 else ""
    value = abs(value)
    if value >= 1.0:
        return f"{sign}{value:.3f} s"
    if value >= MS:
        return f"{sign}{value / MS:.3f} ms"
    if value >= US:
        return f"{sign}{value / US:.3f} us"
    return f"{sign}{value / NS:.1f} ns"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a bandwidth in GB/s (decimal, matching the paper)."""
    return f"{bytes_per_second / GB_PER_S:.2f} GB/s"
