"""``repro.obs`` — streaming observability over ``repro.telemetry``.

The telemetry layer records what happened; this package watches it
*while virtual time advances*:

* :mod:`repro.obs.window` — ring-buffered windowed histograms and
  rolling counters keyed by virtual time, so TTFT p99 or the arrival
  rate are readable mid-run without raw samples;
* :mod:`repro.obs.slo` — declarative :class:`SloSpec` objectives
  (JSON round-trip) evaluated at scheduler boundaries with SRE-style
  multi-window burn rates, publishing ``slo/`` gauges and streaming
  ``slo_alert`` span events;
* :mod:`repro.obs.monitor` — :class:`ServeObserver`, the hook bundle
  the scheduler drives (arrivals, completions, sheds, iterations,
  boundaries) and the fleet rolls up per replica;
* :mod:`repro.obs.profile` — self/total virtual-time profiles,
  folded-stack (flamegraph/speedscope) export, and critical-path
  attribution (compute vs transfer vs KV migration vs idle);
* :mod:`repro.obs.dash` / :mod:`repro.obs.diff` — the
  ``repro-telemetry dash`` live terminal dashboard and the
  ``repro-telemetry diff`` CI regression gate.

Everything is opt-in: a run without an observer attached executes
the exact pre-``repro.obs`` instruction stream (bit-identical
summaries, records, and telemetry snapshots), and with one attached
all signals remain deterministic functions of virtual time.  See
``docs/observability.md``.
"""

from repro.obs.diff import (
    DiffReport,
    DiffThresholds,
    SeriesDelta,
    diff_bundles,
    render_diff,
)
from repro.obs.monitor import ServeObserver
from repro.obs.profile import (
    build_profile,
    critical_path,
    folded_stacks,
    frame_name,
    render_profile,
)
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    BurnRule,
    SloAlert,
    SloMonitor,
    SloObjective,
    SloSpec,
)
from repro.obs.window import (
    RollingCounter,
    WindowConfig,
    WindowedHistogram,
)

__all__ = [
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DiffReport",
    "DiffThresholds",
    "RollingCounter",
    "SeriesDelta",
    "ServeObserver",
    "SloAlert",
    "SloMonitor",
    "SloObjective",
    "SloSpec",
    "WindowConfig",
    "WindowedHistogram",
    "build_profile",
    "critical_path",
    "diff_bundles",
    "folded_stacks",
    "frame_name",
    "render_diff",
    "render_profile",
]
