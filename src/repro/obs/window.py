"""Windowed instruments: histograms and rates over virtual time.

The plain :class:`~repro.telemetry.registry.Histogram` accumulates
over a whole run — good for post-hoc percentiles, useless for "what
is TTFT p99 *right now*".  :class:`WindowedHistogram` keeps a ring of
per-window bucket snapshots keyed by virtual time: window ``i``
covers ``[i * width_s, (i + 1) * width_s)``, observations land in the
window their timestamp selects, and only the most recent ``windows``
windows are retained.  Percentiles over "the last K windows" are then
pure arithmetic over bucket counts — no raw samples are ever stored.

Everything here follows the telemetry design rules: virtual-time
timestamps supplied by the caller, no wall-clock reads, deterministic
snapshots, and replica mergeability — windows align on their absolute
index (``floor(time / width)``), so per-replica instruments observing
disjoint request streams fold into exactly the instrument one merged
stream would have produced (``tests/obs/test_window.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, TelemetryError
from repro.telemetry.registry import (
    DEFAULT_TIME_BUCKETS,
    bucket_quantile,
)


@dataclass(frozen=True)
class WindowConfig:
    """Shape of one windowed instrument family.

    ``width_s`` is the window width in *virtual* seconds; ``windows``
    is the ring size (how many trailing windows stay addressable).
    """

    width_s: float = 60.0
    windows: int = 16

    def __post_init__(self) -> None:
        if self.width_s <= 0:
            raise ConfigurationError(
                f"window width must be positive, got {self.width_s}"
            )
        if self.windows < 2:
            raise ConfigurationError(
                f"need at least 2 ring windows, got {self.windows}"
            )

    def index(self, time_s: float) -> int:
        """The absolute window index containing virtual time."""
        return int(time_s // self.width_s)

    def to_dict(self) -> Dict[str, object]:
        return {"width_s": self.width_s, "windows": self.windows}

    @classmethod
    def from_dict(cls, data: Mapping) -> "WindowConfig":
        return cls(
            width_s=float(data.get("width_s", 60.0)),
            windows=int(data.get("windows", 16)),
        )


@dataclass
class _Window:
    """One live window's histogram state."""

    index: int
    counts: List[int]
    sum: float = 0.0
    count: int = 0
    min: float = 0.0
    max: float = 0.0

    def observe(self, value: float, bucket: int) -> None:
        self.counts[bucket] += 1
        self.sum += value
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class WindowedHistogram:
    """Ring of per-window explicit-bucket histograms over virtual time.

    Observations may arrive for any *retained* window (the scheduler
    finishes requests at iteration boundaries, slightly after their
    logical event times); anything older than the ring falls off the
    trailing edge and is counted in :attr:`dropped` rather than
    silently lost.
    """

    def __init__(
        self,
        name: str,
        config: WindowConfig = WindowConfig(),
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise TelemetryError(
                f"windowed histogram {name!r}: buckets must be a "
                f"strictly increasing non-empty sequence"
            )
        self.name = name
        self.config = config
        self.buckets = tuple(float(b) for b in buckets)
        #: index -> window, only the trailing ``config.windows`` kept.
        self._windows: Dict[int, _Window] = {}
        self._latest: int = -1
        self.dropped: int = 0

    # -- recording ------------------------------------------------------

    def _bucket(self, value: float) -> int:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def rotate(self, time_s: float) -> None:
        """Advance the ring so ``time_s`` has a live window; evict
        windows that fell off the trailing edge."""
        index = self.config.index(time_s)
        if index > self._latest:
            self._latest = index
        floor = self._latest - self.config.windows + 1
        for stale in [i for i in self._windows if i < floor]:
            del self._windows[stale]

    def observe(self, value: float, time_s: float) -> None:
        value = float(value)
        self.rotate(time_s)
        index = self.config.index(time_s)
        if index <= self._latest - self.config.windows:
            self.dropped += 1
            return
        window = self._windows.get(index)
        if window is None:
            window = _Window(
                index=index, counts=[0] * (len(self.buckets) + 1)
            )
            self._windows[index] = window
        window.observe(value, self._bucket(value))

    # -- reading --------------------------------------------------------

    @property
    def latest_index(self) -> int:
        return self._latest

    def window(self, index: int) -> Optional[Dict[str, object]]:
        entry = self._windows.get(index)
        return entry.as_dict() if entry is not None else None

    def recent(self, k: int, now: Optional[float] = None) -> Dict[str, object]:
        """The last ``k`` windows (ending at ``now``'s window, or the
        latest observed) merged into one histogram-shaped dict."""
        if k < 1:
            raise ConfigurationError("need at least one window")
        end = self._latest if now is None else self.config.index(now)
        counts = [0] * (len(self.buckets) + 1)
        total = 0
        total_sum = 0.0
        lo = 0.0
        hi = 0.0
        for index in range(end - k + 1, end + 1):
            window = self._windows.get(index)
            if window is None or not window.count:
                continue
            for i, c in enumerate(window.counts):
                counts[i] += c
            if total == 0:
                lo, hi = window.min, window.max
            else:
                lo = min(lo, window.min)
                hi = max(hi, window.max)
            total += window.count
            total_sum += window.sum
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "count": total,
            "sum": total_sum,
            "min": lo,
            "max": hi,
        }

    def quantile(
        self, q: float, windows: int = 1, now: Optional[float] = None
    ) -> float:
        """Bucket-interpolated quantile over the last ``windows``."""
        merged = self.recent(windows, now=now)
        return bucket_quantile(
            self.buckets,
            merged["counts"],
            q,
            count=merged["count"],
            min_value=merged["min"],
            max_value=merged["max"],
        )

    def rate(self, windows: int = 1, now: Optional[float] = None) -> float:
        """Observations per virtual second over the last ``windows``."""
        merged = self.recent(windows, now=now)
        return merged["count"] / (windows * self.config.width_s)

    # -- snapshots / merge ---------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "config": self.config.to_dict(),
            "buckets": list(self.buckets),
            "latest": self._latest,
            "dropped": self.dropped,
            "windows": [
                self._windows[index].as_dict()
                for index in sorted(self._windows)
            ],
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another instrument's snapshot into this one.

        Windows align on their absolute index, so merging replicas
        that observed disjoint slices of one stream reproduces the
        single-instrument result exactly.  Mismatched buckets or
        window width are configuration errors, as in
        :meth:`repro.telemetry.MetricsRegistry.merge`.
        """
        if tuple(snapshot["buckets"]) != self.buckets:
            raise ConfigurationError(
                f"windowed histogram {self.name!r}: cannot merge "
                f"mismatched buckets"
            )
        other = WindowConfig.from_dict(snapshot["config"])
        if other.width_s != self.config.width_s:
            raise ConfigurationError(
                f"windowed histogram {self.name!r}: cannot merge "
                f"window width {other.width_s} into {self.config.width_s}"
            )
        self.dropped += int(snapshot.get("dropped", 0))
        self._latest = max(self._latest, int(snapshot.get("latest", -1)))
        for entry in snapshot.get("windows", ()):
            index = int(entry["index"])
            window = self._windows.get(index)
            if window is None:
                window = _Window(
                    index=index, counts=[0] * (len(self.buckets) + 1)
                )
                self._windows[index] = window
            for i, c in enumerate(entry["counts"]):
                window.counts[i] += c
            if entry["count"]:
                if window.count == 0:
                    window.min = entry["min"]
                    window.max = entry["max"]
                else:
                    window.min = min(window.min, entry["min"])
                    window.max = max(window.max, entry["max"])
            window.sum += entry["sum"]
            window.count += entry["count"]
        floor = self._latest - self.config.windows + 1
        for stale in [i for i in self._windows if i < floor]:
            del self._windows[stale]

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "WindowedHistogram":
        instrument = cls(
            snapshot.get("name", ""),
            config=WindowConfig.from_dict(snapshot["config"]),
            buckets=tuple(snapshot["buckets"]),
        )
        instrument.merge(snapshot)
        return instrument


class RollingCounter:
    """Per-window event counts: the arrival-rate gauge's backbone.

    A degenerate :class:`WindowedHistogram` would do, but a plain
    ``Dict[int, float]`` ring is cheaper on the per-arrival hot path.
    """

    def __init__(
        self, name: str, config: WindowConfig = WindowConfig()
    ) -> None:
        self.name = name
        self.config = config
        self._windows: Dict[int, float] = {}
        self._latest: int = -1
        self.total: float = 0.0

    def inc(self, time_s: float, amount: float = 1.0) -> None:
        index = self.config.index(time_s)
        if index > self._latest:
            self._latest = index
            floor = self._latest - self.config.windows + 1
            for stale in [i for i in self._windows if i < floor]:
                del self._windows[stale]
        self._windows[index] = self._windows.get(index, 0.0) + amount
        self.total += amount

    def count(self, windows: int = 1, now: Optional[float] = None) -> float:
        end = self._latest if now is None else self.config.index(now)
        return sum(
            self._windows.get(index, 0.0)
            for index in range(end - windows + 1, end + 1)
        )

    def rate(self, windows: int = 1, now: Optional[float] = None) -> float:
        """Events per virtual second over the last ``windows``."""
        return self.count(windows, now=now) / (
            windows * self.config.width_s
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "config": self.config.to_dict(),
            "latest": self._latest,
            "total": self.total,
            "windows": {
                str(index): self._windows[index]
                for index in sorted(self._windows)
            },
        }

    def merge(self, snapshot: Mapping) -> None:
        other = WindowConfig.from_dict(snapshot["config"])
        if other.width_s != self.config.width_s:
            raise ConfigurationError(
                f"rolling counter {self.name!r}: cannot merge window "
                f"width {other.width_s} into {self.config.width_s}"
            )
        self._latest = max(self._latest, int(snapshot.get("latest", -1)))
        windows = snapshot.get("windows", {})
        # The cumulative total includes what already rotated out of the
        # remote ring; fold it whole, not just the retained windows.
        self.total += float(
            snapshot.get("total", sum(windows.values()))
        )
        for key, value in windows.items():
            index = int(key)
            self._windows[index] = self._windows.get(index, 0.0) + value
        floor = self._latest - self.config.windows + 1
        for stale in [i for i in self._windows if i < floor]:
            del self._windows[stale]
