"""Declarative SLOs with SRE-style multi-window burn-rate alerts.

An :class:`SloObjective` states "fraction ``target`` of ``qos``-class
requests keep ``metric`` under ``threshold_s``"; its error budget is
``1 - target``.  A :class:`BurnRule` pairs a long and a short window
with a factor: the alert fires when the *burn rate* — the windowed
bad-fraction divided by the error budget — is at or above the factor
over **both** windows, the standard multi-window construction that
keeps alerts fast on real regressions and quiet on blips.

:class:`SloSpec` (objectives + burn rules + window shape) round-trips
through JSON, so ``repro-serve --slo spec.json`` and fleet runs share
one file format.  :class:`SloMonitor` is the live evaluator: the
scheduler feeds it finished/shed records, and at iteration boundaries
it publishes ``slo/`` gauges, appends ``slo_alert`` span events into
the run span (and thus the JSONL stream), and keeps per-objective
alert state so transitions are edge-triggered, not repeated.

Virtual time only — nothing here reads a clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.window import RollingCounter, WindowConfig
from repro.serve.request import QosClass

#: Metrics an objective can bound. ``slo`` uses the request's own
#: composite ``slo_met`` verdict (its class's QosTarget) instead of a
#: single threshold.
OBJECTIVE_METRICS = ("ttft", "tbt", "e2e", "slo")


@dataclass(frozen=True)
class SloObjective:
    """One objective: a latency bound and a target attainment."""

    name: str
    qos: str  #: QoS class name, or ``"*"`` for all classes.
    metric: str
    target: float  #: Required good fraction, e.g. 0.99.
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO objective needs a name")
        if self.metric not in OBJECTIVE_METRICS:
            raise ConfigurationError(
                f"objective {self.name!r}: unknown metric "
                f"{self.metric!r} (choose from {OBJECTIVE_METRICS})"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.metric == "slo":
            if self.threshold_s is not None:
                raise ConfigurationError(
                    f"objective {self.name!r}: the 'slo' metric uses "
                    f"the QoS class's own bounds, not a threshold"
                )
        elif self.threshold_s is None or self.threshold_s <= 0:
            raise ConfigurationError(
                f"objective {self.name!r}: metric {self.metric!r} "
                f"needs a positive threshold_s"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def matches(self, qos_class: str) -> bool:
        return self.qos == "*" or self.qos == qos_class

    def is_good(self, record) -> bool:
        """Whether one finished :class:`RequestRecord` is within SLO."""
        if self.metric == "slo":
            return bool(record.slo_met)
        value = getattr(record, f"{self.metric}_s")
        return value <= self.threshold_s

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "qos": self.qos,
            "metric": self.metric,
            "target": self.target,
        }
        if self.threshold_s is not None:
            data["threshold_s"] = self.threshold_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloObjective":
        return cls(
            name=str(data["name"]),
            qos=str(data.get("qos", "*")),
            metric=str(data.get("metric", "slo")),
            target=float(data["target"]),
            threshold_s=(
                float(data["threshold_s"])
                if data.get("threshold_s") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate condition.

    Fires when the burn rate over the last ``long_windows`` *and* the
    last ``short_windows`` are both at or above ``factor``.
    """

    factor: float
    long_windows: int
    short_windows: int

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigurationError("burn factor must be positive")
        if not 0 < self.short_windows <= self.long_windows:
            raise ConfigurationError(
                f"need 0 < short_windows <= long_windows, got "
                f"{self.short_windows} / {self.long_windows}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "factor": self.factor,
            "long_windows": self.long_windows,
            "short_windows": self.short_windows,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BurnRule":
        return cls(
            factor=float(data["factor"]),
            long_windows=int(data["long_windows"]),
            short_windows=int(data["short_windows"]),
        )


#: The classic fast-burn / slow-burn pair, scaled to window counts.
DEFAULT_BURN_RULES: Tuple[BurnRule, ...] = (
    BurnRule(factor=14.4, long_windows=4, short_windows=1),
    BurnRule(factor=6.0, long_windows=12, short_windows=3),
)


@dataclass(frozen=True)
class SloSpec:
    """A full SLO declaration: window shape + objectives + burn rules."""

    objectives: Tuple[SloObjective, ...]
    window: WindowConfig = WindowConfig()
    burn_rules: Tuple[BurnRule, ...] = DEFAULT_BURN_RULES

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigurationError("an SLO spec needs objectives")
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate objective names in SLO spec: {names}"
            )
        longest = max(rule.long_windows for rule in self.burn_rules)
        if longest > self.window.windows:
            raise ConfigurationError(
                f"burn rule needs {longest} windows but the ring only "
                f"keeps {self.window.windows}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window.to_dict(),
            "objectives": [o.to_dict() for o in self.objectives],
            "burn_rules": [r.to_dict() for r in self.burn_rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloSpec":
        return cls(
            objectives=tuple(
                SloObjective.from_dict(entry)
                for entry in data.get("objectives", ())
            ),
            window=WindowConfig.from_dict(data.get("window", {})),
            burn_rules=tuple(
                BurnRule.from_dict(entry)
                for entry in data.get("burn_rules", ())
            )
            or DEFAULT_BURN_RULES,
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "SloSpec":
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}: not an SLO spec ({error})"
                ) from None
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"{path}: not an SLO spec object")
        return cls.from_dict(data)

    @classmethod
    def for_classes(
        cls,
        classes: Sequence[QosClass],
        target: float = 0.99,
        window: WindowConfig = WindowConfig(),
        burn_rules: Tuple[BurnRule, ...] = DEFAULT_BURN_RULES,
    ) -> "SloSpec":
        """Derive one composite objective per QoS class from the
        classes' own latency bounds."""
        return cls(
            objectives=tuple(
                SloObjective(
                    name=f"{qos.name}-slo",
                    qos=qos.name,
                    metric="slo",
                    target=target,
                )
                for qos in classes
            ),
            window=window,
            burn_rules=burn_rules,
        )


@dataclass
class SloAlert:
    """One edge-triggered burn-rate alert transition."""

    objective: str
    rule: BurnRule
    time_s: float
    burn_long: float
    burn_short: float
    firing: bool  #: True on raise, False on clear.

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "factor": self.rule.factor,
            "long_windows": self.rule.long_windows,
            "short_windows": self.rule.short_windows,
            "time_s": self.time_s,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "firing": self.firing,
        }


class _ObjectiveState:
    """Live good/bad counts for one objective."""

    def __init__(self, objective: SloObjective, window: WindowConfig):
        self.objective = objective
        self.good = RollingCounter(f"{objective.name}/good", window)
        self.bad = RollingCounter(f"{objective.name}/bad", window)
        #: rule index -> currently firing?
        self.firing: Dict[int, bool] = {}

    def observe(self, good: bool, time_s: float) -> None:
        (self.good if good else self.bad).inc(time_s)

    def burn_rate(self, windows: int, now: float) -> float:
        """Windowed bad-fraction over the error budget."""
        good = self.good.count(windows, now=now)
        bad = self.bad.count(windows, now=now)
        total = good + bad
        if total <= 0:
            return 0.0
        return (bad / total) / self.objective.error_budget

    def attainment(self) -> float:
        total = self.good.total + self.bad.total
        if total <= 0:
            return 1.0
        return self.good.total / total


class SloMonitor:
    """Evaluate an :class:`SloSpec` as virtual time advances.

    ``observe``/``observe_shed`` classify completions as they happen;
    ``evaluate(now)`` recomputes burn rates, publishes gauges under
    the registry's ``slo/`` namespace, and returns the alert *edges*
    (raise / clear) since the previous evaluation.  ``span`` — when
    bound — receives one ``slo_alert`` event per edge, which the JSONL
    exporter then streams.
    """

    def __init__(self, spec: SloSpec, registry=None, span=None) -> None:
        self.spec = spec
        self.registry = registry
        self.span = span
        self._states = [
            _ObjectiveState(objective, spec.window)
            for objective in spec.objectives
        ]
        self.alerts: List[SloAlert] = []
        self._first_breach_s: Optional[float] = None

    # -- feeding --------------------------------------------------------

    def observe(self, record, time_s: Optional[float] = None) -> None:
        """Classify one finished :class:`RequestRecord`."""
        when = record.finished_s if time_s is None else time_s
        for state in self._states:
            if state.objective.matches(record.qos_class):
                state.observe(state.objective.is_good(record), when)

    def observe_shed(self, shed) -> None:
        """A shed request burns budget in every matching objective."""
        for state in self._states:
            if state.objective.matches(shed.qos_class):
                state.observe(False, shed.shed_s)

    # -- evaluation -----------------------------------------------------

    def evaluate(self, now: float) -> List[SloAlert]:
        """Re-evaluate every burn rule at virtual time ``now``."""
        edges: List[SloAlert] = []
        for state in self._states:
            objective = state.objective
            labels = {"objective": objective.name, "qos": objective.qos}
            rates: Dict[int, Tuple[float, float]] = {}
            for index, rule in enumerate(self.spec.burn_rules):
                burn_long = state.burn_rate(rule.long_windows, now)
                burn_short = state.burn_rate(rule.short_windows, now)
                rates[index] = (burn_long, burn_short)
                firing = (
                    burn_long >= rule.factor and burn_short >= rule.factor
                )
                if firing != state.firing.get(index, False):
                    state.firing[index] = firing
                    edge = SloAlert(
                        objective=objective.name,
                        rule=rule,
                        time_s=now,
                        burn_long=burn_long,
                        burn_short=burn_short,
                        firing=firing,
                    )
                    edges.append(edge)
                    if firing and self._first_breach_s is None:
                        self._first_breach_s = now
            if self.registry is not None:
                slo = self.registry.scoped("slo")
                slo.gauge(
                    "attainment",
                    labels=labels,
                    help_text="lifetime good fraction per objective",
                ).set(state.attainment())
                widest = max(
                    rule.long_windows for rule in self.spec.burn_rules
                )
                slo.gauge(
                    "burn_rate",
                    labels=labels,
                    help_text="burn rate over the longest rule window",
                ).set(state.burn_rate(widest, now))
                slo.gauge(
                    "firing",
                    labels=labels,
                    help_text="1 while any burn rule is firing",
                ).set(1.0 if any(state.firing.values()) else 0.0)
        self.alerts.extend(edges)
        if self.span is not None:
            for edge in edges:
                self.span.event(
                    "slo_alert",
                    edge.time_s,
                    objective=edge.objective,
                    state="firing" if edge.firing else "resolved",
                    factor=edge.rule.factor,
                    burn_long=round(edge.burn_long, 4),
                    burn_short=round(edge.burn_short, 4),
                )
        return edges

    # -- snapshots / merge ---------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Good/bad window state per objective, replica-mergeable."""
        return {
            "objectives": {
                state.objective.name: {
                    "good": state.good.snapshot(),
                    "bad": state.bad.snapshot(),
                }
                for state in self._states
            }
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold one replica's :meth:`snapshot` into this monitor.

        Only objectives present in this monitor's spec are folded —
        merging across mismatched specs is a configuration error left
        to the caller (fleet replicas always share one spec).
        """
        entries = snapshot.get("objectives", {})
        for state in self._states:
            entry = entries.get(state.objective.name)
            if entry is None:
                continue
            state.good.merge(entry["good"])
            state.bad.merge(entry["bad"])

    # -- reporting ------------------------------------------------------

    @property
    def first_alert_s(self) -> Optional[float]:
        """Virtual time of the first raised alert, if any."""
        return self._first_breach_s

    def report(self) -> Dict[str, object]:
        """End-of-run summary, JSON-able for results/setup dicts."""
        return {
            "spec": self.spec.to_dict(),
            "objectives": [
                {
                    "name": state.objective.name,
                    "qos": state.objective.qos,
                    "metric": state.objective.metric,
                    "target": state.objective.target,
                    "good": state.good.total,
                    "bad": state.bad.total,
                    "attainment": state.attainment(),
                    "met": state.attainment() >= state.objective.target,
                    "firing": any(state.firing.values()),
                }
                for state in self._states
            ],
            "alerts": [alert.to_dict() for alert in self.alerts],
            "first_alert_s": self._first_breach_s,
        }
