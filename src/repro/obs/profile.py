"""Virtual-time profiler over the telemetry span tree.

Three views of one saved bundle's spans:

* :func:`build_profile` — self/total virtual time per *frame* (span
  names normalized so ``prefill x3`` and ``prefill x7`` aggregate),
  keyed by the full root-to-frame stack, like a sampling profiler's
  collapsed output but exact;
* :func:`folded_stacks` — the same aggregation in folded-stack text
  (``root;child value``), loadable by flamegraph.pl or speedscope
  ("import as folded stacks"); values are integer microseconds;
* :func:`critical_path` — the serving run's time, end to end, split
  into compute vs transfer vs KV-migration (per tier pair) vs idle,
  with queueing reported alongside from request wait attributes.

Iteration spans carry ``kind``/``batch``/``tokens`` attributes, so
compute/transfer attribution can be re-derived *post hoc* by passing
the run's cost model (``costs.prefill_parts`` / ``decode_parts``) —
the profiler never requires the run itself to have been instrumented
beyond ordinary span telemetry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError

#: Numeric suffixes stripped when normalizing span names into frames:
#: batch sizes (``prefill x12``), request ids (``req 7``), layer
#: lists, and half-open token ranges (``kv demote req 7 [0,96)``).
_FRAME_RE = re.compile(r"\s+(x\d+|\d+|\[[\d, ]*[\])])$")


def frame_name(name: str) -> str:
    """Collapse per-instance span names into one aggregable frame."""
    previous = None
    while previous != name:
        previous = name
        name = _FRAME_RE.sub("", name)
    return name


def _index_spans(spans: Sequence[Mapping]) -> Dict[object, Mapping]:
    return {span["span_id"]: span for span in spans}


def _stack_of(
    span: Mapping, index: Mapping[object, Mapping]
) -> Tuple[str, ...]:
    frames: List[str] = []
    cursor: Optional[Mapping] = span
    hops = 0
    while cursor is not None:
        frames.append(frame_name(cursor["name"]))
        parent = cursor.get("parent_id")
        cursor = index.get(parent) if parent is not None else None
        hops += 1
        if hops > len(index) + 1:
            raise TelemetryError("span parent links form a cycle")
    return tuple(reversed(frames))


@dataclass
class ProfileNode:
    """Aggregated totals for one stack."""

    stack: Tuple[str, ...]
    total_s: float = 0.0
    self_s: float = 0.0
    count: int = 0

    @property
    def frame(self) -> str:
        return self.stack[-1]

    def as_dict(self) -> Dict[str, object]:
        return {
            "stack": ";".join(self.stack),
            "frame": self.frame,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "count": self.count,
        }


def build_profile(spans: Sequence[Mapping]) -> List[ProfileNode]:
    """Self/total virtual-time profile, one node per distinct stack.

    ``total_s`` sums span durations; ``self_s`` subtracts the time
    covered by direct children (clamped at zero — async request spans
    overlap their parent run freely).  Nodes come back sorted by
    descending ``self_s``, then stack, so output order is stable.
    """
    index = _index_spans(spans)
    child_time: Dict[object, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + (
                span["end_s"] - span["start_s"]
            )
    nodes: Dict[Tuple[str, ...], ProfileNode] = {}
    for span in spans:
        stack = _stack_of(span, index)
        node = nodes.get(stack)
        if node is None:
            node = nodes[stack] = ProfileNode(stack=stack)
        duration = span["end_s"] - span["start_s"]
        node.total_s += duration
        node.self_s += max(
            0.0, duration - child_time.get(span["span_id"], 0.0)
        )
        node.count += 1
    return sorted(
        nodes.values(), key=lambda node: (-node.self_s, node.stack)
    )


def folded_stacks(spans: Sequence[Mapping]) -> List[str]:
    """``stack;frames count`` lines with integer-µs self time.

    Zero-µs frames are kept (count floor of 0) only if they are
    someone's ancestor implicitly via other lines; lines themselves
    are emitted for every node with positive self time.
    """
    lines = []
    for node in build_profile(spans):
        value = int(round(node.self_s * 1e6))
        if value > 0:
            lines.append(f"{';'.join(node.stack)} {value}")
    return lines


def _iteration_attribution(
    span: Mapping, costs
) -> Tuple[float, float]:
    """(compute_s, transfer_s) for one iteration span.

    Preference order: explicit ``compute_s``/``transfer_s`` span
    attributes, then re-pricing through the cost model's
    ``prefill_parts``/``decode_parts``, then the whole duration as
    compute.  Re-priced parts are *scaled* to the span's observed
    duration so fault surcharges/KV overheads stay attributed
    proportionally instead of vanishing.
    """
    duration = span["end_s"] - span["start_s"]
    attrs = span.get("attrs", {})
    if "compute_s" in attrs or "transfer_s" in attrs:
        compute = float(attrs.get("compute_s", 0.0))
        transfer = float(attrs.get("transfer_s", 0.0))
        return compute, transfer
    kind = attrs.get("kind")
    batch = attrs.get("batch")
    tokens = attrs.get("tokens")
    if costs is not None and kind in ("prefill", "decode") and batch:
        try:
            if kind == "prefill":
                parts = costs.prefill_parts(int(batch), int(tokens))
            else:
                parts = costs.decode_parts(int(batch), int(tokens))
        except Exception:
            return duration, 0.0
        nominal = parts.compute_s + parts.transfer_s
        if nominal > 0:
            scale = duration / nominal
            return parts.compute_s * scale, parts.transfer_s * scale
    return duration, 0.0


def critical_path(
    spans: Sequence[Mapping], costs=None
) -> Dict[str, object]:
    """Attribute the serve run's wall of virtual time.

    The run span's duration decomposes into iteration time (split
    compute vs transfer), per-tier-pair KV-migration time, and idle
    (boundaries where the GPU sat waiting for arrivals).  Queueing is
    reported alongside as the sum of per-request ``wait_s`` — it
    overlaps iteration time rather than extending the run, so it is
    *not* part of the additive decomposition.
    """
    runs = [s for s in spans if s.get("category") == "run"]
    if not runs:
        raise TelemetryError(
            "no run span in bundle: profile a serve/fleet run saved "
            "with --telemetry-out"
        )
    run = runs[0]
    run_s = run["end_s"] - run["start_s"]
    compute_s = 0.0
    transfer_s = 0.0
    iteration_s = 0.0
    by_kind: Dict[str, float] = {}
    for span in spans:
        if span.get("category") != "iteration":
            continue
        duration = span["end_s"] - span["start_s"]
        iteration_s += duration
        kind = str(span.get("attrs", {}).get("kind", "iteration"))
        by_kind[kind] = by_kind.get(kind, 0.0) + duration
        compute, transfer = _iteration_attribution(span, costs)
        compute_s += compute
        transfer_s += transfer
    migration: Dict[str, float] = {}
    migration_s = 0.0
    for span in spans:
        if span.get("category") != "kv_migration":
            continue
        duration = span["end_s"] - span["start_s"]
        attrs = span.get("attrs", {})
        lane = f"{attrs.get('src', '?')}->{attrs.get('dst', '?')}"
        migration[lane] = migration.get(lane, 0.0) + duration
        migration_s += duration
    queueing_s = 0.0
    requests = 0
    for span in spans:
        if span.get("category") != "request":
            continue
        requests += 1
        queueing_s += float(span.get("attrs", {}).get("wait_s", 0.0))
    return {
        "run_s": run_s,
        "iteration_s": iteration_s,
        "compute_s": compute_s,
        "transfer_s": transfer_s,
        "idle_s": max(0.0, run_s - iteration_s),
        "by_kind": dict(sorted(by_kind.items())),
        "kv_migration_s": migration_s,
        "kv_migration_by_lane": dict(sorted(migration.items())),
        "queueing_s": queueing_s,
        "requests": requests,
    }


def render_profile(
    spans: Sequence[Mapping], costs=None, top: int = 20
) -> str:
    """Human-readable profile + critical path, for the CLI."""
    lines: List[str] = []
    try:
        path = critical_path(spans, costs=costs)
    except TelemetryError:
        path = None
    if path is not None:
        lines.append("critical path (virtual time)")
        lines.append(f"  run            {path['run_s']:12.3f} s")
        lines.append(
            f"  iterations     {path['iteration_s']:12.3f} s  "
            f"(compute {path['compute_s']:.3f} s, "
            f"transfer {path['transfer_s']:.3f} s)"
        )
        for kind, value in path["by_kind"].items():
            lines.append(f"    {kind:<12} {value:12.3f} s")
        lines.append(f"  idle           {path['idle_s']:12.3f} s")
        if path["kv_migration_s"]:
            lines.append(
                f"  kv migration   {path['kv_migration_s']:12.3f} s"
            )
            for lane, value in path["kv_migration_by_lane"].items():
                lines.append(f"    {lane:<12} {value:12.3f} s")
        lines.append(
            f"  queueing       {path['queueing_s']:12.3f} s "
            f"(overlapped, {path['requests']} requests)"
        )
        lines.append("")
    lines.append(f"{'self s':>12} {'total s':>12} {'count':>7}  stack")
    for node in build_profile(spans)[:top]:
        lines.append(
            f"{node.self_s:12.3f} {node.total_s:12.3f} "
            f"{node.count:7d}  {';'.join(node.stack)}"
        )
    return "\n".join(lines)
